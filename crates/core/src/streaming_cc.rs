//! StreamingCC: the prior-art baseline (Ahn–Guha–McGregor emulation over the
//! general-purpose ℓ0-sampler; paper §2.2 and §3).
//!
//! Identical Boruvka structure to GraphZeppelin but with the Cormode–Firmani
//! sampler underneath: vectors over Z with `+1/−1` characteristic-vector
//! entries, updates dominated by modular exponentiation, and (once vectors
//! exceed `n² ≥ 2^61`) 128-bit arithmetic. The paper's §3 back-of-envelope —
//! tens of updates per second at V = 10^6 — is what the Figure 4 benchmark
//! measures against CubeSketch; this type exists so the *system-level*
//! comparison can also be run end-to-end at small scale.

use crate::boruvka::{boruvka_rounds, BoruvkaOutcome};
use crate::config::default_rounds;
use crate::error::GzError;
use crate::node_sketch::NodeSketch;
use crate::store::SliceSource;
use gz_hash::{SplitMix64, Xxh64Hasher};
use gz_sketch::standard::{AnyStandardFamily, AnyStandardSketch};

/// Per-round families shared by all node sketches.
struct Params {
    num_nodes: u64,
    families: Vec<AnyStandardFamily<Xxh64Hasher>>,
}

/// The StreamingCC baseline system (unbuffered, single-threaded — the paper
/// argues the sampler itself is the bottleneck, and that is what this type
/// demonstrates).
pub struct StreamingCc {
    params: Params,
    sketches: Vec<NodeSketch<AnyStandardSketch<Xxh64Hasher>>>,
    updates: u64,
}

impl StreamingCc {
    /// Build the baseline for `num_nodes` vertices.
    pub fn new(num_nodes: u64, seed: u64) -> Result<Self, GzError> {
        if num_nodes < 2 {
            return Err(GzError::InvalidConfig("need at least 2 nodes".into()));
        }
        let vector_len = gz_graph::edge_index_count(num_nodes).max(1);
        let rounds = default_rounds(num_nodes);
        let families: Vec<AnyStandardFamily<Xxh64Hasher>> = (0..rounds as u64)
            .map(|r| AnyStandardFamily::for_vector(vector_len, SplitMix64::derive(seed, r)))
            .collect();
        let sketches = (0..num_nodes)
            .map(|_| NodeSketch::new_with(families.len(), |r| families[r].new_sketch()))
            .collect();
        Ok(StreamingCc { params: Params { num_nodes, families }, sketches, updates: 0 })
    }

    /// Ingest one stream update.
    ///
    /// Characteristic-vector signs (paper §2.2): for edge `(j,k)` with
    /// `j < k`, node `j`'s vector gets `+Δ` and node `k`'s gets `−Δ`.
    pub fn update(&mut self, u: u32, v: u32, is_delete: bool) {
        assert!(u != v, "self-loop");
        assert!((u as u64) < self.params.num_nodes && (v as u64) < self.params.num_nodes);
        let edge = gz_graph::Edge::new(u, v);
        let idx = gz_graph::edge_index(edge, self.params.num_nodes);
        let delta = if is_delete { -1 } else { 1 };
        self.sketches[edge.u() as usize].update_signed(idx, delta);
        self.sketches[edge.v() as usize].update_signed(idx, -delta);
        self.updates += 1;
    }

    /// Insert an edge.
    pub fn insert(&mut self, u: u32, v: u32) {
        self.update(u, v, false);
    }

    /// Delete an edge.
    pub fn delete(&mut self, u: u32, v: u32) {
        self.update(u, v, true);
    }

    /// Number of updates ingested.
    pub fn updates_ingested(&self) -> u64 {
        self.updates
    }

    /// Compute a spanning forest (non-destructive: the round-driven engine
    /// borrows the resident sketches in place and clones only round slices
    /// into per-supernode accumulators — no `V × full sketch` rebuild).
    pub fn spanning_forest(&self) -> Result<BoruvkaOutcome, GzError> {
        let mut source = SliceSource::new(&self.sketches);
        boruvka_rounds(&mut source, self.params.num_nodes, self.params.families.len())
    }

    /// Component labels.
    pub fn connected_components(&self) -> Result<Vec<u32>, GzError> {
        Ok(self.spanning_forest()?.labels)
    }

    /// Sketch bytes under the paper's accounting (3 words per bucket).
    pub fn sketch_bytes(&self) -> usize {
        self.sketches.iter().map(|s| s.payload_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_graph::{connected_components_dsu, AdjacencyList};

    #[test]
    fn matches_oracle_on_small_graphs() {
        let edges = [(0u32, 1u32), (1, 2), (4, 5), (6, 7), (7, 4)];
        let mut cc = StreamingCc::new(8, 3).unwrap();
        for &(a, b) in &edges {
            cc.insert(a, b);
        }
        let labels = cc.connected_components().unwrap();
        let g = AdjacencyList::from_edges(8, edges.iter().copied());
        assert_eq!(labels, connected_components_dsu(&g));
    }

    #[test]
    fn deletions_work() {
        let mut cc = StreamingCc::new(6, 9).unwrap();
        cc.insert(0, 1);
        cc.insert(1, 2);
        cc.delete(1, 2);
        let labels = cc.connected_components().unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    fn internal_edges_cancel_over_z() {
        // The ±1 sign convention must make intra-component edges cancel
        // when supernodes merge — exactly what Boruvka relies on. A triangle
        // collapses to one component with no stray samples.
        let mut cc = StreamingCc::new(5, 17).unwrap();
        cc.insert(0, 1);
        cc.insert(1, 2);
        cc.insert(0, 2);
        let outcome = cc.spanning_forest().unwrap();
        assert_eq!(outcome.forest.len(), 2);
        assert_eq!(outcome.num_components(), 3); // {0,1,2}, {3}, {4}
    }

    #[test]
    fn sketch_bytes_larger_than_cubesketch() {
        // Paper Figure 5: the general sampler is ≥ 2× larger.
        let cc = StreamingCc::new(64, 1).unwrap();
        let params =
            crate::node_sketch::SketchParams::new(64, crate::config::default_rounds(64), 7, 1);
        let cube_total = params.node_sketch_bytes() * 64;
        assert!(
            cc.sketch_bytes() >= 2 * cube_total,
            "standard {} vs cube {cube_total}",
            cc.sketch_bytes()
        );
    }

    #[test]
    fn rejects_tiny_graphs() {
        assert!(StreamingCc::new(1, 0).is_err());
    }
}
