//! Exact small-set vertex representation for the hybrid store (DESIGN.md §12).
//!
//! Most vertices of a sparse stream never accumulate enough neighbors to
//! justify `O(log² V)` of CubeSketch state. Below a configurable threshold
//! `τ` the store keeps an **exact toggle set** instead: a sorted vector of
//! non-self-loop neighbor ids, where applying an update is a membership flip
//! (the Z₂ semantics of the characteristic vector — a second toggle of the
//! same edge cancels the first, exactly as it would inside a sketch).
//!
//! The set is *authoritative*: it records the complete XOR-history of the
//! vertex, so a sketch promoted from it by replaying the surviving indices
//! through the batch kernel is **bit-identical** to one maintained densely
//! from the start. Sketch state is XOR-linear in the toggled index multiset;
//! cancelled pairs contribute nothing either way; ordering is irrelevant.
//! That replay argument is what lets promotion happen at any time (and lets
//! queries synthesize a single round slice on demand) without an equivalence
//! caveat anywhere in the system.

use crate::node_sketch::{update_index, CubeNodeSketch, CubeRoundSketch, SketchParams};

/// Sorted exact set of a vertex's live (non-cancelled) neighbors.
///
/// Stored neighbor ids exclude the vertex itself (self-loops are dropped at
/// decode time, matching the dense path's `decode_records_into`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseSet {
    neighbors: Vec<u32>,
}

impl SparseSet {
    /// The empty set.
    pub fn new() -> Self {
        SparseSet { neighbors: Vec::new() }
    }

    /// Build from an arbitrary neighbor list (deduplicated, sorted).
    pub fn from_neighbors(mut neighbors: Vec<u32>) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        SparseSet { neighbors }
    }

    /// Flip membership of `other` (the Z₂ toggle). Returns the new live-set
    /// size, which the store compares against `τ` to decide promotion.
    pub fn toggle(&mut self, other: u32) -> usize {
        match self.neighbors.binary_search(&other) {
            Ok(i) => {
                self.neighbors.remove(i);
            }
            Err(i) => self.neighbors.insert(i, other),
        }
        self.neighbors.len()
    }

    /// Number of live neighbors.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when no neighbor survives (all toggles cancelled).
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The sorted live neighbors.
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Characteristic-vector indices of the surviving toggles for vertex
    /// `node` — the replay batch. Distinct neighbors map to distinct edge
    /// indices, so no self-cancellation pre-pass is needed.
    pub fn replay_indices(&self, node: u32, num_nodes: u64) -> Vec<u64> {
        self.neighbors.iter().map(|&o| update_index(node, o, num_nodes)).collect()
    }

    /// Materialize the full node sketch this set stands for — the promotion
    /// step. Bit-identical to an always-dense run (see module docs).
    pub fn densify(&self, node: u32, params: &SketchParams) -> CubeNodeSketch {
        let mut sketch = params.new_node_sketch();
        if !self.neighbors.is_empty() {
            let indices = self.replay_indices(node, params.num_nodes);
            sketch.update_batch_prepared(&indices);
        }
        sketch
    }

    /// Synthesize just the round-`round` slice — what a streaming query
    /// needs from an unpromoted vertex. Replays the set into a fresh sketch
    /// of that round's family only (`O(set × 1 round)`, not `O(set × log V)`).
    pub fn synthesize_round(
        &self,
        node: u32,
        params: &SketchParams,
        round: usize,
    ) -> CubeRoundSketch {
        let mut sketch = params.families[round].new_sketch();
        if !self.neighbors.is_empty() {
            let indices = self.replay_indices(node, params.num_nodes);
            sketch.update_batch_prepared(&indices);
        }
        sketch
    }

    /// Resident bytes under the size model: 4 bytes per live neighbor.
    pub fn resident_bytes(&self) -> usize {
        self.neighbors.len() * 4
    }

    /// Append the wire encoding (protocol v5 sparse round entry payload):
    /// `u32 LE` count followed by the sorted neighbors as `u32 LE`.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.neighbors.len() as u32).to_le_bytes());
        for &n in &self.neighbors {
            out.extend_from_slice(&n.to_le_bytes());
        }
    }

    /// Decode a wire payload produced by [`Self::encode_wire`]. Returns
    /// `None` on truncation, trailing bytes, unsorted or duplicate entries
    /// (strict, like the rest of the wire layer).
    pub fn decode_wire(bytes: &[u8]) -> Option<SparseSet> {
        if bytes.len() < 4 {
            return None;
        }
        let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        if bytes.len() != 4 + count * 4 {
            return None;
        }
        let mut neighbors = Vec::with_capacity(count);
        for i in 0..count {
            let off = 4 + i * 4;
            let n = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if let Some(&last) = neighbors.last() {
                if n <= last {
                    return None;
                }
            }
            neighbors.push(n);
        }
        Some(SparseSet { neighbors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::assert_rounds_bitwise_equal;
    use gz_sketch::{L0Sampler, SampleResult};

    fn params(v: u64) -> SketchParams {
        SketchParams::new(v, 5, 7, 0x5EED)
    }

    #[test]
    fn toggle_is_a_membership_flip() {
        let mut s = SparseSet::new();
        assert_eq!(s.toggle(7), 1);
        assert_eq!(s.toggle(3), 2);
        assert_eq!(s.toggle(7), 1); // second toggle cancels
        assert_eq!(s.neighbors(), &[3]);
        assert_eq!(s.toggle(3), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut s = SparseSet::new();
        for o in [9u32, 1, 5, 30, 2] {
            s.toggle(o);
        }
        assert_eq!(s.neighbors(), &[1, 2, 5, 9, 30]);
    }

    #[test]
    fn densify_matches_incremental_dense_bitwise() {
        // The promotion bit-identity argument, pinned: toggling a stream of
        // (insert, delete, re-insert) updates into the set and replaying
        // equals applying the same stream densely update by update.
        let p = params(64);
        let node = 6u32;
        let stream = [(9u32, 1), (12, 1), (9, 1), (40, 1), (9, 1), (12, 1), (12, 1)];
        let mut set = SparseSet::new();
        let mut dense = p.new_node_sketch();
        for (other, _) in stream {
            set.toggle(other);
            dense.update_signed(update_index(node, other, 64), 1);
        }
        let promoted = set.densify(node, &p);
        assert_rounds_bitwise_equal(&promoted, &dense, "replay vs incremental");
    }

    #[test]
    fn synthesize_round_matches_densify_slice() {
        let p = params(64);
        let mut set = SparseSet::new();
        for o in [1u32, 17, 33, 50] {
            set.toggle(o);
        }
        let full = set.densify(3, &p);
        for r in 0..p.rounds() {
            let slice = set.synthesize_round(3, &p, r);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            slice.serialize_into(&mut a);
            full.round(r).serialize_into(&mut b);
            assert_eq!(a, b, "round {r}");
        }
    }

    #[test]
    fn empty_set_densifies_to_zero_sketch() {
        let p = params(32);
        let promoted = SparseSet::new().densify(0, &p);
        assert_rounds_bitwise_equal(&promoted, &p.new_node_sketch(), "zero");
        assert_eq!(SparseSet::new().synthesize_round(0, &p, 0).sample(), SampleResult::Zero);
    }

    #[test]
    fn wire_round_trip_and_strictness() {
        let mut s = SparseSet::new();
        for o in [4u32, 200, 7] {
            s.toggle(o);
        }
        let mut bytes = Vec::new();
        s.encode_wire(&mut bytes);
        assert_eq!(bytes.len(), 4 + 3 * 4);
        assert_eq!(SparseSet::decode_wire(&bytes).unwrap(), s);

        // Truncated.
        assert!(SparseSet::decode_wire(&bytes[..bytes.len() - 1]).is_none());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SparseSet::decode_wire(&long).is_none());
        // Unsorted / duplicate payloads rejected.
        let mut bad = Vec::new();
        SparseSet::from_neighbors(vec![1, 2]).encode_wire(&mut bad);
        bad[4..8].copy_from_slice(&9u32.to_le_bytes()); // now [9, 2]
        assert!(SparseSet::decode_wire(&bad).is_none());
        let mut dup = Vec::new();
        dup.extend_from_slice(&2u32.to_le_bytes());
        dup.extend_from_slice(&5u32.to_le_bytes());
        dup.extend_from_slice(&5u32.to_le_bytes());
        assert!(SparseSet::decode_wire(&dup).is_none());
    }

    #[test]
    fn resident_bytes_counts_live_entries() {
        let mut s = SparseSet::new();
        s.toggle(1);
        s.toggle(2);
        s.toggle(1);
        assert_eq!(s.resident_bytes(), 4);
    }
}
