//! System configuration.
//!
//! Mirrors the tunables the paper exposes and sweeps: worker count and
//! thread-group size (§6.4, Figure 14), gutter sizing (Figure 15), buffering
//! strategy (gutter tree vs leaf-only, Figure 12), sketch store placement
//! (RAM vs SSD), and the batch-level locking discipline (§5.1).

use crate::error::GzError;
use crate::store::io_backend::IoBackendConfig;
use std::path::PathBuf;

/// How large each leaf gutter is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GutterCapacity {
    /// A fraction `f` of the node-sketch size (the paper's knob; default
    /// 0.5 per §5.1, swept in Figure 15).
    SketchFactor(f64),
    /// An absolute number of buffered updates (Figure 16a uses 100).
    Updates(usize),
}

impl GutterCapacity {
    /// Resolve to a record count given the node-sketch size.
    pub fn resolve(self, node_sketch_bytes: usize) -> usize {
        match self {
            GutterCapacity::SketchFactor(f) => {
                ((node_sketch_bytes as f64 * f) / 4.0).ceil().max(1.0) as usize
            }
            GutterCapacity::Updates(n) => n.max(1),
        }
    }
}

/// Which buffering system routes updates to the Graph Workers (paper §5.1:
/// "GraphZeppelin implements two buffering data structures").
#[derive(Debug, Clone, PartialEq)]
pub enum BufferStrategy {
    /// In-RAM leaf-only gutters (used when memory allows, `M > V·B`).
    LeafOnly {
        /// Per-node gutter capacity.
        capacity: GutterCapacity,
    },
    /// The on-disk gutter tree (§4.1).
    GutterTree {
        /// Internal buffer size in bytes (paper: 8 MB).
        buffer_bytes: usize,
        /// Fan-out (paper: 512).
        fanout: usize,
        /// Leaf gutter capacity (paper: 2× node sketch).
        leaf_capacity: GutterCapacity,
        /// Directory for the backing file.
        dir: PathBuf,
    },
}

/// Where node sketches live.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreBackend {
    /// All sketches in RAM.
    Ram,
    /// Sketches in a file, accessed in node groups through an LRU cache —
    /// the measurable analogue of "sketches on SSD with limited RAM".
    Disk {
        /// Directory for the backing file.
        dir: PathBuf,
        /// Block size `B` in bytes; node groups hold `max(1, B/sketch)`
        /// nodes (paper §4.1).
        block_bytes: usize,
        /// Number of node groups the RAM cache may hold (the `M` knob).
        cache_groups: usize,
    },
}

/// How `spanning_forest()` reads sketches out of the store (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Materialize every node's full sketch stack in RAM before running
    /// Boruvka — simple, but peak query memory is `O(V × full sketch)`,
    /// which forfeits a disk store's RAM budget at query time.
    #[default]
    Snapshot,
    /// Stream round slices out of the store round by round (group-
    /// sequential with prefetch on disk), folding them into per-supernode
    /// accumulators: peak query memory is `O(live components × one round)`
    /// plus the prefetch window. Labels are bit-identical to `Snapshot`.
    Streaming,
}

/// Batch-level locking discipline (paper §5.1's critical-section
/// minimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingStrategy {
    /// Hold the node-sketch lock for the whole batch application.
    Direct,
    /// Apply the batch to a worker-local scratch sketch without the lock,
    /// then lock only to XOR-merge (`S(x) = S(x) + S(x_0)`) — the paper's
    /// approach.
    DeltaSketch,
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct GzConfig {
    /// Number of vertices (or a loose upper bound on it; §2.2).
    pub num_nodes: u64,
    /// Master seed; the entire system is deterministic in it (up to worker
    /// scheduling, which never changes results thanks to sketch linearity).
    pub seed: u64,
    /// Graph Workers applying batches (paper `g`).
    pub num_workers: usize,
    /// Threads per worker group for sketch-level parallelism (§5.1).
    /// The paper found group size 1 best on its hardware; that is the
    /// default.
    pub group_threads: usize,
    /// Boruvka rounds = independent sketches per node. `None` = the paper's
    /// `⌈log_{3/2} V⌉`.
    pub num_rounds: Option<u32>,
    /// CubeSketch columns (`log(1/δ)`; paper fixes 7).
    pub num_columns: u32,
    /// Buffering system.
    pub buffering: BufferStrategy,
    /// Sketch store placement.
    pub store: StoreBackend,
    /// Batch-level locking discipline.
    pub locking: LockingStrategy,
    /// How queries read sketches out of the store.
    pub query_mode: QueryMode,
    /// Worker threads the Borůvka query engine folds, samples, and (on
    /// disk stores) reads with; `None` = the ingestion worker count
    /// (`num_workers`). Answers are bit-identical at any thread count —
    /// this is purely a performance knob (DESIGN.md §10).
    pub query_threads: Option<usize>,
    /// Bounded staleness for streaming queries (DESIGN.md §11). `None`
    /// (the default) keeps the stop-the-world behavior: every query
    /// flushes and reads the freshest state. `Some(n)` lets a streaming
    /// query reuse the last sealed epoch as long as at most `n` updates
    /// were ingested since its seal — queries then run concurrently with
    /// ingestion and never stall it, at the cost of answers up to `n`
    /// updates old.
    pub query_staleness: Option<u64>,
    /// Hybrid sparse/dense threshold `τ` (DESIGN.md §12). A vertex starts
    /// as an exact toggle set of its live neighbors and is promoted to a
    /// real sketch stack — by replaying the set through the batch kernel,
    /// bit-identical to an always-dense run — once its live-set size
    /// exceeds `τ`. `0` (the default) keeps every vertex dense from the
    /// start: the exact pre-hybrid behavior, and the equivalence oracle
    /// the hybrid tests compare against.
    pub sketch_threshold: u32,
    /// Disk-store I/O backend tunables (DESIGN.md §13): pread vs io_uring,
    /// submission queue depth, O_DIRECT mode. Ignored by RAM stores, and
    /// deliberately excluded from parameter digests — the backend changes
    /// how bytes move, never which bytes exist.
    pub io: IoBackendConfig,
}

impl GzConfig {
    /// Default in-RAM configuration for `num_nodes` vertices: leaf-only
    /// gutters at factor 0.5, 4 workers, group size 1, delta-sketch locking.
    pub fn in_ram(num_nodes: u64) -> Self {
        GzConfig {
            num_nodes,
            seed: 0x5EED_1E55,
            num_workers: 4,
            group_threads: 1,
            num_rounds: None,
            num_columns: gz_sketch::geometry::DEFAULT_COLUMNS,
            buffering: BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(0.5) },
            store: StoreBackend::Ram,
            locking: LockingStrategy::DeltaSketch,
            query_mode: QueryMode::default(),
            query_threads: None,
            query_staleness: None,
            sketch_threshold: 0,
            io: IoBackendConfig::default(),
        }
    }

    /// On-disk configuration: file-backed sketches plus a gutter tree, both
    /// in `dir` (the paper's SSD deployment, §6.2).
    pub fn on_disk(num_nodes: u64, dir: PathBuf) -> Self {
        GzConfig {
            store: StoreBackend::Disk {
                dir: dir.clone(),
                block_bytes: 16 << 10,
                cache_groups: 1024,
            },
            buffering: BufferStrategy::GutterTree {
                buffer_bytes: 1 << 20,
                fanout: 64,
                leaf_capacity: GutterCapacity::SketchFactor(2.0),
                dir,
            },
            ..GzConfig::in_ram(num_nodes)
        }
    }

    /// Number of Boruvka rounds (= sketches per node).
    pub fn rounds(&self) -> u32 {
        self.num_rounds.unwrap_or_else(|| default_rounds(self.num_nodes))
    }

    /// Worker threads the query engine runs with (defaults to the
    /// ingestion worker count).
    pub fn query_threads(&self) -> usize {
        self.query_threads.unwrap_or(self.num_workers).max(1)
    }

    /// Validate invariants the system relies on.
    pub fn validate(&self) -> Result<(), GzError> {
        if self.num_nodes < 2 {
            return Err(GzError::InvalidConfig("need at least 2 nodes".into()));
        }
        if self.num_nodes > u32::MAX as u64 {
            return Err(GzError::InvalidConfig("vertex ids must fit in u32".into()));
        }
        if self.num_workers == 0 {
            return Err(GzError::InvalidConfig("need at least one Graph Worker".into()));
        }
        if self.group_threads == 0 {
            return Err(GzError::InvalidConfig("group_threads must be ≥ 1".into()));
        }
        if self.query_threads == Some(0) {
            return Err(GzError::InvalidConfig("query_threads must be ≥ 1".into()));
        }
        if self.num_columns == 0 {
            return Err(GzError::InvalidConfig("need at least one sketch column".into()));
        }
        if self.rounds() == 0 {
            return Err(GzError::InvalidConfig("need at least one Boruvka round".into()));
        }
        if self.io.queue_depth == 0 {
            return Err(GzError::InvalidConfig("io queue_depth must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// The paper's round budget: `⌈log_{3/2} V⌉` (Figure 9's
/// `log_{3/2}(num_nodes)` failure threshold).
pub fn default_rounds(num_nodes: u64) -> u32 {
    if num_nodes <= 2 {
        return 1;
    }
    ((num_nodes as f64).ln() / 1.5f64.ln()).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rounds_growth() {
        assert_eq!(default_rounds(2), 1);
        // log_{3/2}(1024) ≈ 17.09 -> 18
        assert_eq!(default_rounds(1024), 18);
        assert!(default_rounds(1 << 17) > default_rounds(1 << 13));
    }

    #[test]
    fn gutter_capacity_resolution() {
        assert_eq!(GutterCapacity::SketchFactor(0.5).resolve(8000), 1000);
        assert_eq!(GutterCapacity::Updates(100).resolve(8000), 100);
        assert_eq!(GutterCapacity::SketchFactor(0.0).resolve(8000), 1);
        assert_eq!(GutterCapacity::Updates(0).resolve(8000), 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(GzConfig::in_ram(64).validate().is_ok());
        assert!(GzConfig::in_ram(1).validate().is_err());
        let mut c = GzConfig::in_ram(64);
        c.num_workers = 0;
        assert!(c.validate().is_err());
        let mut c = GzConfig::in_ram(64);
        c.num_columns = 0;
        assert!(c.validate().is_err());
        let mut c = GzConfig::in_ram(64);
        c.io.queue_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn on_disk_config_uses_tree_and_disk_store() {
        let c = GzConfig::on_disk(1024, std::env::temp_dir());
        assert!(matches!(c.store, StoreBackend::Disk { .. }));
        assert!(matches!(c.buffering, BufferStrategy::GutterTree { .. }));
        assert!(c.validate().is_ok());
    }
}
