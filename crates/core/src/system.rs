//! The [`GraphZeppelin`] facade: the paper's user-facing API
//! (`edge_update()` / `list_spanning_forest()`, Figures 8–9).

use crate::boruvka::{boruvka_rounds_with_pool, BoruvkaOutcome};
use crate::config::{BufferStrategy, GzConfig, QueryMode, StoreBackend};
use crate::error::GzError;
use crate::ingest::{IngestCounters, WorkerPool};
use crate::node_sketch::{encode_other, SketchParams};
use crate::store::{MaterializedSource, RepStats, SketchEpoch, SketchStore, StoreRoundSource};
use gz_graph::Edge;
use gz_gutters::{BufferingSystem, GutterTree, GutterTreeConfig, IoStats, LeafGutters, WorkQueue};
use std::sync::Arc;

/// A connectivity answer: component labels plus the spanning forest that
/// witnesses them.
#[derive(Debug, Clone)]
pub struct ConnectedComponents {
    outcome: BoruvkaOutcome,
}

impl ConnectedComponents {
    /// Component label of vertex `v` (normalized to the minimum member id).
    pub fn label(&self, v: u32) -> u32 {
        self.outcome.labels[v as usize]
    }

    /// All labels, indexed by vertex.
    pub fn labels(&self) -> &[u32] {
        &self.outcome.labels
    }

    /// True if `a` and `b` are in the same component.
    pub fn same_component(&self, a: u32, b: u32) -> bool {
        self.label(a) == self.label(b)
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.outcome.num_components()
    }

    /// The spanning forest (the streaming problem's required output).
    pub fn spanning_forest(&self) -> &[Edge] {
        &self.outcome.forest
    }

    /// Boruvka rounds used and sketch failures survived.
    pub fn query_stats(&self) -> (usize, usize) {
        (self.outcome.rounds_used, self.outcome.sketch_failures)
    }
}

/// The GraphZeppelin system: buffered, parallel sketch ingestion plus
/// sketch-space Boruvka queries.
pub struct GraphZeppelin {
    config: GzConfig,
    params: Arc<SketchParams>,
    store: Arc<SketchStore>,
    queue: Arc<WorkQueue>,
    buffering: Box<dyn BufferingSystem + Send>,
    workers: Option<WorkerPool>,
    counters: Arc<IngestCounters>,
    updates_ingested: u64,
    gutter_io: Option<Arc<IoStats>>,
    buffer_capacity_bytes: usize,
    /// The epoch bounded-staleness queries reuse, with the update count at
    /// its seal (`config.query_staleness`; `None` until the first such
    /// query).
    cached_epoch: Option<(SketchEpoch, u64)>,
    /// The query worker pool, built lazily for the resolved thread count
    /// and reused across queries (and across the rounds of each query)
    /// instead of spawning `query_threads` OS threads per call. Rebuilt
    /// when [`Self::set_query_threads`] changes the count.
    query_pool: Option<(usize, gz_gutters::WorkerPool)>,
}

impl GraphZeppelin {
    /// Build the system described by `config` and start its Graph Workers.
    pub fn new(config: GzConfig) -> Result<Self, GzError> {
        config.validate()?;
        let params = Arc::new(SketchParams::new(
            config.num_nodes,
            config.rounds(),
            config.num_columns,
            config.seed,
        ));
        let store = Arc::new(SketchStore::build(&config, Arc::clone(&params))?);
        let queue = Arc::new(WorkQueue::for_workers(config.num_workers));

        let node_sketch_bytes = params.node_sketch_bytes();
        let (buffering, gutter_io, buffer_capacity_bytes): (
            Box<dyn BufferingSystem + Send>,
            Option<Arc<IoStats>>,
            usize,
        ) = match &config.buffering {
            BufferStrategy::LeafOnly { capacity } => {
                let cap = capacity.resolve(node_sketch_bytes);
                let gutters = LeafGutters::new(config.num_nodes as usize, cap, Arc::clone(&queue));
                let bytes = cap * 4 * config.num_nodes as usize;
                (Box::new(gutters), None, bytes)
            }
            BufferStrategy::GutterTree { buffer_bytes, fanout, leaf_capacity, dir } => {
                let leaf_cap = leaf_capacity.resolve(node_sketch_bytes);
                let path =
                    dir.join(format!("gz_gutter_tree_{}_{}.bin", std::process::id(), config.seed));
                let tree_config = GutterTreeConfig {
                    num_nodes: config.num_nodes as u32,
                    leaf_capacity_updates: leaf_cap,
                    buffer_bytes: *buffer_bytes,
                    fanout: *fanout,
                    path,
                };
                let tree = GutterTree::new(tree_config, Arc::clone(&queue))?;
                let io = tree.stats();
                // RAM cost of the tree is just the root buffer.
                (Box::new(tree), Some(io), *buffer_bytes)
            }
        };

        let workers = WorkerPool::spawn(
            config.num_workers,
            config.group_threads,
            Arc::clone(&queue),
            Arc::clone(&store),
        );
        let counters = workers.counters();

        Ok(GraphZeppelin {
            config,
            params,
            store,
            queue,
            buffering,
            workers: Some(workers),
            counters,
            updates_ingested: 0,
            gutter_io,
            buffer_capacity_bytes,
            cached_epoch: None,
            query_pool: None,
        })
    }

    /// Make sure `query_pool` holds a pool for the currently-resolved
    /// thread count, building (or rebuilding) it if not.
    fn ensure_query_pool(&mut self) {
        let threads = self.config.query_threads();
        if self.query_pool.as_ref().map(|(t, _)| *t) != Some(threads) {
            self.query_pool = Some((threads, gz_gutters::WorkerPool::new(threads)));
        }
    }

    /// The cached query pool for the resolved thread count.
    fn query_pool(&mut self) -> &gz_gutters::WorkerPool {
        self.ensure_query_pool();
        &self.query_pool.as_ref().expect("pool ensured above").1
    }

    /// Ingest one stream update — a *toggle* of edge `(u, v)` (paper
    /// Figure 8's `edge_update`). Inserting an absent edge and deleting a
    /// present one are the same operation over Z_2.
    #[inline]
    pub fn edge_update(&mut self, u: u32, v: u32) {
        self.update(u, v, false)
    }

    /// Ingest one update with an explicit insert/delete tag. GraphZeppelin's
    /// sketches ignore the tag (Z_2), but it is preserved through the
    /// buffering layer for systems that need signs (StreamingCC) and for
    /// debugging.
    pub fn update(&mut self, u: u32, v: u32, is_delete: bool) {
        assert!(u != v, "self-loop ({u},{v}) is not a valid stream update");
        assert!(
            (u as u64) < self.config.num_nodes && (v as u64) < self.config.num_nodes,
            "vertex out of range"
        );
        // Figure 8: buffer_insert({u,v}) and buffer_insert({v,u}).
        self.buffering.insert(u, encode_other(v, is_delete));
        self.buffering.insert(v, encode_other(u, is_delete));
        self.updates_ingested += 1;
    }

    /// Ingest a whole stream of `(u, v, is_delete)` updates.
    pub fn ingest(&mut self, updates: impl IntoIterator<Item = (u32, u32, bool)>) {
        for (u, v, d) in updates {
            self.update(u, v, d);
        }
    }

    /// Drain all buffered updates into the sketches (paper Figure 9's
    /// `cleanup()`): force-flush the buffering system, then wait until the
    /// Graph Workers have acknowledged every batch.
    pub fn flush(&mut self) {
        self.buffering.force_flush();
        self.queue.wait_idle();
    }

    /// Compute a spanning forest of the current graph (paper
    /// `list_spanning_forest()`); leaves the system ready for more updates.
    /// Reads the store in the configured [`QueryMode`]; both modes return
    /// bit-identical labels and forests.
    pub fn spanning_forest(&mut self) -> Result<BoruvkaOutcome, GzError> {
        match self.config.query_mode {
            QueryMode::Snapshot => self.spanning_forest_snapshot(),
            QueryMode::Streaming => self.spanning_forest_streaming(),
        }
    }

    /// Snapshot-mode query: materialize every node's full sketch stack,
    /// then run Boruvka over the copy (peak `O(V × full sketch)` RAM). The
    /// fold and sampling run on `query_threads` workers.
    pub fn spanning_forest_snapshot(&mut self) -> Result<BoruvkaOutcome, GzError> {
        self.flush();
        let sketches = self.store.snapshot();
        let (num_nodes, rounds) = (self.config.num_nodes, self.params.rounds());
        let pool = self.query_pool();
        let mut source = MaterializedSource::new(sketches);
        boruvka_rounds_with_pool(&mut source, num_nodes, rounds, pool)
    }

    /// Streaming-mode query: fold round slices straight out of the store,
    /// keeping only per-live-supernode accumulators resident — partitioned
    /// across `query_threads` workers (slot ranges in RAM; concurrent
    /// positioned group reads on disk, single-threaded prefetch pipeline at
    /// one thread). Bit-identical to [`Self::spanning_forest_snapshot`] at
    /// any thread count.
    ///
    /// With `config.query_staleness = Some(n)`, the query reuses the last
    /// sealed epoch while it is at most `n` updates old (sealing a fresh
    /// one otherwise) and folds it through the epoch read path — ingestion
    /// is never stopped, and the answer reflects the sealed cut.
    pub fn spanning_forest_streaming(&mut self) -> Result<BoruvkaOutcome, GzError> {
        let Some(max_lag) = self.config.query_staleness else {
            self.flush();
            let (num_nodes, rounds) = (self.config.num_nodes, self.params.rounds());
            let store = Arc::clone(&self.store);
            let pool = self.query_pool();
            let mut source = StoreRoundSource::new(&store);
            return boruvka_rounds_with_pool(&mut source, num_nodes, rounds, pool);
        };
        let fresh_enough = matches!(
            &self.cached_epoch,
            Some((_, sealed_at)) if self.updates_ingested - sealed_at <= max_lag
        );
        if !fresh_enough {
            let epoch = self.begin_epoch()?;
            self.cached_epoch = Some((epoch, self.updates_ingested));
        }
        self.ensure_query_pool();
        let pool = &self.query_pool.as_ref().expect("pool ensured above").1;
        let (epoch, _) = self.cached_epoch.as_ref().expect("epoch sealed above");
        epoch.spanning_forest_with_pool(pool)
    }

    /// Seal the current sketch state into an epoch: flush buffered updates,
    /// then hand back a self-contained [`SketchEpoch`] whose queries return
    /// answers bit-identical to a stop-the-world query right now — even
    /// while this system keeps ingesting. The handle is `Send + Sync`, so a
    /// query thread can run `epoch.spanning_forest()` concurrently with
    /// further [`Self::update`] calls; dropping the handle releases the
    /// sealed groups it pinned (DESIGN.md §11).
    pub fn begin_epoch(&mut self) -> Result<SketchEpoch, GzError> {
        self.flush();
        let (id, overlay) = self.store.begin_epoch()?;
        Ok(SketchEpoch::new(Arc::clone(&self.store), overlay, id, self.config.query_threads()))
    }

    /// Change the query-thread count (a performance knob: answers are
    /// bit-identical at any setting — DESIGN.md §10). Drops the cached
    /// query pool; the next query rebuilds it at the new width.
    pub fn set_query_threads(&mut self, query_threads: usize) {
        assert!(query_threads >= 1, "query_threads must be ≥ 1");
        self.config.query_threads = Some(query_threads);
        self.query_pool = None;
    }

    /// Compute connected components of the current graph.
    pub fn connected_components(&mut self) -> Result<ConnectedComponents, GzError> {
        Ok(ConnectedComponents { outcome: self.spanning_forest()? })
    }

    /// Number of stream updates ingested so far.
    pub fn updates_ingested(&self) -> u64 {
        self.updates_ingested
    }

    /// Batches applied by the workers so far.
    pub fn batches_applied(&self) -> u64 {
        self.counters.batches.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total sketch bytes (the paper's Figure 11 memory accounting). With a
    /// hybrid store (`config.sketch_threshold > 0`) this is the *resident*
    /// payload: dense bytes for promoted nodes plus the exact toggle-sets
    /// of the still-sparse ones.
    pub fn sketch_bytes(&self) -> usize {
        self.store.sketch_bytes()
    }

    /// Representation census of the store: promoted vs sparse node counts
    /// and sparse entries (`gz components --stats`, memory accounting).
    pub fn rep_stats(&self) -> RepStats {
        self.store.rep_stats()
    }

    /// Approximate total memory footprint: sketches (when in RAM) plus
    /// buffering capacity. The disk backend keeps dense sketches on disk,
    /// but its sparse toggle-sets live in RAM and are counted here.
    pub fn memory_bytes(&self) -> usize {
        let sketch_ram = match self.config.store {
            StoreBackend::Ram => self.store.sketch_bytes(),
            StoreBackend::Disk { .. } => self.store.rep_stats().sparse_bytes(),
        };
        sketch_ram + self.buffer_capacity_bytes
    }

    /// I/O counters of the sketch store (disk backend only).
    pub fn store_io(&self) -> Option<Arc<IoStats>> {
        self.store.io_stats()
    }

    /// Name of the disk store's resolved I/O backend (`"pread"`,
    /// `"uring"`, with `"+direct"` when O_DIRECT reads are live); `None`
    /// for RAM stores.
    pub fn io_backend_name(&self) -> Option<String> {
        self.store.io_backend_name()
    }

    /// The sketch store (group layout, I/O accounting — the experiment
    /// suite inspects it to verify the streaming query's I/O bounds).
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// I/O counters of the gutter tree (gutter-tree buffering only).
    pub fn gutter_io(&self) -> Option<Arc<IoStats>> {
        self.gutter_io.clone()
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &GzConfig {
        &self.config
    }

    /// Shared sketch parameters (geometry, rounds).
    pub fn params(&self) -> &Arc<SketchParams> {
        &self.params
    }

    /// Flush, then serialize every node's sketch (indexed by node id).
    /// Serialization is a pure function of the ingested update multiset, so
    /// any two deployments fed the same stream — whatever their buffering,
    /// store, worker count, or sharding — produce bit-identical output;
    /// the equivalence suite and the multi-process sharding demo compare
    /// against this.
    pub fn snapshot_serialized(&mut self) -> Vec<Vec<u8>> {
        self.flush();
        let params = Arc::clone(&self.params);
        self.snapshot_sketches()
            .iter()
            .map(|sketch| {
                let mut bytes = Vec::with_capacity(params.node_sketch_serialized_bytes());
                params.serialize_node_sketch(sketch, &mut bytes);
                bytes
            })
            .collect()
    }

    /// Owned copies of all node sketches (checkpointing). Callers should
    /// [`Self::flush`] first so buffered updates are included.
    pub(crate) fn snapshot_sketches(&self) -> Vec<crate::node_sketch::CubeNodeSketch> {
        self.store
            .snapshot()
            .into_iter()
            .map(|s| s.expect("store snapshot holds every node"))
            .collect()
    }

    /// Replace all sketch state (checkpoint restore).
    pub(crate) fn load_sketches(
        &mut self,
        sketches: Vec<crate::node_sketch::CubeNodeSketch>,
        updates_ingested: u64,
    ) {
        self.store.load_all(sketches);
        self.updates_ingested = updates_ingested;
        // A restore rewrites history; a cached staleness epoch would serve
        // pre-restore answers.
        self.cached_epoch = None;
    }

    /// Shut down: close the queue and join the Graph Workers. Called
    /// automatically on drop; explicit form surfaces worker panics.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        if let Some(workers) = self.workers.take() {
            workers.join();
        }
    }
}

impl Drop for GraphZeppelin {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GutterCapacity, LockingStrategy};

    fn tiny_config(num_nodes: u64) -> GzConfig {
        let mut c = GzConfig::in_ram(num_nodes);
        c.num_workers = 2;
        c
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let mut gz = GraphZeppelin::new(tiny_config(8)).unwrap();
        let cc = gz.connected_components().unwrap();
        assert_eq!(cc.num_components(), 8);
        assert!(cc.spanning_forest().is_empty());
    }

    #[test]
    fn triangle_plus_edge() {
        let mut gz = GraphZeppelin::new(tiny_config(16)).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(1, 2);
        gz.edge_update(2, 0);
        gz.edge_update(9, 10);
        let cc = gz.connected_components().unwrap();
        assert!(cc.same_component(0, 2));
        assert!(cc.same_component(9, 10));
        assert!(!cc.same_component(0, 9));
        // 11 singletons + the triangle + the pair.
        assert_eq!(cc.num_components(), 13);
        assert_eq!(cc.spanning_forest().len(), 3);
    }

    #[test]
    fn deletion_disconnects() {
        let mut gz = GraphZeppelin::new(tiny_config(8)).unwrap();
        gz.update(0, 1, false);
        gz.update(1, 2, false);
        let cc1 = gz.connected_components().unwrap();
        assert!(cc1.same_component(0, 2));
        // Delete the bridge (toggle it off).
        gz.update(1, 2, true);
        let cc2 = gz.connected_components().unwrap();
        assert!(cc2.same_component(0, 1));
        assert!(!cc2.same_component(1, 2));
    }

    #[test]
    fn queries_are_repeatable_and_nondestructive() {
        let mut gz = GraphZeppelin::new(tiny_config(8)).unwrap();
        gz.edge_update(3, 4);
        let a = gz.connected_components().unwrap();
        let b = gz.connected_components().unwrap();
        assert_eq!(a.labels(), b.labels());
        // And ingestion continues to work after queries.
        gz.edge_update(4, 5);
        let c = gz.connected_components().unwrap();
        assert!(c.same_component(3, 5));
    }

    #[test]
    fn update_counts() {
        let mut gz = GraphZeppelin::new(tiny_config(8)).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(0, 2);
        assert_eq!(gz.updates_ingested(), 2);
        gz.flush();
        assert!(gz.batches_applied() > 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut gz = GraphZeppelin::new(tiny_config(8)).unwrap();
        gz.edge_update(3, 3);
    }

    #[test]
    fn tiny_buffers_behave_like_unbuffered() {
        let mut c = tiny_config(8);
        c.buffering = BufferStrategy::LeafOnly { capacity: GutterCapacity::Updates(1) };
        let mut gz = GraphZeppelin::new(c).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(1, 2);
        let cc = gz.connected_components().unwrap();
        assert!(cc.same_component(0, 2));
    }

    #[test]
    fn direct_locking_matches_delta() {
        let mut ca = tiny_config(12);
        ca.locking = LockingStrategy::Direct;
        let mut cb = tiny_config(12);
        cb.locking = LockingStrategy::DeltaSketch;
        let edges = [(0u32, 1u32), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)];
        let mut a = GraphZeppelin::new(ca).unwrap();
        let mut b = GraphZeppelin::new(cb).unwrap();
        for &(u, v) in &edges {
            a.edge_update(u, v);
            b.edge_update(u, v);
        }
        assert_eq!(
            a.connected_components().unwrap().labels(),
            b.connected_components().unwrap().labels()
        );
    }

    #[test]
    fn streaming_query_bit_identical_to_snapshot() {
        let mut gz = GraphZeppelin::new(tiny_config(24)).unwrap();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3), (5, 6), (8, 9), (9, 10), (10, 8)] {
            gz.edge_update(u, v);
        }
        let snap = gz.spanning_forest_snapshot().unwrap();
        let stream = gz.spanning_forest_streaming().unwrap();
        assert_eq!(snap.labels, stream.labels);
        assert_eq!(snap.forest, stream.forest);
        assert_eq!(snap.rounds_used, stream.rounds_used);
        assert_eq!(snap.sketch_failures, stream.sketch_failures);
        // And the configured mode routes to the same answers.
        let mut c = tiny_config(24);
        c.query_mode = crate::config::QueryMode::Streaming;
        let mut gz2 = GraphZeppelin::new(c).unwrap();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3), (5, 6), (8, 9), (9, 10), (10, 8)] {
            gz2.edge_update(u, v);
        }
        assert_eq!(gz2.spanning_forest().unwrap().labels, snap.labels);
    }

    #[test]
    fn streaming_query_on_disk_store_keeps_less_resident() {
        let dir = gz_testutil::TempDir::new("gz-system-streamq");
        let mut c = tiny_config(64);
        c.store = StoreBackend::Disk {
            dir: dir.path().to_path_buf(),
            block_bytes: 1 << 13,
            cache_groups: 2,
        };
        let mut gz = GraphZeppelin::new(c).unwrap();
        for i in 0..63u32 {
            gz.edge_update(i, i + 1);
        }
        let snap = gz.spanning_forest_snapshot().unwrap();
        let stream = gz.spanning_forest_streaming().unwrap();
        assert_eq!(snap.labels, stream.labels);
        assert!(
            stream.peak_sketch_bytes < snap.peak_sketch_bytes,
            "streaming resident {} must undercut snapshot {}",
            stream.peak_sketch_bytes,
            snap.peak_sketch_bytes
        );
    }

    #[test]
    fn memory_accounting_positive() {
        let gz = GraphZeppelin::new(tiny_config(32)).unwrap();
        assert!(gz.sketch_bytes() > 0);
        assert!(gz.memory_bytes() >= gz.sketch_bytes());
    }

    #[test]
    fn hybrid_store_matches_dense_and_shrinks_memory() {
        // τ=4 hybrid vs τ=0 dense on a sparse star: identical serialized
        // state (promotion-by-replay), answers, and a strictly smaller
        // resident sketch footprint while most nodes stay sparse.
        let mut dense_cfg = tiny_config(64);
        dense_cfg.sketch_threshold = 0;
        let mut hybrid_cfg = tiny_config(64);
        hybrid_cfg.sketch_threshold = 4;
        let mut dense = GraphZeppelin::new(dense_cfg).unwrap();
        let mut hybrid = GraphZeppelin::new(hybrid_cfg).unwrap();
        for i in 1..20u32 {
            dense.edge_update(0, i); // hub 0 crosses τ, leaves stay sparse
            hybrid.edge_update(0, i);
        }
        assert_eq!(dense.snapshot_serialized(), hybrid.snapshot_serialized());
        let (a, b) =
            (dense.connected_components().unwrap(), hybrid.connected_components().unwrap());
        assert_eq!(a.labels(), b.labels());
        let stats = hybrid.rep_stats();
        assert_eq!(stats.promoted, 1, "only the hub crosses τ");
        assert_eq!(stats.sparse, 63);
        assert!(hybrid.sketch_bytes() * 5 <= dense.sketch_bytes(), "≥5× resident reduction");
        // Streaming queries synthesize sparse nodes' slices by replay.
        let snap = hybrid.spanning_forest_snapshot().unwrap();
        let stream = hybrid.spanning_forest_streaming().unwrap();
        assert_eq!(snap.labels, stream.labels);
        assert_eq!(snap.forest, stream.forest);
    }

    #[test]
    fn query_pool_survives_thread_count_changes() {
        let mut gz = GraphZeppelin::new(tiny_config(16)).unwrap();
        gz.edge_update(0, 1);
        let a = gz.connected_components().unwrap();
        gz.set_query_threads(3);
        let b = gz.connected_components().unwrap();
        gz.set_query_threads(1);
        let c = gz.connected_components().unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.labels(), c.labels());
    }

    #[test]
    fn second_toggle_deletes() {
        // The invariant tests/equivalence.rs relies on: repeating an
        // `edge_update` toggles the edge back out of the graph.
        let mut gz = GraphZeppelin::new(tiny_config(8)).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(1, 2);
        gz.edge_update(0, 1); // second toggle = deletion
        let cc = gz.connected_components().unwrap();
        assert!(cc.same_component(1, 2));
        assert!(!cc.same_component(0, 1));
        // A third toggle re-inserts.
        gz.edge_update(0, 1);
        let cc = gz.connected_components().unwrap();
        assert!(cc.same_component(0, 2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gz_graph::connectivity::{connected_components_dsu, same_partition};
    use gz_graph::{AdjacencyList, Edge};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// edge_update toggle semantics against an explicit mirror: applying
        /// an arbitrary pair sequence (with repeats, so second toggles occur)
        /// must leave GraphZeppelin's partition equal to the partition of the
        /// toggled adjacency list.
        #[test]
        fn toggle_stream_matches_adjacency_mirror(
            raw in proptest::collection::vec((0u32..12, 0u32..12), 1..120)
        ) {
            let n = 12u64;
            let mut gz = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
            let mut mirror = AdjacencyList::new(n as usize);
            for &(a, b) in raw.iter().filter(|(a, b)| a != b) {
                gz.edge_update(a, b);
                mirror.toggle(Edge::new(a, b));
            }
            let cc = gz.connected_components().unwrap();
            let truth = connected_components_dsu(&mirror);
            prop_assert!(
                same_partition(cc.labels(), &truth),
                "gz={:?} truth={:?}",
                cc.labels(),
                truth
            );
        }
    }
}
