//! Raw Linux io_uring bindings for the batched I/O backend.
//!
//! Hand-rolled in the same in-tree-shim spirit as the rand/proptest shims:
//! no `io-uring` or `libc` crate, just the two syscalls
//! (`io_uring_setup` = 425, `io_uring_enter` = 426 — asm-generic numbers,
//! identical on every Linux architecture) plus the libc `mmap`/`munmap`/
//! `close` functions the standard library already links against.
//!
//! The submission and completion rings are mapped per the stable io_uring
//! ABI (`io_uring.h`):
//!
//! - A 64-byte SQE: `opcode` at byte 0, `fd` at 4, file `off`set at 8,
//!   buffer `addr` at 16, `len` at 24, `user_data` at 32. We use only
//!   `IORING_OP_READ` (22) / `IORING_OP_WRITE` (23) / `IORING_OP_NOP` (0).
//! - A 16-byte CQE: `user_data` at 0, `res` at 8 (bytes transferred, or
//!   `-errno`), `flags` at 12.
//! - Ring headers come back from `io_uring_setup` as byte offsets into two
//!   mmap regions: the SQ ring at file offset 0 (`IORING_OFF_SQ_RING`) and
//!   the SQE array at `0x1000_0000` (`IORING_OFF_SQES`). We require
//!   `IORING_FEAT_SINGLE_MMAP` (kernel ≥ 5.4), under which the CQ ring
//!   shares the SQ mapping, so one map of
//!   `max(sq.array + sq_entries·4, cq.cqes + cq_entries·16)` bytes covers
//!   both headers.
//!
//! Head/tail protocol: the producer (us, for the SQ) writes entries, then
//! Release-stores the new tail; the consumer (us, for the CQ) Acquire-loads
//! the kernel's tail, reads entries, then Release-stores the new head.

use std::io;
use std::os::raw::{c_int, c_long, c_void};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: c_long,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn close(fd: c_int) -> c_int;
}

const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;

const IORING_OFF_SQ_RING: c_long = 0;
const IORING_OFF_SQES: c_long = 0x1000_0000;
const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_ENTER_GETEVENTS: u32 = 1 << 0;

const PROT_READ_WRITE: c_int = 0x3;
const MAP_SHARED_POPULATE: c_int = 0x8001;

const SQE_BYTES: usize = 64;
const CQE_BYTES: usize = 16;

pub(crate) const IORING_OP_NOP: u8 = 0;
pub(crate) const IORING_OP_READ: u8 = 22;
pub(crate) const IORING_OP_WRITE: u8 = 23;

/// `struct io_uring_params`: filled in by `io_uring_setup`. The two offset
/// structs are kept as flat word arrays; see the named accessors below for
/// which index is which field.
#[repr(C)]
#[derive(Default)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    /// `io_sqring_offsets`: head, tail, ring_mask, ring_entries, flags,
    /// dropped, array, resv1.
    sq_off: [u32; 8],
    sq_user_addr: u64,
    /// `io_cqring_offsets`: head, tail, ring_mask, ring_entries, overflow,
    /// cqes, flags, resv1.
    cq_off: [u32; 8],
    cq_user_addr: u64,
}

/// One mapped io_uring instance. Rings are pooled by the backend and
/// checked out per reader, so a `Ring` is only ever driven by one thread at
/// a time; `Send` lets the pool hand a ring to whichever worker claims it.
pub(crate) struct Ring {
    fd: c_int,
    ring_ptr: *mut u8,
    ring_len: usize,
    sqes: *mut u8,
    sqes_len: usize,
    sq_entries: u32,
    sq_mask: u32,
    cq_mask: u32,
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_array: *mut u32,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cqes: *const u8,
    /// SQEs pushed since the last `enter`.
    pending: u32,
}

// SAFETY: the raw pointers target the ring mappings owned by this value
// (unmapped only in Drop), and all accesses go through &mut self — a Ring
// is never shared between threads, only moved (ring-pool checkout).
unsafe impl Send for Ring {}

impl Ring {
    /// Set up an io_uring of at least `entries` SQEs and map its rings.
    pub(crate) fn new(entries: u32) -> io::Result<Ring> {
        let mut params = UringParams::default();
        let fd =
            unsafe { syscall(SYS_IO_URING_SETUP, entries.max(1), &mut params as *mut UringParams) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as c_int;
        if params.features & IORING_FEAT_SINGLE_MMAP == 0 {
            // Pre-5.4 kernels need a third mapping for the CQ ring; not
            // worth supporting — the pread backend covers them.
            unsafe { close(fd) };
            return Err(io::Error::other("io_uring lacks IORING_FEAT_SINGLE_MMAP"));
        }

        let sq_ring_len = params.sq_off[6] as usize + params.sq_entries as usize * 4;
        let cq_ring_len = params.cq_off[5] as usize + params.cq_entries as usize * CQE_BYTES;
        let ring_len = sq_ring_len.max(cq_ring_len);
        let ring_ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                ring_len,
                PROT_READ_WRITE,
                MAP_SHARED_POPULATE,
                fd,
                IORING_OFF_SQ_RING,
            )
        };
        if ring_ptr as isize == -1 {
            let err = io::Error::last_os_error();
            unsafe { close(fd) };
            return Err(err);
        }
        let sqes_len = params.sq_entries as usize * SQE_BYTES;
        let sqes = unsafe {
            mmap(
                std::ptr::null_mut(),
                sqes_len,
                PROT_READ_WRITE,
                MAP_SHARED_POPULATE,
                fd,
                IORING_OFF_SQES,
            )
        };
        if sqes as isize == -1 {
            let err = io::Error::last_os_error();
            unsafe {
                munmap(ring_ptr, ring_len);
                close(fd)
            };
            return Err(err);
        }

        let ring_ptr = ring_ptr as *mut u8;
        unsafe {
            Ok(Ring {
                fd,
                ring_ptr,
                ring_len,
                sqes: sqes as *mut u8,
                sqes_len,
                sq_entries: params.sq_entries,
                sq_mask: *(ring_ptr.add(params.sq_off[2] as usize) as *const u32),
                cq_mask: *(ring_ptr.add(params.cq_off[2] as usize) as *const u32),
                sq_head: ring_ptr.add(params.sq_off[0] as usize) as *const AtomicU32,
                sq_tail: ring_ptr.add(params.sq_off[1] as usize) as *const AtomicU32,
                sq_array: ring_ptr.add(params.sq_off[6] as usize) as *mut u32,
                cq_head: ring_ptr.add(params.cq_off[0] as usize) as *const AtomicU32,
                cq_tail: ring_ptr.add(params.cq_off[1] as usize) as *const AtomicU32,
                cqes: ring_ptr.add(params.cq_off[5] as usize),
                pending: 0,
            })
        }
    }

    /// SQEs the ring can hold (≥ the requested queue depth).
    #[cfg(test)]
    pub(crate) fn entries(&self) -> u32 {
        self.sq_entries
    }

    /// Enqueue one SQE (not yet submitted to the kernel); returns false if
    /// the submission ring is full.
    pub(crate) fn push_sqe(
        &mut self,
        opcode: u8,
        fd: c_int,
        offset: u64,
        addr: u64,
        len: u32,
        user_data: u64,
    ) -> bool {
        unsafe {
            let head = (*self.sq_head).load(Ordering::Acquire);
            let tail = (*self.sq_tail).load(Ordering::Relaxed);
            if tail.wrapping_sub(head) >= self.sq_entries {
                return false;
            }
            let idx = tail & self.sq_mask;
            let sqe = self.sqes.add(idx as usize * SQE_BYTES);
            std::ptr::write_bytes(sqe, 0, SQE_BYTES);
            *sqe = opcode;
            *(sqe.add(4) as *mut c_int) = fd;
            *(sqe.add(8) as *mut u64) = offset;
            *(sqe.add(16) as *mut u64) = addr;
            *(sqe.add(24) as *mut u32) = len;
            *(sqe.add(32) as *mut u64) = user_data;
            *self.sq_array.add(idx as usize) = idx;
            (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
        }
        self.pending += 1;
        true
    }

    /// Submit everything pushed since the last call and wait until at least
    /// `min_complete` completions are available. Returns the number of SQEs
    /// the kernel consumed.
    pub(crate) fn enter(&mut self, min_complete: u32) -> io::Result<u32> {
        let to_submit = self.pending;
        loop {
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd,
                    to_submit,
                    min_complete,
                    IORING_ENTER_GETEVENTS,
                    std::ptr::null::<c_void>(),
                    0usize,
                )
            };
            if ret >= 0 {
                self.pending = to_submit - ret as u32;
                return Ok(ret as u32);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Reap one completion, if available: `(user_data, res)` where `res` is
    /// bytes transferred or `-errno`.
    pub(crate) fn pop_cqe(&mut self) -> Option<(u64, i32)> {
        unsafe {
            let head = (*self.cq_head).load(Ordering::Relaxed);
            let tail = (*self.cq_tail).load(Ordering::Acquire);
            if head == tail {
                return None;
            }
            let cqe = self.cqes.add((head & self.cq_mask) as usize * CQE_BYTES);
            let user_data = *(cqe as *const u64);
            let res = *(cqe.add(8) as *const i32);
            (*self.cq_head).store(head.wrapping_add(1), Ordering::Release);
            Some((user_data, res))
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        unsafe {
            munmap(self.sqes as *mut c_void, self.sqes_len);
            munmap(self.ring_ptr as *mut c_void, self.ring_len);
            close(self.fd);
        }
    }
}

/// Whether this host can set up and drive an io_uring (kernel support, no
/// seccomp/`io_uring_disabled` policy in the way). Probed once per process
/// by round-tripping a NOP through a small ring.
pub fn uring_available() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| {
        let Ok(mut ring) = Ring::new(4) else { return false };
        if !ring.push_sqe(IORING_OP_NOP, -1, 0, 0, 0, 0x6e6f70) {
            return false;
        }
        match ring.enter(1) {
            Ok(1) => {
                ring.pop_cqe().is_some_and(|(user_data, res)| user_data == 0x6e6f70 && res == 0)
            }
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn probe_is_stable() {
        assert_eq!(uring_available(), uring_available());
    }

    #[test]
    fn batched_reads_round_trip() {
        if !uring_available() {
            eprintln!("skipping: io_uring unavailable on this host");
            return;
        }
        let path = gz_testutil::TempPath::new("gz-uring-smoke", ".bin");
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(path.to_path_buf(), &data).unwrap();
        let file = std::fs::File::open(path.to_path_buf()).unwrap();

        // Four reads submitted in one enter, reaped in any order.
        let mut ring = Ring::new(8).unwrap();
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 2048]).collect();
        for (i, buf) in bufs.iter_mut().enumerate() {
            assert!(ring.push_sqe(
                IORING_OP_READ,
                file.as_raw_fd(),
                i as u64 * 2048,
                buf.as_mut_ptr() as u64,
                2048,
                i as u64,
            ));
        }
        assert_eq!(ring.enter(4).unwrap(), 4);
        let mut seen = [false; 4];
        for _ in 0..4 {
            let (user_data, res) = ring.pop_cqe().expect("4 completions pending");
            assert_eq!(res, 2048, "read {user_data}");
            seen[user_data as usize] = true;
        }
        assert!(ring.pop_cqe().is_none());
        assert_eq!(seen, [true; 4]);
        for (i, buf) in bufs.iter().enumerate() {
            assert_eq!(buf[..], data[i * 2048..(i + 1) * 2048], "buffer {i}");
        }
    }

    #[test]
    fn full_ring_rejects_push() {
        if !uring_available() {
            eprintln!("skipping: io_uring unavailable on this host");
            return;
        }
        let mut ring = Ring::new(2).unwrap();
        let entries = ring.entries();
        for i in 0..entries {
            assert!(ring.push_sqe(IORING_OP_NOP, -1, 0, 0, 0, i as u64));
        }
        assert!(!ring.push_sqe(IORING_OP_NOP, -1, 0, 0, 0, 99), "ring must report full");
        assert_eq!(ring.enter(entries).unwrap(), entries);
        for _ in 0..entries {
            assert!(ring.pop_cqe().is_some());
        }
    }
}
