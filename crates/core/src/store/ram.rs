//! In-RAM sketch store with per-node locking.
//!
//! Paper §5.1: "locking is necessary at the batch level because consecutive
//! batch updates may be requested to the same node sketch […] We minimize
//! the size of this critical section by exploiting linearity of ℓ0-samplers.
//! Rather than locking a node sketch S(x) for the entire batch operation, we
//! apply the updates to an empty sketch S(x0) and lock only to add
//! S(x) = S(x) + S(x0)." Both disciplines are implemented; the choice is an
//! ablation benchmark.

use crate::config::LockingStrategy;
use crate::node_sketch::{CubeNodeSketch, CubeRoundSketch, SketchParams};
use crate::sparse::SparseSet;
use crate::store::epoch::{EpochOverlay, EpochRegistry};
use crate::store::{NodeSet, RepStats};
use parking_lot::Mutex;
use std::sync::Arc;

/// One vertex's current representation (DESIGN.md §12).
///
/// Every vertex starts [`NodeRep::Sparse`] when the store's threshold `τ`
/// is non-zero and is promoted to [`NodeRep::Dense`] — by replaying its
/// exact toggle set through the batch kernel, bit-identical to an
/// always-dense run — once its live-set size exceeds `τ`. Promotion is
/// monotone: a vertex never demotes, which is what makes lock-free peeks
/// of "is this vertex dense?" race-safe.
enum NodeRep {
    Sparse(SparseSet),
    Dense(CubeNodeSketch),
}

/// Node sketches in memory, one lock per owned node.
///
/// The store may cover the whole vertex set (a single-node system) or just
/// one residue class (a shard): slots are dense over the [`NodeSet`], so a
/// shard allocates sketches only for the vertices it owns.
pub struct RamStore {
    params: Arc<SketchParams>,
    node_set: NodeSet,
    nodes: Vec<Mutex<NodeRep>>,
    locking: LockingStrategy,
    /// Hybrid sparse/dense threshold `τ`; `0` = always dense.
    threshold: u32,
    /// Reusable scratch sketches for the delta-sketch discipline: workers
    /// check one out per batch, so no full node sketch is allocated on the
    /// hot path.
    scratch_pool: Mutex<Vec<CubeNodeSketch>>,
    /// Live sealed epochs. A RAM store's copy-on-write "group" is a single
    /// slot: captures happen under the node's lock, right before the first
    /// post-seal mutation of that node.
    epochs: EpochRegistry,
}

impl RamStore {
    /// Allocate fresh (all-zero) sketches for every node (always-dense).
    pub fn new(params: Arc<SketchParams>, locking: LockingStrategy) -> Self {
        let node_set = NodeSet::all(params.num_nodes);
        Self::for_nodes(params, locking, node_set)
    }

    /// Allocate fresh sketches for the nodes of `node_set` only (a shard's
    /// residue class), always-dense. Sketches still hash over the *full*
    /// characteristic vector — ownership restricts which vertices live
    /// here, not the edge universe.
    pub fn for_nodes(
        params: Arc<SketchParams>,
        locking: LockingStrategy,
        node_set: NodeSet,
    ) -> Self {
        Self::for_nodes_with_threshold(params, locking, node_set, 0)
    }

    /// Hybrid store over `node_set`: with `threshold > 0` every vertex
    /// starts as an exact sparse toggle set and densifies past `threshold`
    /// live neighbors; `0` allocates dense sketches up front (the exact
    /// pre-hybrid behavior).
    pub fn for_nodes_with_threshold(
        params: Arc<SketchParams>,
        locking: LockingStrategy,
        node_set: NodeSet,
        threshold: u32,
    ) -> Self {
        let nodes = (0..node_set.len())
            .map(|_| {
                Mutex::new(if threshold == 0 {
                    NodeRep::Dense(params.new_node_sketch())
                } else {
                    NodeRep::Sparse(SparseSet::new())
                })
            })
            .collect();
        RamStore {
            params,
            node_set,
            nodes,
            locking,
            threshold,
            scratch_pool: Mutex::new(Vec::new()),
            epochs: EpochRegistry::new(),
        }
    }

    /// Seal the current generation (see [`crate::store::SketchStore::begin_epoch`]).
    pub fn begin_epoch(&self) -> (u64, Arc<EpochOverlay>) {
        self.epochs.register()
    }

    /// Lock `slot`'s sketch for mutation, capturing its pre-image into any
    /// live epoch that has not seen this slot dirtied yet. Every write to a
    /// node sketch goes through here — that is what makes the overlay a
    /// faithful sealed generation. A still-sparse vertex is promoted first
    /// (capture its sparse pre-image, replay the set into a dense sketch,
    /// then mutate) — bit-identical because the set is authoritative.
    fn with_node<R>(&self, slot: usize, f: impl FnOnce(&mut CubeNodeSketch) -> R) -> R {
        let mut rep = self.nodes[slot].lock();
        match &mut *rep {
            NodeRep::Dense(sketch) => {
                self.epochs.capture_group(slot as u32, &mut || vec![sketch.clone()]);
                f(sketch)
            }
            NodeRep::Sparse(set) => {
                self.epochs.capture_sparse(slot as u32, &mut || set.clone());
                let mut dense = set.densify(self.node_set.node(slot), &self.params);
                let out = f(&mut dense);
                *rep = NodeRep::Dense(dense);
                out
            }
        }
    }

    /// Shared sketch parameters.
    pub fn params(&self) -> &Arc<SketchParams> {
        &self.params
    }

    /// The vertex set this store holds sketches for.
    pub fn node_set(&self) -> NodeSet {
        self.node_set
    }

    /// Check a scratch node sketch out of the reusable pool (all-zero, no
    /// allocation once the pool is warm) — the delta-sketch discipline's
    /// workspace. Return it with [`Self::recycle_scratch`].
    pub(crate) fn checkout_scratch(&self) -> CubeNodeSketch {
        self.scratch_pool.lock().pop().unwrap_or_else(|| self.params.new_node_sketch())
    }

    /// Zero a scratch sketch and put it back in the pool for the next batch.
    pub(crate) fn recycle_scratch(&self, mut scratch: CubeNodeSketch) {
        scratch.clear_all();
        self.scratch_pool.lock().push(scratch);
    }

    /// Apply a batch of encoded records to `node` (which must be owned).
    pub fn apply_batch(&self, node: u32, records: &[u32]) {
        let slot = self.node_set.slot(node);
        // Sparse fast path: toggle the exact set under the slot lock —
        // no hashing, no scratch, no delta. Promote (replay through the
        // batch kernel) once the live set outgrows `τ`. A vertex observed
        // dense here stays dense (promotion is monotone), so falling
        // through to the dense disciplines below is race-free.
        {
            let mut rep = self.nodes[slot].lock();
            if let NodeRep::Sparse(set) = &mut *rep {
                self.epochs.capture_sparse(slot as u32, &mut || set.clone());
                let mut len = set.len();
                for &rec in records {
                    let (other, _) = crate::node_sketch::decode_other(rec);
                    if other != node {
                        len = set.toggle(other);
                    }
                }
                if len > self.threshold as usize {
                    let dense = set.densify(node, &self.params);
                    *rep = NodeRep::Dense(dense);
                }
                return;
            }
        }
        match self.locking {
            LockingStrategy::Direct => {
                self.with_node(slot, |sketch| {
                    super::apply_records(sketch, node, records, self.params.num_nodes);
                });
            }
            LockingStrategy::DeltaSketch => {
                let mut scratch = self.checkout_scratch();
                // Build the delta without holding the node's lock…
                super::apply_records(&mut scratch, node, records, self.params.num_nodes);
                // …lock only for the XOR-merge…
                self.with_node(slot, |sketch| sketch.merge(&scratch));
                // …and recycle the scratch.
                self.recycle_scratch(scratch);
            }
        }
    }

    /// Merge a pre-built delta sketch into `node` under its lock — the
    /// entry point for the sketch-level-parallel path in [`crate::ingest`],
    /// which constructs the delta across a thread group first.
    pub fn merge_delta(&self, node: u32, delta: &CubeNodeSketch) {
        self.with_node(self.node_set.slot(node), |sketch| sketch.merge(delta));
    }

    /// Stream the round-`round` slice of every owned, still-`live` **dense**
    /// node into `sink` in slot order. Each node's lock is held only for its
    /// own sink call, and nothing is cloned — the streaming query borrows
    /// the resident sketches in place. Sparse vertices are skipped: the
    /// [`crate::store::SketchStore`] dispatch synthesizes their slices from
    /// the exact sets (see [`Self::sparse_sets`]) so each vertex is emitted
    /// exactly once.
    pub fn stream_round(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &crate::node_sketch::CubeRoundSketch),
    ) {
        for (slot, lock) in self.nodes.iter().enumerate() {
            let node = self.node_set.node(slot);
            if !live(node) {
                continue;
            }
            let rep = lock.lock();
            if let NodeRep::Dense(sketch) = &*rep {
                sink(node, sketch.round(round));
            }
        }
    }

    /// Parallel form of [`Self::stream_round`]: slots are partitioned into
    /// contiguous ranges, one per pool worker, and each worker folds its
    /// range's borrowed round slices into its own sink. Per-node locks make
    /// this safe against concurrent ingestion, though the system query path
    /// quiesces ingestion first anyway.
    pub fn stream_round_parallel(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &gz_gutters::WorkerPool,
        sinks: &[parking_lot::Mutex<crate::boruvka::RoundSink<'_, CubeRoundSketch>>],
    ) {
        pool.run(&|w| {
            let range = pool.partition(self.nodes.len(), w);
            if range.is_empty() {
                return;
            }
            let mut sink = sinks[w].lock();
            for slot in range {
                let node = self.node_set.node(slot);
                if !live(node) {
                    continue;
                }
                let rep = self.nodes[slot].lock();
                if let NodeRep::Dense(sketch) = &*rep {
                    sink.fold(node, sketch.round(round));
                }
            }
        });
    }

    /// [`Self::stream_round`] pinned to a sealed epoch: each slot's lock is
    /// taken, then the overlay is consulted — a captured pre-image wins;
    /// otherwise the live value is the sealed value (the node lock makes
    /// the check-then-read atomic against the capture-then-mutate writer,
    /// which takes the same lock first). Vertices that were sparse at the
    /// seal (sparse pre-image in the overlay, or still sparse live) are
    /// skipped — the dispatch layer synthesizes them from
    /// [`Self::sparse_sets_at`].
    pub fn stream_round_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) {
        for (slot, lock) in self.nodes.iter().enumerate() {
            let node = self.node_set.node(slot);
            if !live(node) {
                continue;
            }
            let rep = lock.lock();
            if overlay.get_sparse(slot as u32).is_some() {
                continue;
            }
            match (overlay.get(slot as u32), &*rep) {
                (Some(pre), _) => sink(node, pre[0].round(round)),
                (None, NodeRep::Dense(sketch)) => sink(node, sketch.round(round)),
                (None, NodeRep::Sparse(_)) => {} // sealed-sparse: synthesized elsewhere
            }
        }
    }

    /// Parallel form of [`Self::stream_round_at`] (see
    /// [`Self::stream_round_parallel`] for the partitioning).
    pub fn stream_round_parallel_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        pool: &gz_gutters::WorkerPool,
        sinks: &[parking_lot::Mutex<crate::boruvka::RoundSink<'_, CubeRoundSketch>>],
    ) {
        pool.run(&|w| {
            let range = pool.partition(self.nodes.len(), w);
            if range.is_empty() {
                return;
            }
            let mut sink = sinks[w].lock();
            for slot in range {
                let node = self.node_set.node(slot);
                if !live(node) {
                    continue;
                }
                let rep = self.nodes[slot].lock();
                if overlay.get_sparse(slot as u32).is_some() {
                    continue;
                }
                match (overlay.get(slot as u32), &*rep) {
                    (Some(pre), _) => sink.fold(node, pre[0].round(round)),
                    (None, NodeRep::Dense(sketch)) => sink.fold(node, sketch.round(round)),
                    (None, NodeRep::Sparse(_)) => {}
                }
            }
        });
    }

    /// Clone out every owned node sketch, indexed by slot. Sparse vertices
    /// are densified by replay — the snapshot is bit-identical to an
    /// always-dense store's (the serialized-state equivalence oracle).
    pub fn snapshot(&self) -> Vec<Option<CubeNodeSketch>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(slot, m)| {
                let rep = m.lock();
                Some(match &*rep {
                    NodeRep::Dense(sketch) => sketch.clone(),
                    NodeRep::Sparse(set) => set.densify(self.node_set.node(slot), &self.params),
                })
            })
            .collect()
    }

    /// Clone out every owned node sketch as `(node, sketch)` pairs
    /// (sparse vertices densified by replay).
    pub fn snapshot_owned(&self) -> Vec<(u32, CubeNodeSketch)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(slot, m)| {
                let node = self.node_set.node(slot);
                let rep = m.lock();
                let sketch = match &*rep {
                    NodeRep::Dense(sketch) => sketch.clone(),
                    NodeRep::Sparse(set) => set.densify(node, &self.params),
                };
                (node, sketch)
            })
            .collect()
    }

    /// Replace every node sketch (checkpoint restore), in slot order.
    /// Restored vertices are dense regardless of the threshold.
    pub fn load_all(&self, sketches: Vec<CubeNodeSketch>) {
        assert_eq!(sketches.len(), self.nodes.len());
        for (slot, sketch) in sketches.into_iter().enumerate() {
            self.with_node(slot, |dst| *dst = sketch);
        }
    }

    /// Resident sketch payload bytes (owned nodes only): dense vertices at
    /// the paper's per-sketch accounting, sparse vertices at 4 bytes per
    /// live neighbor. With `τ = 0` this is exactly the dense formula.
    pub fn sketch_bytes(&self) -> usize {
        let stats = self.rep_stats();
        self.params.node_sketch_bytes() * stats.promoted + stats.sparse_entries * 4
    }

    /// Representation census: how many vertices are promoted vs still
    /// sparse, and the total live entries across sparse sets.
    pub fn rep_stats(&self) -> RepStats {
        let mut stats = RepStats::default();
        for m in &self.nodes {
            match &*m.lock() {
                NodeRep::Dense(_) => stats.promoted += 1,
                NodeRep::Sparse(set) => {
                    stats.sparse += 1;
                    stats.sparse_entries += set.len();
                }
            }
        }
        stats
    }

    /// Clone out the live sparse sets of still-`live` vertices — the
    /// dispatch layer's synthesis input for [`Self::stream_round`].
    pub fn sparse_sets(&self, live: &(dyn Fn(u32) -> bool + Sync)) -> Vec<(u32, SparseSet)> {
        let mut out = Vec::new();
        for (slot, m) in self.nodes.iter().enumerate() {
            let node = self.node_set.node(slot);
            if !live(node) {
                continue;
            }
            let rep = m.lock();
            if let NodeRep::Sparse(set) = &*rep {
                out.push((node, set.clone()));
            }
        }
        out
    }

    /// The sealed sparse view for an epoch: a vertex that was sparse at the
    /// seal is returned with its sealed set — the overlay pre-image if it
    /// was mutated (or promoted) post-seal, the live set otherwise. The
    /// slot lock makes the overlay-then-live check atomic against the
    /// capture-then-mutate writer.
    pub fn sparse_sets_at(
        &self,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
    ) -> Vec<(u32, SparseSet)> {
        let mut out = Vec::new();
        for (slot, m) in self.nodes.iter().enumerate() {
            let node = self.node_set.node(slot);
            if !live(node) {
                continue;
            }
            let rep = m.lock();
            if let Some(pre) = overlay.get_sparse(slot as u32) {
                out.push((node, (*pre).clone()));
            } else if let NodeRep::Sparse(set) = &*rep {
                out.push((node, set.clone()));
            }
        }
        out
    }

    /// Scratch sketches currently parked in the pool (test instrumentation
    /// for the reuse discipline).
    #[cfg(test)]
    pub(crate) fn scratch_pool_len(&self) -> usize {
        self.scratch_pool.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::{encode_other, update_index};
    use gz_sketch::SampleResult;

    fn store(locking: LockingStrategy) -> RamStore {
        let params = Arc::new(SketchParams::new(32, 4, 7, 99));
        RamStore::new(params, locking)
    }

    #[test]
    fn batch_application_direct_vs_delta_identical() {
        let a = store(LockingStrategy::Direct);
        let b = store(LockingStrategy::DeltaSketch);
        let records: Vec<u32> =
            [(1u32, false), (2, false), (1, true)].map(|(o, d)| encode_other(o, d)).to_vec();
        a.apply_batch(0, &records);
        b.apply_batch(0, &records);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        for (x, y) in sa.iter().zip(sb.iter()) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            for r in 0..x.num_rounds() {
                assert_eq!(x.sample_round(r), y.sample_round(r));
            }
        }
    }

    #[test]
    fn toggle_semantics() {
        let s = store(LockingStrategy::DeltaSketch);
        // (0,5) toggled twice cancels; (0,9) stays.
        s.apply_batch(0, &[encode_other(5, false), encode_other(9, false)]);
        s.apply_batch(0, &[encode_other(5, true)]);
        let snap = s.snapshot();
        let sketch = snap[0].as_ref().unwrap();
        assert_eq!(sketch.sample_round(0), SampleResult::Index(update_index(0, 9, 32)));
    }

    #[test]
    fn self_loops_ignored() {
        let s = store(LockingStrategy::Direct);
        s.apply_batch(3, &[encode_other(3, false)]);
        let snap = s.snapshot();
        assert_eq!(snap[3].as_ref().unwrap().sample_round(0), SampleResult::Zero);
    }

    #[test]
    fn concurrent_batches_linearize() {
        let s = Arc::new(store(LockingStrategy::DeltaSketch));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    // Each thread toggles a disjoint set of edges at node 0.
                    let records: Vec<u32> =
                        (0..3).map(|i| encode_other(1 + t * 3 + i, false)).collect();
                    s.apply_batch(0, &records);
                });
            }
        });
        // All 24 edges present: query returns some (0, x) edge.
        let snap = s.snapshot();
        match snap[0].as_ref().unwrap().sample_round(0) {
            SampleResult::Index(idx) => {
                let e = gz_graph::index_to_edge(idx, 32);
                assert_eq!(e.u(), 0);
                assert!((1..25).contains(&e.v()));
            }
            other => panic!("expected a sample, got {other:?}"),
        }
    }

    #[test]
    fn scratch_pool_recycles() {
        let s = store(LockingStrategy::DeltaSketch);
        for i in 0..10 {
            s.apply_batch(i % 4, &[encode_other(20 + i, false)]);
        }
        // Single-threaded: the pool should hold exactly one scratch.
        assert_eq!(s.scratch_pool.lock().len(), 1);
    }

    #[test]
    fn recycled_scratch_carries_no_state_across_batches() {
        // The reuse discipline's core invariant: a batch applied through a
        // recycled scratch yields bytes identical to a store whose scratch
        // was fresh — nothing from earlier batches bleeds through.
        let reused = store(LockingStrategy::DeltaSketch);
        let fresh = store(LockingStrategy::DeltaSketch);
        // Warm the pool on `reused` with unrelated traffic to other nodes.
        for i in 0..6 {
            reused.apply_batch(i % 3, &[encode_other(10 + i, false)]);
            fresh.apply_batch(i % 3, &[encode_other(10 + i, false)]);
        }
        assert_eq!(reused.scratch_pool_len(), 1, "pool warmed");
        let records: Vec<u32> = (1..8).map(|o| encode_other(o + 20, false)).collect();
        reused.apply_batch(5, &records);
        fresh.apply_batch(5, &records);
        let (a, b) = (reused.snapshot(), fresh.snapshot());
        for (node, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            crate::node_sketch::assert_rounds_bitwise_equal(
                x.as_ref().unwrap(),
                y.as_ref().unwrap(),
                &format!("node {node}"),
            );
        }
    }

    #[test]
    fn dup_heavy_batch_matches_singles_bitwise() {
        // Gutter regime: insert/delete pairs for the same edge inside one
        // batch must leave state bit-identical to per-record application.
        let batched = store(LockingStrategy::DeltaSketch);
        let singles = store(LockingStrategy::Direct);
        let mut records = Vec::new();
        for o in 1..10u32 {
            records.push(encode_other(o, false)); // insert
            records.push(encode_other(o, true)); // delete: cancels pre-hash
        }
        records.push(encode_other(17, false));
        batched.apply_batch(0, &records);
        for &r in &records {
            singles.apply_batch(0, &[r]);
        }
        let (a, b) = (batched.snapshot(), singles.snapshot());
        crate::node_sketch::assert_rounds_bitwise_equal(
            a[0].as_ref().unwrap(),
            b[0].as_ref().unwrap(),
            "node 0",
        );
    }

    #[test]
    fn sketch_bytes_scales_with_nodes() {
        let params = Arc::new(SketchParams::new(32, 4, 7, 1));
        let per_node = params.node_sketch_bytes();
        let s = RamStore::new(params, LockingStrategy::Direct);
        assert_eq!(s.sketch_bytes(), per_node * 32);
    }

    #[test]
    fn strided_store_matches_full_store_on_owned_nodes() {
        let params = Arc::new(SketchParams::new(32, 4, 7, 99));
        let full = RamStore::new(Arc::clone(&params), LockingStrategy::DeltaSketch);
        let shard = RamStore::for_nodes(
            Arc::clone(&params),
            LockingStrategy::DeltaSketch,
            NodeSet::strided(32, 1, 4),
        );
        // Apply the same owned-node batches to both.
        for node in [1u32, 5, 9, 29] {
            let records = [encode_other((node + 2) % 32, false), encode_other(0, false)];
            full.apply_batch(node, &records);
            shard.apply_batch(node, &records);
        }
        let full_snap = full.snapshot();
        for (node, sketch) in shard.snapshot_owned() {
            let reference = full_snap[node as usize].as_ref().unwrap();
            for r in 0..sketch.num_rounds() {
                assert_eq!(sketch.sample_round(r), reference.sample_round(r), "node {node}");
            }
        }
    }

    #[test]
    fn strided_store_allocates_owned_nodes_only() {
        let params = Arc::new(SketchParams::new(64, 4, 7, 1));
        let per_node = params.node_sketch_bytes();
        let shard = RamStore::for_nodes(
            Arc::clone(&params),
            LockingStrategy::Direct,
            NodeSet::strided(64, 3, 4),
        );
        assert_eq!(shard.sketch_bytes(), per_node * 16, "16 of 64 nodes owned");
    }
}
