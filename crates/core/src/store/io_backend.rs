//! Pluggable positioned-I/O backends for the disk store.
//!
//! [`DiskStore`](super::disk::DiskStore) describes its file traffic as
//! *regions* — `(offset, len)` spans of the round-major sketch file — and a
//! backend decides how the spans become syscalls:
//!
//! - [`PreadBackend`] issues one blocking `pread`/`pwrite` per region (the
//!   portable path, and the only one before this layer existed).
//! - [`UringBackend`] batches a window of regions into a single
//!   `io_uring_enter` and reaps completions out of order (Linux; see
//!   [`super::uring`] for the raw ring plumbing). Callers must therefore
//!   tolerate out-of-order delivery — the query engine does, because its
//!   folding is XOR and order-independent.
//!
//! Both backends support an O_DIRECT mode: reads then go through a pool of
//! reusable page-aligned bounce buffers, with each region widened to the
//! enclosing `DIRECT_ALIGN`-aligned span (O_DIRECT requires offset, length
//! and buffer address all aligned to the logical block size) and the
//! logical bytes sliced back out on delivery.
//!
//! Accounting is *logical*: every region delivered counts as exactly one
//! read/write of its logical byte length in [`IoStats`], whatever the
//! backend — so the experiment suite's exact I/O-count assertions hold
//! verbatim under every backend. Batch shape is tracked separately via
//! [`IoStats::record_batch`] / [`IoStats::record_completions`].

use super::uring::{uring_available, Ring, IORING_OP_READ, IORING_OP_WRITE};
use gz_gutters::IoStats;
use parking_lot::Mutex;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::os::unix::io::AsRawFd;

/// Alignment O_DIRECT transfers are rounded to (covers 512 B and 4 KiB
/// logical-block devices, and the page-alignment some filesystems demand).
pub const DIRECT_ALIGN: usize = 4096;

/// The `O_DIRECT` open flag (`0o40000` on every architecture this
/// reproduction targets; pass to `OpenOptions::custom_flags`).
pub const O_DIRECT: i32 = 0o40000;

/// Which I/O backend a disk store should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackendKind {
    /// Probe io_uring at store open; fall back to pread if unavailable.
    #[default]
    Auto,
    /// One positioned syscall per region (portable).
    Pread,
    /// Batched submissions through a raw io_uring; store open fails if the
    /// host cannot set one up (use `Auto` for graceful fallback).
    Uring,
}

impl IoBackendKind {
    /// Parse a CLI spelling (`auto` | `pread` | `uring`).
    pub fn parse(s: &str) -> Option<IoBackendKind> {
        match s {
            "auto" => Some(IoBackendKind::Auto),
            "pread" => Some(IoBackendKind::Pread),
            "uring" => Some(IoBackendKind::Uring),
            _ => None,
        }
    }
}

/// Disk-store I/O tunables (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoBackendConfig {
    /// Backend selection (`--io-backend`).
    pub kind: IoBackendKind,
    /// Operations kept in flight per submission window (uring only; the
    /// pread path is inherently depth-1 per caller).
    pub queue_depth: usize,
    /// Open the read path O_DIRECT, bypassing the page cache so
    /// cache-constrained experiments measure device I/O. Falls back to
    /// buffered reads if the filesystem refuses O_DIRECT.
    pub direct: bool,
}

impl Default for IoBackendConfig {
    fn default() -> Self {
        IoBackendConfig { kind: IoBackendKind::Auto, queue_depth: 16, direct: false }
    }
}

/// One span of the backing file a caller wants read.
#[derive(Debug, Clone, Copy)]
pub struct ReadReq {
    /// Absolute file offset.
    pub offset: u64,
    /// Logical bytes wanted.
    pub len: usize,
}

impl ReadReq {
    /// The enclosing aligned span `(start, len)` for a transfer alignment
    /// of `align` (identity at `align` = 1).
    fn aligned_span(&self, align: usize) -> (u64, usize) {
        let start = self.offset - self.offset % align as u64;
        let end = (self.offset + self.len as u64).div_ceil(align as u64) * align as u64;
        (start, (end - start) as usize)
    }
}

// ---------------------------------------------------------------------------
// Aligned bounce buffers
// ---------------------------------------------------------------------------

/// A heap buffer whose address honors a fixed alignment (O_DIRECT needs
/// aligned user memory; at alignment 1 this is an ordinary allocation that
/// exists to be pooled and reused across reads).
struct AlignedBuf {
    ptr: std::ptr::NonNull<u8>,
    cap: usize,
    align: usize,
}

// SAFETY: the buffer is uniquely owned heap memory; ownership moves between
// the pool and at most one reader at a time.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    fn with_capacity(cap: usize, align: usize) -> AlignedBuf {
        let cap = cap.max(align).max(1);
        let layout = std::alloc::Layout::from_size_align(cap, align.max(1))
            .expect("valid aligned-buffer layout");
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        let ptr =
            std::ptr::NonNull::new(ptr).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        AlignedBuf { ptr, cap, align: align.max(1) }
    }

    fn slice_mut(&mut self, len: usize) -> &mut [u8] {
        assert!(len <= self.cap);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), len) }
    }

    fn slice(&self, start: usize, len: usize) -> &[u8] {
        assert!(start + len <= self.cap);
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().add(start), len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::from_size_align(self.cap, self.align)
            .expect("layout validated at allocation");
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
    }
}

/// Reusable buffer pool shared by a backend's readers (bounded, so a burst
/// of large reads cannot pin memory forever).
struct BufferPool {
    align: usize,
    bufs: Mutex<Vec<AlignedBuf>>,
    max_pooled: usize,
}

impl BufferPool {
    fn new(align: usize, max_pooled: usize) -> BufferPool {
        BufferPool { align, bufs: Mutex::new(Vec::new()), max_pooled }
    }

    fn checkout(&self, cap: usize) -> AlignedBuf {
        let mut bufs = self.bufs.lock();
        match bufs.iter().position(|b| b.cap >= cap) {
            Some(i) => bufs.swap_remove(i),
            None => AlignedBuf::with_capacity(cap, self.align),
        }
    }

    fn put_back(&self, buf: AlignedBuf) {
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }
}

// ---------------------------------------------------------------------------
// Pread backend
// ---------------------------------------------------------------------------

/// The portable backend: one blocking positioned syscall per region, in
/// request order. Depth is always 1, so each syscall is its own
/// "submission batch" in the stats.
pub struct PreadBackend {
    align: usize,
    pool: BufferPool,
}

impl PreadBackend {
    fn new(align: usize) -> PreadBackend {
        PreadBackend { align, pool: BufferPool::new(align, 8) }
    }

    /// Read one aligned span into `buf`, tolerating short reads at EOF as
    /// long as they cover `need` bytes from the span start.
    fn read_span(file: &File, start: u64, buf: &mut [u8], need: usize) -> io::Result<()> {
        let mut filled = 0usize;
        while filled < need {
            let n = file.read_at(&mut buf[filled..], start + filled as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short read inside the sketch file",
                ));
            }
            filled += n;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Uring backend
// ---------------------------------------------------------------------------

/// The Linux backend: regions are enqueued as `IORING_OP_READ`/`WRITE`
/// SQEs, up to `depth` in flight per caller, submitted in batches through
/// one `io_uring_enter` each and reaped out of completion order. Rings are
/// pooled and checked out per call, so concurrent query workers each drive
/// their own ring without locking.
pub struct UringBackend {
    depth: usize,
    align: usize,
    rings: Mutex<Vec<Ring>>,
    pool: BufferPool,
}

impl UringBackend {
    fn new(depth: usize, align: usize) -> io::Result<UringBackend> {
        let depth = depth.max(1);
        // Fail at construction, not first read: `IoBackendKind::Uring` must
        // error loudly at store open on hosts without io_uring, and `Auto`
        // uses this same probe to fall back.
        let ring = Ring::new(depth as u32)?;
        Ok(UringBackend {
            depth,
            align,
            rings: Mutex::new(vec![ring]),
            pool: BufferPool::new(align, 2 * depth.max(8)),
        })
    }

    fn checkout_ring(&self) -> io::Result<Ring> {
        if let Some(ring) = self.rings.lock().pop() {
            return Ok(ring);
        }
        Ring::new(self.depth as u32)
    }

    fn put_back_ring(&self, ring: Ring) {
        let mut rings = self.rings.lock();
        if rings.len() < 16 {
            rings.push(ring);
        }
    }

    /// Drive `reqs` through one ring: keep up to `depth` reads in flight,
    /// deliver each completed region to `done` (out of order), stop
    /// submitting once `done` returns false, and always drain in-flight
    /// operations before returning (the kernel owns the buffers until their
    /// CQEs arrive).
    fn read_regions(
        &self,
        file: &File,
        reqs: &[ReadReq],
        stats: &IoStats,
        done: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> io::Result<()> {
        let fd = file.as_raw_fd();
        let mut ring = self.checkout_ring()?;
        let mut bufs: Vec<Option<AlignedBuf>> = (0..reqs.len()).map(|_| None).collect();
        let mut next = 0usize;
        let mut in_flight = 0usize;
        let mut cancelled = false;
        let mut result: io::Result<()> = Ok(());

        loop {
            let mut pushed = 0usize;
            if result.is_ok() && !cancelled {
                while next < reqs.len() && in_flight < self.depth {
                    let (start, span_len) = reqs[next].aligned_span(self.align);
                    let mut buf = self.pool.checkout(span_len);
                    let addr = buf.slice_mut(span_len).as_mut_ptr() as u64;
                    if !ring.push_sqe(IORING_OP_READ, fd, start, addr, span_len as u32, next as u64)
                    {
                        self.pool.put_back(buf);
                        break;
                    }
                    bufs[next] = Some(buf);
                    next += 1;
                    in_flight += 1;
                    pushed += 1;
                }
            }
            if in_flight == 0 {
                break;
            }
            if let Err(e) = ring.enter(1) {
                // The kernel may still be filling our buffers; without CQEs
                // to prove otherwise, leak them rather than free memory a
                // DMA target may touch. This path requires io_uring_enter
                // itself to fail after a successful setup — effectively
                // never.
                std::mem::forget(bufs);
                return Err(e);
            }
            if pushed > 0 {
                stats.record_batch(in_flight as u64);
            }
            while let Some((user_data, res)) = ring.pop_cqe() {
                in_flight -= 1;
                stats.record_completions(1);
                let idx = user_data as usize;
                let req = reqs[idx];
                let buf = bufs[idx].take().expect("completion for an in-flight read");
                if result.is_ok() && !cancelled {
                    let (start, _) = req.aligned_span(self.align);
                    if res < 0 {
                        result = Err(io::Error::from_raw_os_error(-res));
                    } else if start + (res as u64) < req.offset + req.len as u64 {
                        result = Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "uring read ended inside the requested region",
                        ));
                    } else {
                        stats.record_read(req.len as u64);
                        let log_off = (req.offset - start) as usize;
                        if !done(idx, buf.slice(log_off, req.len)) {
                            cancelled = true;
                        }
                    }
                }
                self.pool.put_back(buf);
            }
        }
        self.put_back_ring(ring);
        result
    }

    /// Batch-write `regions` (offset, payload) through the ring; short
    /// writes finish synchronously via `write_all_at` on the same fd.
    fn write_regions(
        &self,
        file: &File,
        regions: &[(u64, Vec<u8>)],
        stats: &IoStats,
    ) -> io::Result<()> {
        let fd = file.as_raw_fd();
        let mut ring = self.checkout_ring()?;
        let mut next = 0usize;
        let mut in_flight = 0usize;
        let mut result: io::Result<()> = Ok(());

        loop {
            let mut pushed = 0usize;
            if result.is_ok() {
                while next < regions.len() && in_flight < self.depth {
                    let (offset, bytes) = &regions[next];
                    if !ring.push_sqe(
                        IORING_OP_WRITE,
                        fd,
                        *offset,
                        bytes.as_ptr() as u64,
                        bytes.len() as u32,
                        next as u64,
                    ) {
                        break;
                    }
                    next += 1;
                    in_flight += 1;
                    pushed += 1;
                }
            }
            if in_flight == 0 {
                break;
            }
            // Write buffers belong to `regions` (caller-owned, alive past
            // this call), so an enter failure cannot use-after-free — just
            // surface it.
            ring.enter(1)?;
            if pushed > 0 {
                stats.record_batch(in_flight as u64);
            }
            while let Some((user_data, res)) = ring.pop_cqe() {
                in_flight -= 1;
                stats.record_completions(1);
                if result.is_err() {
                    continue;
                }
                let (offset, bytes) = &regions[user_data as usize];
                if res < 0 {
                    result = Err(io::Error::from_raw_os_error(-res));
                } else if (res as usize) < bytes.len() {
                    let written = res as usize;
                    result = file.write_all_at(&bytes[written..], offset + written as u64);
                    if result.is_ok() {
                        stats.record_write(bytes.len() as u64);
                    }
                } else {
                    stats.record_write(bytes.len() as u64);
                }
            }
        }
        self.put_back_ring(ring);
        result
    }
}

// ---------------------------------------------------------------------------
// The backend handle
// ---------------------------------------------------------------------------

/// A resolved I/O backend a [`DiskStore`](super::disk::DiskStore) routes
/// all file traffic through.
pub enum IoBackendImpl {
    /// Portable positioned-syscall path.
    Pread(PreadBackend),
    /// Batched io_uring path (Linux).
    Uring(UringBackend),
}

impl IoBackendImpl {
    /// Resolve `kind` into a live backend. `direct` selects the aligned
    /// bounce-buffer read path (the caller opens the O_DIRECT fd).
    /// `Auto` probes io_uring and silently falls back to pread; explicit
    /// `Uring` surfaces the setup error instead.
    pub fn resolve(kind: IoBackendKind, queue_depth: usize, direct: bool) -> io::Result<Self> {
        let align = if direct { DIRECT_ALIGN } else { 1 };
        match kind {
            IoBackendKind::Pread => Ok(IoBackendImpl::Pread(PreadBackend::new(align))),
            IoBackendKind::Uring => {
                Ok(IoBackendImpl::Uring(UringBackend::new(queue_depth, align)?))
            }
            IoBackendKind::Auto => {
                if uring_available() {
                    if let Ok(backend) = UringBackend::new(queue_depth, align) {
                        return Ok(IoBackendImpl::Uring(backend));
                    }
                }
                Ok(IoBackendImpl::Pread(PreadBackend::new(align)))
            }
        }
    }

    /// Resolved backend name (for `--stats` and test logs).
    pub fn name(&self) -> &'static str {
        match self {
            IoBackendImpl::Pread(_) => "pread",
            IoBackendImpl::Uring(_) => "uring",
        }
    }

    /// How many regions a caller should claim per batch to saturate this
    /// backend: the queue depth for uring, 1 for pread (which preserves the
    /// pre-backend one-group-at-a-time claim granularity exactly).
    pub fn read_window(&self) -> usize {
        match self {
            IoBackendImpl::Pread(_) => 1,
            IoBackendImpl::Uring(b) => b.depth,
        }
    }

    /// Read one region into a caller-provided buffer (the whole-group fault
    /// path). Counted as one logical read of `buf.len()` bytes.
    pub fn read_into(
        &self,
        file: &File,
        offset: u64,
        buf: &mut [u8],
        stats: &IoStats,
    ) -> io::Result<()> {
        match self {
            IoBackendImpl::Pread(b) => {
                if b.align == 1 {
                    file.read_exact_at(buf, offset)?;
                } else {
                    let req = ReadReq { offset, len: buf.len() };
                    let (start, span_len) = req.aligned_span(b.align);
                    let mut span = b.pool.checkout(span_len);
                    let need = (offset - start) as usize + buf.len();
                    PreadBackend::read_span(file, start, span.slice_mut(span_len), need)?;
                    buf.copy_from_slice(span.slice((offset - start) as usize, buf.len()));
                    b.pool.put_back(span);
                }
                stats.record_read(buf.len() as u64);
                stats.record_batch(1);
                stats.record_completions(1);
                Ok(())
            }
            IoBackendImpl::Uring(b) => {
                let reqs = [ReadReq { offset, len: buf.len() }];
                let mut delivered = false;
                b.read_regions(file, &reqs, stats, &mut |_, bytes| {
                    buf.copy_from_slice(bytes);
                    delivered = true;
                    true
                })?;
                debug_assert!(delivered);
                Ok(())
            }
        }
    }

    /// Read many regions, delivering each to `done(index, bytes)` —
    /// possibly out of request order (uring). `done` returning false
    /// cancels the remaining regions (in-flight ones still complete and are
    /// discarded).
    pub fn read_regions(
        &self,
        file: &File,
        reqs: &[ReadReq],
        stats: &IoStats,
        done: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> io::Result<()> {
        match self {
            IoBackendImpl::Pread(b) => {
                for (i, req) in reqs.iter().enumerate() {
                    let (start, span_len) = req.aligned_span(b.align);
                    let mut span = b.pool.checkout(span_len);
                    let need = (req.offset - start) as usize + req.len;
                    let read = PreadBackend::read_span(file, start, span.slice_mut(span_len), need);
                    stats.record_batch(1);
                    stats.record_completions(1);
                    read?;
                    stats.record_read(req.len as u64);
                    let more = done(i, span.slice((req.offset - start) as usize, req.len));
                    b.pool.put_back(span);
                    if !more {
                        break;
                    }
                }
                Ok(())
            }
            IoBackendImpl::Uring(b) => b.read_regions(file, reqs, stats, done),
        }
    }

    /// Write `regions` (offset, payload). Counted as one logical write per
    /// region. Writes always target a buffered fd (see DESIGN.md §13:
    /// O_DIRECT covers the read path only), so no alignment applies.
    pub fn write_regions(
        &self,
        file: &File,
        regions: &[(u64, Vec<u8>)],
        stats: &IoStats,
    ) -> io::Result<()> {
        match self {
            IoBackendImpl::Pread(_) => {
                for (offset, bytes) in regions {
                    file.write_all_at(bytes, *offset)?;
                    stats.record_write(bytes.len() as u64);
                    stats.record_batch(1);
                    stats.record_completions(1);
                }
                Ok(())
            }
            IoBackendImpl::Uring(b) => b.write_regions(file, regions, stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_file(name: &str, len: usize) -> (File, gz_testutil::TempPath, Vec<u8>) {
        let path = gz_testutil::TempPath::new(&format!("gz-io-backend-{name}"), ".bin");
        let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        std::fs::write(path.to_path_buf(), &data).unwrap();
        let file =
            std::fs::OpenOptions::new().read(true).write(true).open(path.to_path_buf()).unwrap();
        (file, path, data)
    }

    fn backends_under_test(depth: usize) -> Vec<IoBackendImpl> {
        let mut backends =
            vec![IoBackendImpl::resolve(IoBackendKind::Pread, depth, false).unwrap()];
        if uring_available() {
            backends.push(IoBackendImpl::resolve(IoBackendKind::Uring, depth, false).unwrap());
        } else {
            eprintln!("skipping uring backend: io_uring unavailable on this host");
        }
        backends
    }

    #[test]
    fn read_regions_delivers_every_region_once() {
        let (file, _t, data) = data_file("regions", 1 << 16);
        for backend in backends_under_test(4) {
            let reqs: Vec<ReadReq> =
                (0..16).map(|i| ReadReq { offset: i as u64 * 4096 + 13, len: 997 }).collect();
            let stats = IoStats::new();
            let mut seen = vec![false; reqs.len()];
            backend
                .read_regions(&file, &reqs, &stats, &mut |i, bytes| {
                    assert!(!seen[i], "region {i} delivered twice ({})", backend.name());
                    seen[i] = true;
                    let off = reqs[i].offset as usize;
                    assert_eq!(bytes, &data[off..off + reqs[i].len], "region {i}");
                    true
                })
                .unwrap();
            assert!(seen.iter().all(|&s| s), "backend {}", backend.name());
            // Logical accounting is backend-independent: one read of 997
            // bytes per region.
            assert_eq!(stats.reads(), 16, "backend {}", backend.name());
            assert_eq!(stats.bytes_read(), 16 * 997, "backend {}", backend.name());
            assert_eq!(stats.completions(), 16, "backend {}", backend.name());
            assert!(stats.submissions() > 0 && stats.max_depth() >= 1);
        }
    }

    #[test]
    fn uring_batches_deeper_than_pread() {
        if !uring_available() {
            eprintln!("skipping: io_uring unavailable on this host");
            return;
        }
        let (file, _t, _) = data_file("depth", 1 << 16);
        let reqs: Vec<ReadReq> =
            (0..32).map(|i| ReadReq { offset: i as u64 * 2048, len: 2048 }).collect();

        let uring = IoBackendImpl::resolve(IoBackendKind::Uring, 8, false).unwrap();
        let stats = IoStats::new();
        uring.read_regions(&file, &reqs, &stats, &mut |_, _| true).unwrap();
        assert_eq!(stats.max_depth(), 8, "first window fills the whole queue");
        assert!(
            stats.submissions() < 32,
            "batching must use fewer enters than regions (got {})",
            stats.submissions()
        );

        let pread = IoBackendImpl::resolve(IoBackendKind::Pread, 8, false).unwrap();
        let pstats = IoStats::new();
        pread.read_regions(&file, &reqs, &pstats, &mut |_, _| true).unwrap();
        assert_eq!(pstats.max_depth(), 1, "pread is depth-1 by construction");
        assert_eq!(pstats.submissions(), 32);
    }

    #[test]
    fn cancel_stops_after_current_window() {
        let (file, _t, _) = data_file("cancel", 1 << 16);
        for backend in backends_under_test(4) {
            let reqs: Vec<ReadReq> =
                (0..16).map(|i| ReadReq { offset: i as u64 * 1024, len: 1024 }).collect();
            let stats = IoStats::new();
            let mut delivered = 0usize;
            backend
                .read_regions(&file, &reqs, &stats, &mut |_, _| {
                    delivered += 1;
                    false
                })
                .unwrap();
            assert_eq!(delivered, 1, "cancel after first delivery ({})", backend.name());
            assert!(
                stats.reads() <= backend.read_window() as u64,
                "at most one window may complete after a cancel ({})",
                backend.name()
            );
        }
    }

    #[test]
    fn write_regions_round_trips_and_counts_per_region() {
        let (file, _t, _) = data_file("write", 1 << 16);
        for (pass, backend) in backends_under_test(4).into_iter().enumerate() {
            let regions: Vec<(u64, Vec<u8>)> =
                (0..9).map(|i| (i as u64 * 3000, vec![(pass * 31 + i) as u8; 3000])).collect();
            let stats = IoStats::new();
            backend.write_regions(&file, &regions, &stats).unwrap();
            assert_eq!(stats.writes(), 9, "backend {}", backend.name());
            assert_eq!(stats.bytes_written(), 9 * 3000, "backend {}", backend.name());
            for (offset, bytes) in &regions {
                let mut got = vec![0u8; bytes.len()];
                file.read_exact_at(&mut got, *offset).unwrap();
                assert_eq!(&got, bytes, "backend {}", backend.name());
            }
        }
    }

    #[test]
    fn read_into_matches_file_contents() {
        let (file, _t, data) = data_file("into", 1 << 14);
        for backend in backends_under_test(2) {
            let stats = IoStats::new();
            let mut buf = vec![0u8; 1000];
            backend.read_into(&file, 513, &mut buf, &stats).unwrap();
            assert_eq!(buf, &data[513..1513], "backend {}", backend.name());
            assert_eq!(stats.reads(), 1);
            assert_eq!(stats.bytes_read(), 1000);
        }
    }

    #[test]
    fn direct_mode_reads_match_buffered() {
        // O_DIRECT needs filesystem support; skip (with the reason logged)
        // where the temp dir refuses it.
        use std::os::unix::fs::OpenOptionsExt;
        let (_file, path, data) = data_file("direct", 1 << 16);
        let direct = match std::fs::OpenOptions::new()
            .read(true)
            .custom_flags(O_DIRECT)
            .open(path.to_path_buf())
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("skipping: O_DIRECT unsupported on temp filesystem ({e})");
                return;
            }
        };
        let mut kinds = vec![IoBackendKind::Pread];
        if uring_available() {
            kinds.push(IoBackendKind::Uring);
        }
        for kind in kinds {
            let backend = IoBackendImpl::resolve(kind, 4, true).unwrap();
            let stats = IoStats::new();
            // Unaligned logical spans: the bounce pool must widen and
            // re-slice them.
            let reqs: Vec<ReadReq> =
                (0..8).map(|i| ReadReq { offset: i as u64 * 7321 + 11, len: 4097 }).collect();
            let mut seen = 0usize;
            backend
                .read_regions(&direct, &reqs, &stats, &mut |i, bytes| {
                    let off = reqs[i].offset as usize;
                    assert_eq!(bytes, &data[off..off + reqs[i].len], "region {i}");
                    seen += 1;
                    true
                })
                .unwrap();
            assert_eq!(seen, 8, "backend {}", backend.name());
            assert_eq!(stats.bytes_read(), 8 * 4097, "logical accounting under O_DIRECT");
        }
    }
}
