//! Epoch-versioned reads: sealed generations with copy-on-write overlays.
//!
//! A query that wants a consistent cut of the sketch state no longer has to
//! stop the world. [`SketchStore::begin_epoch`] *seals* the current
//! generation — every sketch value as of the seal — and hands back an
//! [`EpochOverlay`]. Ingestion keeps writing into the open generation; the
//! first time a node group is dirtied after a seal, its pre-image is
//! captured into every live overlay that does not have one yet
//! (copy-on-write at node-group granularity, so an epoch's memory cost is
//! proportional to how much the stream touched while the query ran, not to
//! `V`). A reader pinned to an epoch sees the sealed value for captured
//! groups and the live value for untouched ones — which *is* the sealed
//! value, by construction. Overlays are reference-counted; when the last
//! reader drops its [`SketchEpoch`], the captured groups are freed.
//!
//! Determinism: folding is XOR over the sealed values, and the sealed
//! values are exactly the store contents after the seal's flush — so a
//! query at epoch E is bit-identical to a stop-the-world query issued at
//! the moment E was sealed, regardless of how many batches land while the
//! query runs. The equivalence suite (`tests/epochs.rs`) pins this.

use crate::boruvka::{boruvka_rounds_parallel, BoruvkaOutcome, RoundSink};
use crate::error::GzError;
use crate::node_sketch::{CubeNodeSketch, CubeRoundSketch};
use crate::sparse::SparseSet;
use crate::store::{SketchSource, SketchStore};
use gz_gutters::WorkerPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// The copy-on-write side table of one sealed generation: node groups
/// dirtied after the seal, keyed by group id, each holding the group's
/// sealed sketches. Entries are only ever added (a group is captured at
/// most once per epoch); the whole overlay is freed when the last
/// [`SketchEpoch`] holding it drops.
pub struct EpochOverlay {
    map: Mutex<HashMap<u32, Arc<Vec<CubeNodeSketch>>>>,
    /// Sealed pre-images of vertices that were *sparse* (exact toggle sets,
    /// DESIGN.md §12) at mutation time, keyed by **slot**. A slot captured
    /// here outranks any dense group pre-image covering the same slot: a
    /// sparse vertex has no meaningful dense bytes (its file/slot region is
    /// all-zero by construction), so the dense capture can only hold
    /// placeholder zeros or post-promotion state.
    sparse: Mutex<HashMap<u32, Arc<SparseSet>>>,
}

impl EpochOverlay {
    fn new() -> Self {
        EpochOverlay { map: Mutex::new(HashMap::new()), sparse: Mutex::new(HashMap::new()) }
    }

    /// The sealed pre-image of `group`, if ingestion dirtied it after the
    /// seal.
    pub(crate) fn get(&self, group: u32) -> Option<Arc<Vec<CubeNodeSketch>>> {
        self.map.lock().get(&group).cloned()
    }

    /// The sealed sparse pre-image of `slot`, if the vertex was sparse at
    /// seal and mutated (or promoted) afterwards.
    pub(crate) fn get_sparse(&self, slot: u32) -> Option<Arc<SparseSet>> {
        self.sparse.lock().get(&slot).cloned()
    }

    /// Node groups captured so far (dense captures only).
    pub fn captured_groups(&self) -> usize {
        self.map.lock().len()
    }

    /// Sparse vertices captured so far.
    pub fn captured_sparse(&self) -> usize {
        self.sparse.lock().len()
    }

    /// Node sketches captured so far (groups × nodes per group).
    pub(crate) fn captured_sketches(&self) -> usize {
        self.map.lock().values().map(|g| g.len()).sum()
    }

    /// Resident bytes of the captured sparse pre-images.
    pub(crate) fn captured_sparse_bytes(&self) -> usize {
        self.sparse.lock().values().map(|s| s.resident_bytes()).sum()
    }
}

/// Per-store bookkeeping of live epochs. Ingestion consults it immediately
/// before mutating a group's sealed value; when no epoch is live (the
/// common case) that consultation is a single atomic load.
pub(crate) struct EpochRegistry {
    inner: Mutex<RegistryInner>,
    /// Fast-path flag: false ⇒ `inner.live` is empty and capture can be
    /// skipped without locking. Set on registration; cleared when a prune
    /// finds every overlay dead.
    maybe_live: AtomicBool,
}

struct RegistryInner {
    next_id: u64,
    live: Vec<(u64, Weak<EpochOverlay>)>,
}

impl EpochRegistry {
    pub(crate) fn new() -> Self {
        EpochRegistry {
            inner: Mutex::new(RegistryInner { next_id: 0, live: Vec::new() }),
            maybe_live: AtomicBool::new(false),
        }
    }

    /// Seal the current generation: register a fresh overlay and return its
    /// epoch id. The caller must have quiesced ingestion (and, for disk
    /// stores, flushed) so "the current generation" is well defined.
    pub(crate) fn register(&self) -> (u64, Arc<EpochOverlay>) {
        let mut inner = self.inner.lock();
        inner.live.retain(|(_, weak)| weak.strong_count() > 0);
        let id = inner.next_id;
        inner.next_id += 1;
        let overlay = Arc::new(EpochOverlay::new());
        inner.live.push((id, Arc::downgrade(&overlay)));
        self.maybe_live.store(true, Ordering::Release);
        (id, overlay)
    }

    /// Called by ingestion right before the first mutation of `group` since
    /// the store's sealed values last changed hands: insert `group`'s
    /// pre-image (produced by `make`, invoked at most once) into every live
    /// overlay that lacks it. An overlay that already holds `group` keeps
    /// its own, older pre-image — the current value is exactly what epochs
    /// sealed *after* that earlier capture need.
    pub(crate) fn capture_group(&self, group: u32, make: &mut dyn FnMut() -> Vec<CubeNodeSketch>) {
        if !self.maybe_live.load(Ordering::Acquire) {
            return;
        }
        let mut inner = self.inner.lock();
        inner.live.retain(|(_, weak)| weak.strong_count() > 0);
        if inner.live.is_empty() {
            self.maybe_live.store(false, Ordering::Release);
            return;
        }
        let mut pre_image: Option<Arc<Vec<CubeNodeSketch>>> = None;
        for (_, weak) in &inner.live {
            let Some(overlay) = weak.upgrade() else { continue };
            let mut map = overlay.map.lock();
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(group) {
                slot.insert(Arc::clone(pre_image.get_or_insert_with(|| Arc::new(make()))));
            }
        }
    }

    /// Sparse twin of [`Self::capture_group`]: called right before the
    /// first mutation (toggle or promotion) of a *sparse* vertex at `slot`
    /// since the seal. The caller must hold the lock that guards the
    /// vertex's sparse state, so readers checking overlay-then-live under
    /// the same lock see either the pre-image or the unmutated live set.
    pub(crate) fn capture_sparse(&self, slot: u32, make: &mut dyn FnMut() -> SparseSet) {
        if !self.maybe_live.load(Ordering::Acquire) {
            return;
        }
        let mut inner = self.inner.lock();
        inner.live.retain(|(_, weak)| weak.strong_count() > 0);
        if inner.live.is_empty() {
            self.maybe_live.store(false, Ordering::Release);
            return;
        }
        let mut pre_image: Option<Arc<SparseSet>> = None;
        for (_, weak) in &inner.live {
            let Some(overlay) = weak.upgrade() else { continue };
            let mut map = overlay.sparse.lock();
            if let std::collections::hash_map::Entry::Vacant(entry) = map.entry(slot) {
                entry.insert(Arc::clone(pre_image.get_or_insert_with(|| Arc::new(make()))));
            }
        }
    }
}

/// A handle pinning one sealed generation of a [`SketchStore`]: queries
/// through it fold the sealed values while ingestion keeps applying batches
/// to the open generation. The handle is self-contained (`Send` + `Sync`),
/// so a query thread can run [`Self::spanning_forest`] on a shared
/// reference while the owning thread keeps calling
/// [`crate::GraphZeppelin::update`]. Dropping the last handle to an epoch
/// frees its captured groups.
pub struct SketchEpoch {
    store: Arc<SketchStore>,
    overlay: Arc<EpochOverlay>,
    id: u64,
    query_threads: usize,
}

impl SketchEpoch {
    pub(crate) fn new(
        store: Arc<SketchStore>,
        overlay: Arc<EpochOverlay>,
        id: u64,
        query_threads: usize,
    ) -> Self {
        SketchEpoch { store, overlay, id, query_threads }
    }

    /// The store-assigned epoch id (monotonic per store).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Query workers [`Self::spanning_forest`] folds with (answers are
    /// bit-identical at any setting).
    pub fn set_query_threads(&mut self, query_threads: usize) {
        assert!(query_threads >= 1, "query_threads must be ≥ 1");
        self.query_threads = query_threads;
    }

    /// Node groups this epoch has pinned (copy-on-write captures so far).
    pub fn captured_groups(&self) -> usize {
        self.overlay.captured_groups()
    }

    /// Bytes of sealed pre-images this epoch holds resident — the
    /// reclamation bound: at most `captured groups × group bytes`, and zero
    /// until ingestion dirties something the epoch covers.
    pub fn overlay_resident_bytes(&self) -> usize {
        self.overlay.captured_sketches() * self.store.params().node_sketch_bytes()
            + self.overlay.captured_sparse_bytes()
    }

    /// Compute a spanning forest of the sealed generation — bit-identical
    /// to a stop-the-world query at the moment this epoch was sealed, no
    /// matter how much the stream has moved since.
    pub fn spanning_forest(&self) -> Result<BoruvkaOutcome, GzError> {
        let params = self.store.params();
        let (num_nodes, rounds) = (params.num_nodes, params.rounds());
        let mut source = EpochRoundSource::new(&self.store, &self.overlay);
        boruvka_rounds_parallel(&mut source, num_nodes, rounds, self.query_threads)
    }

    /// [`Self::spanning_forest`] folding with a caller-provided pool — the
    /// hot path for repeated staleness-bounded queries, which reuse
    /// [`crate::GraphZeppelin`]'s cached pool instead of spawning one per
    /// query.
    pub fn spanning_forest_with_pool(&self, pool: &WorkerPool) -> Result<BoruvkaOutcome, GzError> {
        let params = self.store.params();
        let (num_nodes, rounds) = (params.num_nodes, params.rounds());
        let mut source = EpochRoundSource::new(&self.store, &self.overlay);
        crate::boruvka::boruvka_rounds_with_pool(&mut source, num_nodes, rounds, pool)
    }
}

/// The epoch-pinned streaming source: round slices come from the store's
/// open generation, masked by the overlay's sealed pre-images — same
/// storage-friendly access pattern as [`crate::StoreRoundSource`], without
/// quiescing ingestion.
pub struct EpochRoundSource<'a> {
    store: &'a SketchStore,
    overlay: &'a EpochOverlay,
    resident: usize,
}

impl<'a> EpochRoundSource<'a> {
    /// Wrap a store pinned to `overlay`'s epoch.
    pub fn new(store: &'a SketchStore, overlay: &'a EpochOverlay) -> Self {
        EpochRoundSource { store, overlay, resident: 0 }
    }
}

impl SketchSource for EpochRoundSource<'_> {
    type Sampler = CubeRoundSketch;

    fn num_rounds(&self) -> usize {
        self.store.params().rounds()
    }

    fn resident_bytes(&self) -> usize {
        self.resident
    }

    fn stream_round(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &Self::Sampler),
    ) -> Result<(), GzError> {
        self.resident = self.store.round_stream_resident_bytes(round, 1);
        self.store.stream_round_at(round, live, self.overlay, sink)
    }

    fn stream_round_into(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, Self::Sampler>>],
    ) -> Result<(), GzError> {
        self.resident = self.store.round_stream_resident_bytes(round, sinks.len());
        if sinks.len() == 1 {
            let mut sink = sinks[0].lock();
            return self.store.stream_round_at(round, live, self.overlay, &mut |node, slice| {
                sink.fold(node, slice)
            });
        }
        self.store.stream_round_parallel_at(round, live, self.overlay, pool, sinks)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GzConfig;
    use crate::system::GraphZeppelin;

    /// The tentpole invariant at its smallest: seal, record the
    /// stop-the-world answer, mutate the stream heavily, and the epoch
    /// still answers bit-for-bit as of its seal.
    #[test]
    fn epoch_pins_the_sealed_answer_under_further_ingest() {
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(24)).unwrap();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (5, 6), (8, 9)] {
            gz.edge_update(u, v);
        }
        let epoch = gz.begin_epoch().unwrap();
        let reference = gz.spanning_forest_streaming().unwrap();
        assert_eq!(epoch.overlay_resident_bytes(), 0, "nothing dirtied yet");

        // Rewrite a large part of the graph after the seal.
        for &(u, v) in &[(0u32, 1u32), (2, 3), (3, 4), (8, 9), (10, 11), (11, 12)] {
            gz.edge_update(u, v);
        }
        gz.flush();

        let at_epoch = epoch.spanning_forest().unwrap();
        assert_eq!(at_epoch.labels, reference.labels);
        assert_eq!(at_epoch.forest, reference.forest);
        assert_eq!(at_epoch.rounds_used, reference.rounds_used);
        assert_eq!(at_epoch.sketch_failures, reference.sketch_failures);
        assert!(epoch.captured_groups() > 0, "post-seal writes must capture");
        assert!(epoch.overlay_resident_bytes() > 0);

        // And the live system sees the new graph.
        let live = gz.spanning_forest_streaming().unwrap();
        assert_ne!(live.labels, reference.labels, "stream moved on");
    }

    /// Staleness routing: `Some(n)` reuses the sealed epoch until more
    /// than `n` updates have landed, then reseals.
    #[test]
    fn staleness_knob_reuses_then_reseals() {
        let mut c = GzConfig::in_ram(16);
        c.query_mode = crate::config::QueryMode::Streaming;
        c.query_staleness = Some(3);
        let mut gz = GraphZeppelin::new(c).unwrap();
        gz.edge_update(0, 1);
        let first = gz.spanning_forest().unwrap();
        assert!(first.labels[0] == first.labels[1]);

        // Within the staleness budget: the answer may legally be stale.
        gz.edge_update(2, 3);
        let stale = gz.spanning_forest().unwrap();
        assert_eq!(stale.labels, first.labels, "within budget: epoch reused");

        // Blow the budget: the next query must reseal and see everything.
        for &(u, v) in &[(4u32, 5u32), (6, 7), (8, 9)] {
            gz.edge_update(u, v);
        }
        let fresh = gz.spanning_forest().unwrap();
        assert_eq!(fresh.labels[2], fresh.labels[3], "reseal sees (2,3)");
        assert_eq!(fresh.labels[4], fresh.labels[5]);
    }
}
