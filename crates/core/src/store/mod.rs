//! Sketch stores: where the `V × O(log V)` CubeSketches live.
//!
//! Two backends mirror the paper's two deployments:
//!
//! - [`ram::RamStore`] — everything in memory, per-node locks, delta-sketch
//!   merging to keep critical sections short (paper §5.1).
//! - [`disk::DiskStore`] — sketches in a pre-allocated file laid out in
//!   *node groups* (`max(1, B/sketch_size)` nodes per group, §4.1), accessed
//!   through a bounded LRU cache with write-back; every block access is
//!   counted so experiments can verify the hybrid-model I/O claims.
//!
//! Both accept whole batches of updates bound for one node — the unit of
//! work a Graph Worker pops from the queue.

pub mod disk;
pub mod ram;

use crate::config::{GzConfig, StoreBackend};
use crate::error::GzError;
use crate::node_sketch::{CubeNodeSketch, SketchParams};
use gz_gutters::IoStats;
use std::sync::Arc;

/// A store of per-vertex node sketches, shared across Graph Workers.
pub enum SketchStore {
    /// In-RAM store.
    Ram(ram::RamStore),
    /// File-backed store (the SSD model).
    Disk(disk::DiskStore),
}

impl SketchStore {
    /// Build the store selected by `config`.
    pub fn build(config: &GzConfig, params: Arc<SketchParams>) -> Result<Self, GzError> {
        match &config.store {
            StoreBackend::Ram => Ok(SketchStore::Ram(ram::RamStore::new(params, config.locking))),
            StoreBackend::Disk { dir, block_bytes, cache_groups } => {
                let path =
                    dir.join(format!("gz_sketches_{}_{}.bin", std::process::id(), config.seed));
                Ok(SketchStore::Disk(disk::DiskStore::new(
                    params,
                    path,
                    *block_bytes,
                    *cache_groups,
                )?))
            }
        }
    }

    /// Apply a batch of encoded update records to `node`'s sketch stack.
    /// Thread-safe; called concurrently by Graph Workers.
    pub fn apply_batch(&self, node: u32, records: &[u32]) {
        match self {
            SketchStore::Ram(s) => s.apply_batch(node, records),
            SketchStore::Disk(s) => s.apply_batch(node, records),
        }
    }

    /// Clone out every node sketch for query processing (Boruvka consumes
    /// its input; ingestion continues afterwards with the originals).
    pub fn snapshot(&self) -> Vec<Option<CubeNodeSketch>> {
        match self {
            SketchStore::Ram(s) => s.snapshot(),
            SketchStore::Disk(s) => s.snapshot(),
        }
    }

    /// Replace every node sketch (checkpoint restore).
    pub fn load_all(&self, sketches: Vec<CubeNodeSketch>) {
        match self {
            SketchStore::Ram(s) => s.load_all(sketches),
            SketchStore::Disk(s) => s.load_all(sketches),
        }
    }

    /// Total sketch payload bytes (paper's memory accounting).
    pub fn sketch_bytes(&self) -> usize {
        match self {
            SketchStore::Ram(s) => s.sketch_bytes(),
            SketchStore::Disk(s) => s.sketch_bytes(),
        }
    }

    /// I/O counters, if this store touches disk.
    pub fn io_stats(&self) -> Option<Arc<IoStats>> {
        match self {
            SketchStore::Ram(_) => None,
            SketchStore::Disk(s) => Some(s.io_stats()),
        }
    }

    /// Shared sketch parameters.
    pub fn params(&self) -> &Arc<SketchParams> {
        match self {
            SketchStore::Ram(s) => s.params(),
            SketchStore::Disk(s) => s.params(),
        }
    }
}

/// Decode a batch of records into characteristic-vector updates and apply
/// them to a node sketch. Shared by both stores.
#[inline]
pub(crate) fn apply_records(
    sketch: &mut CubeNodeSketch,
    node: u32,
    records: &[u32],
    num_nodes: u64,
) {
    for &rec in records {
        let (other, _is_delete) = crate::node_sketch::decode_other(rec);
        if other == node {
            continue; // defensive: self-loops are invalid stream updates
        }
        let idx = crate::node_sketch::update_index(node, other, num_nodes);
        // Z_2: insert and delete are the same toggle.
        sketch.update_signed(idx, 1);
    }
}
