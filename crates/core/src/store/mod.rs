//! Sketch stores: where the `V × O(log V)` CubeSketches live.
//!
//! Two backends mirror the paper's two deployments:
//!
//! - [`ram::RamStore`] — everything in memory, per-node locks, delta-sketch
//!   merging to keep critical sections short (paper §5.1).
//! - [`disk::DiskStore`] — sketches in a pre-allocated file laid out in
//!   *node groups* (`max(1, B/sketch_size)` nodes per group, §4.1), accessed
//!   through a bounded LRU cache with write-back; every block access is
//!   counted so experiments can verify the hybrid-model I/O claims.
//!
//! Both accept whole batches of updates bound for one node — the unit of
//! work a Graph Worker pops from the queue.

pub mod disk;
pub mod epoch;
pub mod io_backend;
pub mod ram;
pub mod uring;

pub use epoch::{EpochOverlay, EpochRoundSource, SketchEpoch};
pub use io_backend::{IoBackendConfig, IoBackendKind};
pub use uring::uring_available;

use crate::boruvka::RoundSink;
use crate::config::{GzConfig, StoreBackend};
use crate::error::GzError;
use crate::node_sketch::{CubeNodeSketch, CubeRoundSketch, NodeSketch, SketchParams};
use crate::sparse::SparseSet;
use gz_gutters::{IoStats, WorkerPool};
use gz_sketch::L0Sampler;
use parking_lot::Mutex;
use std::sync::Arc;

/// Census of the hybrid representation (DESIGN.md §12): how many owned
/// vertices are promoted (dense sketch stacks) vs still sparse (exact
/// toggle sets), and the total live entries across the sparse sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepStats {
    /// Vertices holding a dense sketch stack.
    pub promoted: usize,
    /// Vertices still represented by an exact toggle set.
    pub sparse: usize,
    /// Live neighbor entries summed across all sparse sets.
    pub sparse_entries: usize,
}

impl RepStats {
    /// Resident bytes of the sparse side (4 bytes per live entry).
    pub fn sparse_bytes(&self) -> usize {
        self.sparse_entries * 4
    }
}

/// The set of vertices a store holds sketches for, with a dense slot
/// numbering.
///
/// A single-node system stores every vertex ([`NodeSet::all`]); a shard
/// stores only its residue class (`owner(v) = v % num_shards`,
/// [`NodeSet::strided`]). Slots are dense — slot `i` holds node
/// `offset + i·stride` — so a shard's sketch footprint scales with the
/// number of *owned* vertices, not the universe size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSet {
    /// First owned node (a shard's index).
    offset: u32,
    /// Distance between consecutive owned nodes (the shard count; 1 = all).
    stride: u32,
    /// Vertex universe size.
    num_nodes: u64,
}

impl NodeSet {
    /// Every vertex of a `num_nodes` universe.
    pub fn all(num_nodes: u64) -> Self {
        NodeSet { offset: 0, stride: 1, num_nodes }
    }

    /// The residue class `{v : v ≡ offset (mod stride)}` of a `num_nodes`
    /// universe — shard `offset` of `stride` shards.
    pub fn strided(num_nodes: u64, offset: u32, stride: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(offset < stride, "offset must be a residue modulo stride");
        NodeSet { offset, stride, num_nodes }
    }

    /// Number of owned nodes (= store slots).
    pub fn len(&self) -> usize {
        let above = self.num_nodes.saturating_sub(self.offset as u64);
        above.div_ceil(self.stride as u64) as usize
    }

    /// True if the set owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this set owns `node`.
    #[inline]
    pub fn contains(&self, node: u32) -> bool {
        (node as u64) < self.num_nodes && node % self.stride == self.offset
    }

    /// Dense slot of an owned `node`.
    #[inline]
    pub fn slot(&self, node: u32) -> usize {
        debug_assert!(self.contains(node), "node {node} not owned by {self:?}");
        ((node - self.offset) / self.stride) as usize
    }

    /// Node stored in `slot`.
    #[inline]
    pub fn node(&self, slot: usize) -> u32 {
        self.offset + slot as u32 * self.stride
    }

    /// Owned nodes in slot order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(|s| self.node(s))
    }
}

/// A store of per-vertex node sketches, shared across Graph Workers.
pub enum SketchStore {
    /// In-RAM store.
    Ram(ram::RamStore),
    /// File-backed store (the SSD model).
    Disk(disk::DiskStore),
}

impl SketchStore {
    /// Build the store selected by `config`.
    pub fn build(config: &GzConfig, params: Arc<SketchParams>) -> Result<Self, GzError> {
        let node_set = NodeSet::all(params.num_nodes);
        match &config.store {
            StoreBackend::Ram => Ok(SketchStore::Ram(ram::RamStore::for_nodes_with_threshold(
                params,
                config.locking,
                node_set,
                config.sketch_threshold,
            ))),
            StoreBackend::Disk { dir, block_bytes, cache_groups } => {
                let path =
                    dir.join(format!("gz_sketches_{}_{}.bin", std::process::id(), config.seed));
                Ok(SketchStore::Disk(disk::DiskStore::for_nodes_with_options(
                    params,
                    node_set,
                    path,
                    *block_bytes,
                    *cache_groups,
                    config.sketch_threshold,
                    config.io,
                )?))
            }
        }
    }

    /// Apply a batch of encoded update records to `node`'s sketch stack.
    /// Thread-safe; called concurrently by Graph Workers.
    pub fn apply_batch(&self, node: u32, records: &[u32]) {
        match self {
            SketchStore::Ram(s) => s.apply_batch(node, records),
            SketchStore::Disk(s) => s.apply_batch(node, records),
        }
    }

    /// Clone out every node sketch for query processing (Boruvka consumes
    /// its input; ingestion continues afterwards with the originals).
    pub fn snapshot(&self) -> Vec<Option<CubeNodeSketch>> {
        match self {
            SketchStore::Ram(s) => s.snapshot(),
            SketchStore::Disk(s) => s.snapshot(),
        }
    }

    /// Clone out the owned nodes' sketches as `(node, sketch)` pairs — the
    /// gather unit a shard ships to the query coordinator.
    pub fn snapshot_owned(&self) -> Vec<(u32, CubeNodeSketch)> {
        match self {
            SketchStore::Ram(s) => s.snapshot_owned(),
            SketchStore::Disk(s) => s.snapshot_owned(),
        }
    }

    /// The vertex set this store holds sketches for.
    pub fn node_set(&self) -> NodeSet {
        match self {
            SketchStore::Ram(s) => s.node_set(),
            SketchStore::Disk(s) => s.node_set(),
        }
    }

    /// Replace every node sketch (checkpoint restore).
    pub fn load_all(&self, sketches: Vec<CubeNodeSketch>) {
        match self {
            SketchStore::Ram(s) => s.load_all(sketches),
            SketchStore::Disk(s) => s.load_all(sketches),
        }
    }

    /// Total sketch payload bytes (paper's memory accounting).
    pub fn sketch_bytes(&self) -> usize {
        match self {
            SketchStore::Ram(s) => s.sketch_bytes(),
            SketchStore::Disk(s) => s.sketch_bytes(),
        }
    }

    /// I/O counters, if this store touches disk.
    pub fn io_stats(&self) -> Option<Arc<IoStats>> {
        match self {
            SketchStore::Ram(_) => None,
            SketchStore::Disk(s) => Some(s.io_stats()),
        }
    }

    /// The resolved I/O backend name (`"pread"`, `"uring"`, optionally
    /// `"+direct"`), if this store touches disk.
    pub fn io_backend_name(&self) -> Option<String> {
        match self {
            SketchStore::Ram(_) => None,
            SketchStore::Disk(s) => Some(s.io_backend_name()),
        }
    }

    /// Shared sketch parameters.
    pub fn params(&self) -> &Arc<SketchParams> {
        match self {
            SketchStore::Ram(s) => s.params(),
            SketchStore::Disk(s) => s.params(),
        }
    }

    /// Stream the round-`round` slice of every owned, still-`live` node
    /// into `sink` — the storage-friendly query path. Disk stores read one
    /// contiguous round slice per group with background prefetch; RAM
    /// stores serve borrowed slices under per-node locks. Sparse vertices
    /// (hybrid representation) have their slices synthesized on demand by
    /// replaying their exact sets — bit-identical to dense state, so the
    /// query engine cannot tell the difference.
    pub fn stream_round(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) -> Result<(), GzError> {
        self.synthesize_sparse(round, self.sparse_sets(live), sink);
        self.stream_round_dense(round, live, sink)
    }

    /// The dense half of [`Self::stream_round`]: resident sketch slices
    /// only, sparse vertices skipped. Used directly by the sharded gather
    /// path, which ships sparse sets in their exact form (wire tag 1)
    /// instead of synthesizing locally.
    pub fn stream_round_dense(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) -> Result<(), GzError> {
        match self {
            SketchStore::Ram(s) => {
                s.stream_round(round, live, sink);
                Ok(())
            }
            SketchStore::Disk(s) => Ok(s.stream_round(round, live, sink)?),
        }
    }

    /// Synthesize round-`round` slices for cloned-out sparse sets and emit
    /// them into `sink` (counted in [`IoStats::rounds_synthesized`] for
    /// disk stores).
    fn synthesize_sparse(
        &self,
        round: usize,
        sets: Vec<(u32, SparseSet)>,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) {
        if sets.is_empty() {
            return;
        }
        if let Some(io) = self.io_stats() {
            io.record_synthesized(sets.len() as u64);
        }
        let params = self.params();
        for (node, set) in sets {
            let slice = set.synthesize_round(node, params, round);
            sink(node, &slice);
        }
    }

    /// Stream the round-`round` slice of every owned, still-`live` node
    /// with the delivery partitioned across the pool's workers, each
    /// folding into its own sink. RAM stores partition by slot range; disk
    /// stores have workers claim node groups from a shared cursor, so up to
    /// `sinks.len()` positioned group reads are in flight at once. Sparse
    /// vertices are synthesized serially into the first sink before the
    /// dense fan-out (delivery order cannot change results — folding is
    /// XOR).
    pub fn stream_round_parallel(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, CubeRoundSketch>>],
    ) -> Result<(), GzError> {
        let sets = self.sparse_sets(live);
        {
            let mut sink0 = sinks[0].lock();
            self.synthesize_sparse(round, sets, &mut |node, slice| sink0.fold(node, slice));
        }
        match self {
            SketchStore::Ram(s) => {
                s.stream_round_parallel(round, live, pool, sinks);
                Ok(())
            }
            SketchStore::Disk(s) => Ok(s.stream_round_parallel(round, live, pool, sinks)?),
        }
    }

    /// Seal the current generation and return its epoch id and
    /// copy-on-write overlay. The caller must have quiesced ingestion (a
    /// flushed buffering system and a drained work queue) so the sealed
    /// values are well defined; disk stores additionally write back every
    /// dirty cached group, atomically with the seal, so the file is
    /// authoritative for the sealed generation.
    pub fn begin_epoch(&self) -> Result<(u64, Arc<EpochOverlay>), GzError> {
        match self {
            SketchStore::Ram(s) => Ok(s.begin_epoch()),
            SketchStore::Disk(s) => Ok(s.begin_epoch()?),
        }
    }

    /// [`Self::stream_round`] pinned to a sealed epoch: captured groups are
    /// served from `overlay`'s pre-images, untouched groups from the open
    /// generation (whose value still *is* the sealed value). Does not
    /// quiesce ingestion — this is the concurrent-query read path.
    pub fn stream_round_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) -> Result<(), GzError> {
        self.synthesize_sparse(round, self.sparse_sets_at(live, overlay), sink);
        self.stream_round_dense_at(round, live, overlay, sink)
    }

    /// The dense half of [`Self::stream_round_at`] — sealed-sparse
    /// vertices skipped (see [`Self::stream_round_dense`]).
    pub fn stream_round_dense_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) -> Result<(), GzError> {
        match self {
            SketchStore::Ram(s) => {
                s.stream_round_at(round, live, overlay, sink);
                Ok(())
            }
            SketchStore::Disk(s) => Ok(s.stream_round_at(round, live, overlay, sink)?),
        }
    }

    /// [`Self::stream_round_parallel`] pinned to a sealed epoch (see
    /// [`Self::stream_round_at`]).
    pub fn stream_round_parallel_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, CubeRoundSketch>>],
    ) -> Result<(), GzError> {
        let sets = self.sparse_sets_at(live, overlay);
        {
            let mut sink0 = sinks[0].lock();
            self.synthesize_sparse(round, sets, &mut |node, slice| sink0.fold(node, slice));
        }
        match self {
            SketchStore::Ram(s) => {
                s.stream_round_parallel_at(round, live, overlay, pool, sinks);
                Ok(())
            }
            SketchStore::Disk(s) => {
                Ok(s.stream_round_parallel_at(round, live, overlay, pool, sinks)?)
            }
        }
    }

    /// Clone out the live sparse sets of still-`live` vertices (hybrid
    /// representation; empty for always-dense stores).
    pub fn sparse_sets(&self, live: &(dyn Fn(u32) -> bool + Sync)) -> Vec<(u32, SparseSet)> {
        match self {
            SketchStore::Ram(s) => s.sparse_sets(live),
            SketchStore::Disk(s) => s.sparse_sets(live),
        }
    }

    /// The sealed sparse view of an epoch: every vertex that was sparse at
    /// the seal, with its sealed set (overlay pre-image if mutated or
    /// promoted post-seal, live set otherwise).
    pub fn sparse_sets_at(
        &self,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
    ) -> Vec<(u32, SparseSet)> {
        match self {
            SketchStore::Ram(s) => s.sparse_sets_at(live, overlay),
            SketchStore::Disk(s) => s.sparse_sets_at(live, overlay),
        }
    }

    /// Representation census (promoted vs sparse vertices).
    pub fn rep_stats(&self) -> RepStats {
        match self {
            SketchStore::Ram(s) => s.rep_stats(),
            SketchStore::Disk(s) => s.rep_stats(),
        }
    }

    /// Node groups round slices are delivered in (1 for RAM stores).
    pub fn num_groups(&self) -> u32 {
        match self {
            SketchStore::Ram(_) => 1,
            SketchStore::Disk(s) => s.num_groups(),
        }
    }

    /// Sketch bytes the streaming round path holds resident at once when
    /// read by `threads` query workers (prefetch or in-flight read buffers;
    /// zero for RAM stores, which serve borrows).
    pub fn round_stream_resident_bytes(&self, round: usize, threads: usize) -> usize {
        match self {
            SketchStore::Ram(_) => 0,
            SketchStore::Disk(s) => s.round_stream_resident_bytes(round, threads),
        }
    }
}

// ---------------------------------------------------------------------------
// Round-slice sketch sources (the streaming query abstraction)
// ---------------------------------------------------------------------------

/// A provider of per-round node-sketch slices for the round-driven Borůvka
/// engine (paper §4.2, Figure 9).
///
/// Round `r` of the query needs only round `r`'s column of each live
/// vertex's sketch stack, so a source serves one round at a time instead of
/// materializing `V` full sketches: peak query memory becomes
/// `O(live components × one round sketch)` plus whatever the source
/// buffers, which is what preserves the disk store's RAM budget `M` at
/// query time.
pub trait SketchSource {
    /// The ℓ0-sampler type of one round slice.
    type Sampler: L0Sampler + Clone;

    /// Rounds available per node sketch stack.
    fn num_rounds(&self) -> usize;

    /// Sketch bytes the source held resident while serving the most recent
    /// round (prefetch buffers, gathered frames, or a full
    /// materialization); the engine adds its accumulators to this for
    /// peak-memory accounting.
    fn resident_bytes(&self) -> usize;

    /// Stream the round-`round` slice of every node whose supernode is
    /// still `live`, in any order (folding is XOR, so delivery order cannot
    /// change results); each node must be delivered at most once. Sources
    /// may use `live` to skip I/O for fully retired node groups.
    fn stream_round(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &Self::Sampler),
    ) -> Result<(), GzError>;

    /// Stream the round-`round` slice of every live node with delivery
    /// partitioned across `pool`'s workers, each delivering into its own
    /// sink (`sinks.len() == pool.threads()`). Each node must still be
    /// delivered exactly once, to *any* sink — the engine XOR-merges the
    /// sinks, so the partitioning cannot change results. The default
    /// implementation streams serially into the first sink; sources with a
    /// parallel delivery path override it.
    fn stream_round_into(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, Self::Sampler>>],
    ) -> Result<(), GzError> {
        let _ = pool;
        let mut sink = sinks[0].lock();
        self.stream_round(round, live, &mut |node, slice| sink.fold(node, slice))
    }
}

/// The snapshot-mode source: a fully materialized `V`-sized sketch vector
/// (what [`SketchStore::snapshot`] produces). Resident bytes are the whole
/// materialization — the quantity the streaming sources exist to avoid.
pub struct MaterializedSource<S: L0Sampler> {
    sketches: Vec<Option<NodeSketch<S>>>,
    rounds: usize,
    resident: usize,
}

impl<S: L0Sampler> MaterializedSource<S> {
    /// Wrap a per-vertex sketch vector (index = vertex id).
    pub fn new(sketches: Vec<Option<NodeSketch<S>>>) -> Self {
        let rounds = sketches.iter().flatten().map(|s| s.num_rounds()).max().unwrap_or(0);
        let resident = sketches.iter().flatten().map(|s| s.payload_bytes()).sum();
        MaterializedSource { sketches, rounds, resident }
    }
}

impl<S: L0Sampler + Clone + Send + Sync> SketchSource for MaterializedSource<S> {
    type Sampler = S;

    fn num_rounds(&self) -> usize {
        self.rounds
    }

    fn resident_bytes(&self) -> usize {
        self.resident
    }

    fn stream_round(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &Self::Sampler),
    ) -> Result<(), GzError> {
        for (v, stack) in self.sketches.iter().enumerate() {
            if let Some(stack) = stack {
                let v = v as u32;
                if round < stack.num_rounds() && live(v) {
                    sink(v, stack.round(round));
                }
            }
        }
        Ok(())
    }

    fn stream_round_into(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, Self::Sampler>>],
    ) -> Result<(), GzError> {
        let sketches = &self.sketches;
        stream_stacks_into(sketches.len(), &|v| sketches[v].as_ref(), round, live, pool, sinks);
        Ok(())
    }
}

/// The partition-and-fold loop shared by the materialized and
/// borrowed-slice sources: worker `w` folds the live round slices of its
/// contiguous range of per-vertex stacks (absent stacks are skipped) into
/// its own sink.
fn stream_stacks_into<'a, S: L0Sampler + Clone + Send + Sync>(
    len: usize,
    stack_at: &(dyn Fn(usize) -> Option<&'a NodeSketch<S>> + Sync),
    round: usize,
    live: &(dyn Fn(u32) -> bool + Sync),
    pool: &WorkerPool,
    sinks: &[Mutex<RoundSink<'_, S>>],
) {
    pool.run(&|w| {
        let range = pool.partition(len, w);
        if range.is_empty() {
            return;
        }
        let mut sink = sinks[w].lock();
        for v in range {
            let Some(stack) = stack_at(v) else { continue };
            let v = v as u32;
            if round < stack.num_rounds() && live(v) {
                sink.fold(v, stack.round(round));
            }
        }
    });
}

/// A borrowing source over a caller-owned sketch slice (index = vertex id):
/// queries fold straight from the resident stacks without cloning them —
/// used by the StreamingCC baseline's non-destructive query path.
pub struct SliceSource<'a, S: L0Sampler> {
    sketches: &'a [NodeSketch<S>],
    rounds: usize,
}

impl<'a, S: L0Sampler> SliceSource<'a, S> {
    /// Wrap a borrowed per-vertex sketch slice.
    pub fn new(sketches: &'a [NodeSketch<S>]) -> Self {
        let rounds = sketches.iter().map(|s| s.num_rounds()).max().unwrap_or(0);
        SliceSource { sketches, rounds }
    }
}

impl<S: L0Sampler + Clone + Send + Sync> SketchSource for SliceSource<'_, S> {
    type Sampler = S;

    fn num_rounds(&self) -> usize {
        self.rounds
    }

    fn resident_bytes(&self) -> usize {
        // The stacks belong to the caller and stay resident regardless of
        // the query; the query itself holds only borrows.
        0
    }

    fn stream_round(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &Self::Sampler),
    ) -> Result<(), GzError> {
        for (v, stack) in self.sketches.iter().enumerate() {
            let v = v as u32;
            if round < stack.num_rounds() && live(v) {
                sink(v, stack.round(round));
            }
        }
        Ok(())
    }

    fn stream_round_into(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, Self::Sampler>>],
    ) -> Result<(), GzError> {
        let sketches = self.sketches;
        stream_stacks_into(sketches.len(), &|v| Some(&sketches[v]), round, live, pool, sinks);
        Ok(())
    }
}

/// The store-aware streaming source: round slices come straight from a
/// [`SketchStore`] (group-sequential reads with prefetch when the store is
/// disk-backed; borrowed in-place slices when it is in RAM).
pub struct StoreRoundSource<'a> {
    store: &'a SketchStore,
    resident: usize,
}

impl<'a> StoreRoundSource<'a> {
    /// Wrap a store. The caller must have quiesced ingestion (flushed the
    /// buffering system and drained the work queue) first.
    pub fn new(store: &'a SketchStore) -> Self {
        StoreRoundSource { store, resident: 0 }
    }
}

impl SketchSource for StoreRoundSource<'_> {
    type Sampler = CubeRoundSketch;

    fn num_rounds(&self) -> usize {
        self.store.params().rounds()
    }

    fn resident_bytes(&self) -> usize {
        self.resident
    }

    fn stream_round(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &Self::Sampler),
    ) -> Result<(), GzError> {
        self.resident = self.store.round_stream_resident_bytes(round, 1);
        self.store.stream_round(round, live, sink)
    }

    fn stream_round_into(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[Mutex<RoundSink<'_, Self::Sampler>>],
    ) -> Result<(), GzError> {
        self.resident = self.store.round_stream_resident_bytes(round, sinks.len());
        if sinks.len() == 1 {
            // Single-threaded: the disk store's bounded prefetch pipeline
            // (one reader overlapping the fold) beats a one-worker claim
            // loop, and the RAM path is identical either way.
            let mut sink = sinks[0].lock();
            return self.store.stream_round(round, live, &mut |node, slice| sink.fold(node, slice));
        }
        self.store.stream_round_parallel(round, live, pool, sinks)
    }
}

std::thread_local! {
    /// Per-thread index scratch for batch decoding: one buffer per Graph
    /// Worker, reused across batches so the hot path allocates nothing.
    /// Holds plain `u64` indices, so it is safe to share across stores
    /// with different sketch parameters.
    static INDEX_SCRATCH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with this thread's cleared index-scratch buffer (the decode
/// workspace of [`apply_records`] and the grouped ingestion path).
pub(crate) fn with_index_scratch<R>(f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    INDEX_SCRATCH.with(|cell| {
        let mut indices = cell.borrow_mut();
        indices.clear();
        f(&mut indices)
    })
}

/// Decode a batch of records bound for `node` into characteristic-vector
/// indices, appending to `out`. Self-loops are dropped (defensive: invalid
/// stream updates); the deletion flag is ignored (Z_2: insert and delete
/// are the same toggle).
#[inline]
pub(crate) fn decode_records_into(node: u32, records: &[u32], num_nodes: u64, out: &mut Vec<u64>) {
    out.reserve(records.len());
    for &rec in records {
        let (other, _is_delete) = crate::node_sketch::decode_other(rec);
        if other != node {
            out.push(crate::node_sketch::update_index(node, other, num_nodes));
        }
    }
}

/// Apply a batch of records to a node sketch through the batch kernel:
/// decode to indices **once per batch** (not once per round), run the
/// self-cancellation pre-pass once (it is hash-independent, so one pass
/// serves every round), then drive each round's column-major kernel.
/// Shared by both stores and bit-identical to per-record singles.
#[inline]
pub(crate) fn apply_records(
    sketch: &mut CubeNodeSketch,
    node: u32,
    records: &[u32],
    num_nodes: u64,
) {
    with_index_scratch(|indices| {
        decode_records_into(node, records, num_nodes, indices);
        gz_sketch::cancel_duplicates(indices);
        sketch.update_batch_prepared(indices);
    });
}

#[cfg(test)]
mod node_set_tests {
    use super::NodeSet;

    #[test]
    fn all_covers_every_node_densely() {
        let s = NodeSet::all(10);
        assert_eq!(s.len(), 10);
        for v in 0..10u32 {
            assert!(s.contains(v));
            assert_eq!(s.slot(v), v as usize);
            assert_eq!(s.node(v as usize), v);
        }
        assert!(!s.contains(10));
    }

    #[test]
    fn strided_is_the_residue_class() {
        // 10 nodes, 3 shards: shard 1 owns {1, 4, 7}.
        let s = NodeSet::strided(10, 1, 3);
        assert_eq!(s.iter().collect::<Vec<u32>>(), vec![1, 4, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(4) && !s.contains(5) && !s.contains(10));
        assert_eq!(s.slot(7), 2);
        assert_eq!(s.node(2), 7);
    }

    #[test]
    fn strided_lengths_partition_the_universe() {
        for n in [1u64, 2, 7, 64, 100] {
            for k in [1u32, 2, 3, 7, 16] {
                let total: usize = (0..k).map(|i| NodeSet::strided(n, i, k).len()).sum();
                assert_eq!(total as u64, n, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_sets() {
        let s = NodeSet::strided(2, 3, 5);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
