//! File-backed sketch store: the paper's "sketches on SSD" deployment.
//!
//! Node sketches are serialized at fixed offsets in a pre-allocated file,
//! grouped into *node groups* of `max(1, B/sketch_size)` nodes stored
//! contiguously (paper §4.1) so one block access moves a whole group. A
//! bounded LRU cache of deserialized groups stands in for the paper's RAM
//! budget `M`; evictions write dirty groups back. Every file access is
//! recorded in [`IoStats`], which is how the experiment suite measures the
//! hybrid-model I/O claims instead of relying on cgroup-forced swap.
//!
//! Within a group the layout is *round-major*: all nodes' round-0 slices,
//! then all round-1 slices, and so on. Ingestion always faults whole groups
//! through the cache, so it is indifferent to the internal order — but the
//! streaming query path (paper §4.2, Figure 9) needs only round `r`'s
//! column data in Borůvka round `r`, and the round-major order makes that
//! slice one contiguous read of `nodes_in_group × round_bytes` instead of
//! `nodes_in_group` strided seeks. [`DiskStore::stream_round`] reads those
//! slices sequentially and prefetches ahead on a background thread.

use crate::node_sketch::{CubeNodeSketch, CubeRoundSketch, NodeSketch, SketchParams};
use crate::sparse::SparseSet;
use crate::store::epoch::{EpochOverlay, EpochRegistry};
use crate::store::io_backend::{IoBackendConfig, IoBackendImpl, ReadReq, O_DIRECT};
use crate::store::{NodeSet, RepStats};
use gz_gutters::{IoStats, WorkQueue};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::File;
use std::path::PathBuf;
use std::sync::Arc;

struct CachedGroup {
    sketches: Vec<CubeNodeSketch>,
    dirty: bool,
    last_used: u64,
}

struct CacheState {
    groups: std::collections::HashMap<u32, CachedGroup>,
    clock: u64,
}

/// Sketches in a file, node-group layout, bounded LRU cache.
///
/// Like [`super::ram::RamStore`], the store may hold the whole vertex set or
/// only a shard's residue class; the file is laid out over dense *slots* of
/// the [`NodeSet`], so a shard's file is sized to its owned nodes.
pub struct DiskStore {
    params: Arc<SketchParams>,
    node_set: NodeSet,
    file: File,
    path: PathBuf,
    /// Nodes per group.
    group_size: u32,
    /// Serialized bytes per node sketch.
    node_bytes: usize,
    /// Maximum groups held in RAM.
    cache_capacity: usize,
    cache: Mutex<CacheState>,
    io: Arc<IoStats>,
    /// How file regions become syscalls: blocking preads, or batched
    /// io_uring submissions (DESIGN.md §13). Selected by
    /// [`IoBackendConfig::kind`]; `Auto` probes at open and falls back.
    backend: IoBackendImpl,
    /// A second, `O_DIRECT` handle on the backing file for the read paths
    /// when direct mode is on (`None` = buffered reads). Writes always go
    /// through the buffered `file` handle: write-back traffic is small and
    /// unaligned, and the kernel keeps the two views coherent.
    read_file: Option<File>,
    /// Live sealed epochs. The copy-on-write "group" is the node group:
    /// captures happen under the cache lock, on the clean→dirty transition
    /// of a cached group (a clean group's value equals the file's, which is
    /// the sealed value for every epoch still lacking the group).
    epochs: EpochRegistry,
    /// Promotion threshold τ: a node's exact toggle-set is replayed into a
    /// dense sketch once it exceeds τ live neighbors. 0 = always dense.
    threshold: u32,
    /// Per-slot sparse representation; `None` means the slot is dense
    /// (promoted, or τ = 0). Sparse slots' file bytes stay all-zero and are
    /// never authoritative — readers must skip them. Lock order: this table
    /// before the cache lock (promotion holds both).
    sparse: Mutex<Vec<Option<SparseSet>>>,
}

impl DiskStore {
    /// Create the store, pre-allocating the backing file with all-zero
    /// sketches (a fresh CubeSketch serializes to all zero bytes, so a
    /// zero-filled file *is* the empty store).
    pub fn new(
        params: Arc<SketchParams>,
        path: PathBuf,
        block_bytes: usize,
        cache_groups: usize,
    ) -> std::io::Result<Self> {
        let node_set = NodeSet::all(params.num_nodes);
        Self::for_nodes(params, node_set, path, block_bytes, cache_groups)
    }

    /// Create a store over the nodes of `node_set` only (a shard's residue
    /// class); the backing file holds one slot per owned node.
    pub fn for_nodes(
        params: Arc<SketchParams>,
        node_set: NodeSet,
        path: PathBuf,
        block_bytes: usize,
        cache_groups: usize,
    ) -> std::io::Result<Self> {
        Self::for_nodes_with_threshold(params, node_set, path, block_bytes, cache_groups, 0)
    }

    /// [`Self::for_nodes`] with a promotion threshold τ: every slot starts
    /// as a compact exact toggle-set and is replayed into a dense sketch in
    /// the file once it exceeds τ live neighbors. τ = 0 keeps the store
    /// always-dense (bit-identical behavior and I/O counts to before the
    /// hybrid representation existed).
    pub fn for_nodes_with_threshold(
        params: Arc<SketchParams>,
        node_set: NodeSet,
        path: PathBuf,
        block_bytes: usize,
        cache_groups: usize,
        threshold: u32,
    ) -> std::io::Result<Self> {
        Self::for_nodes_with_options(
            params,
            node_set,
            path,
            block_bytes,
            cache_groups,
            threshold,
            IoBackendConfig::default(),
        )
    }

    /// [`Self::for_nodes_with_threshold`] with explicit I/O tunables:
    /// backend selection, submission queue depth, and O_DIRECT mode
    /// (DESIGN.md §13).
    pub fn for_nodes_with_options(
        params: Arc<SketchParams>,
        node_set: NodeSet,
        path: PathBuf,
        block_bytes: usize,
        cache_groups: usize,
        threshold: u32,
        io: IoBackendConfig,
    ) -> std::io::Result<Self> {
        let node_bytes = params.node_sketch_serialized_bytes();
        let num_slots = node_set.len() as u64;
        let group_size =
            ((block_bytes / node_bytes.max(1)).max(1) as u64).min(num_slots.max(1)).max(1) as u32;
        let num_groups = (num_slots as u32).div_ceil(group_size);

        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(num_groups as u64 * group_size as u64 * node_bytes as u64)?;

        // Direct mode is best-effort: some filesystems (notably tmpfs)
        // refuse O_DIRECT, in which case reads stay buffered.
        let read_file = if io.direct {
            use std::os::unix::fs::OpenOptionsExt;
            std::fs::OpenOptions::new().read(true).custom_flags(O_DIRECT).open(&path).ok()
        } else {
            None
        };
        let backend = IoBackendImpl::resolve(io.kind, io.queue_depth, read_file.is_some())?;

        let sparse = if threshold == 0 {
            vec![None; num_slots as usize]
        } else {
            (0..num_slots).map(|_| Some(SparseSet::new())).collect()
        };
        Ok(DiskStore {
            params,
            node_set,
            file,
            path,
            group_size,
            node_bytes,
            cache_capacity: cache_groups.max(1),
            cache: Mutex::new(CacheState { groups: std::collections::HashMap::new(), clock: 0 }),
            io: Arc::new(IoStats::new()),
            backend,
            read_file,
            epochs: EpochRegistry::new(),
            threshold,
            sparse: Mutex::new(sparse),
        })
    }

    /// The file handle read paths use: the O_DIRECT handle in direct mode,
    /// the ordinary buffered handle otherwise.
    fn read_handle(&self) -> &File {
        self.read_file.as_ref().unwrap_or(&self.file)
    }

    /// Resolved backend description, e.g. `"uring"` or `"pread+direct"`
    /// (for `--stats` output and test logs).
    pub fn io_backend_name(&self) -> String {
        let direct = if self.read_file.is_some() { "+direct" } else { "" };
        format!("{}{direct}", self.backend.name())
    }

    /// Seal the current generation: write back every dirty cached group
    /// (so the file is authoritative for the sealed values), then register
    /// the epoch — atomically under the cache lock, so no batch can dirty a
    /// group between the write-back and the registration. The caller must
    /// have quiesced ingestion first.
    pub fn begin_epoch(&self) -> std::io::Result<(u64, Arc<EpochOverlay>)> {
        let mut cache = self.cache.lock();
        self.writeback_dirty(&mut cache)?;
        Ok(self.epochs.register())
    }

    /// Write every dirty cached group back to the file, coalescing runs of
    /// *adjacent* dirty group ids into single contiguous writes (their file
    /// regions abut, so one larger write is equivalent) and batching all
    /// resulting regions into one submission window on the uring backend.
    /// Shared by [`Self::flush`] and [`Self::begin_epoch`].
    fn writeback_dirty(&self, cache: &mut CacheState) -> std::io::Result<()> {
        let mut dirty: Vec<u32> =
            cache.groups.iter().filter(|(_, e)| e.dirty).map(|(&g, _)| g).collect();
        if dirty.is_empty() {
            return Ok(());
        }
        dirty.sort_unstable();
        let mut regions: Vec<(u64, Vec<u8>)> = Vec::new();
        for &group in &dirty {
            let bytes = self.encode_group(&cache.groups[&group].sketches);
            match regions.last_mut() {
                // Adjacent in the file iff the previous run ends exactly at
                // this group's offset (every non-final group encodes to the
                // full `group_size × node_bytes` region).
                Some((offset, run)) if *offset + run.len() as u64 == self.group_offset(group) => {
                    run.extend_from_slice(&bytes);
                }
                _ => regions.push((self.group_offset(group), bytes)),
            }
        }
        self.backend.write_regions(&self.file, &regions, &self.io)?;
        for group in dirty {
            cache.groups.get_mut(&group).expect("dirty group cached").dirty = false;
        }
        Ok(())
    }

    /// Shared sketch parameters.
    pub fn params(&self) -> &Arc<SketchParams> {
        &self.params
    }

    /// I/O counters.
    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// Nodes per group (`max(1, B/sketch)`; paper §4.1).
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// The vertex set this store holds sketches for.
    pub fn node_set(&self) -> NodeSet {
        self.node_set
    }

    /// Number of node groups in the backing file.
    pub fn num_groups(&self) -> u32 {
        (self.node_set.len() as u32).div_ceil(self.group_size)
    }

    fn group_of_slot(&self, slot: usize) -> u32 {
        slot as u32 / self.group_size
    }

    fn group_offset(&self, group: u32) -> u64 {
        group as u64 * self.group_size as u64 * self.node_bytes as u64
    }

    fn nodes_in_group(&self, group: u32) -> u32 {
        let start = group * self.group_size;
        (self.node_set.len() as u32 - start).min(self.group_size)
    }

    /// Encode a group block: round-major over the group's `k` nodes (see
    /// the module docs — this is what makes a round slice contiguous).
    fn encode_group(&self, sketches: &[CubeNodeSketch]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(sketches.len() * self.node_bytes);
        for r in 0..self.params.rounds() {
            for s in sketches {
                self.params.serialize_round(s, r, &mut bytes);
            }
        }
        bytes
    }

    /// Decode a round-major group block back into per-node sketch stacks.
    fn decode_group(&self, bytes: &[u8], k: usize) -> Vec<CubeNodeSketch> {
        (0..k)
            .map(|i| {
                NodeSketch::new_with(self.params.rounds(), |r| {
                    let rb = self.params.round_serialized_bytes(r);
                    let base = k * self.params.round_serialized_offset(r) + i * rb;
                    self.params.deserialize_round(r, &bytes[base..base + rb])
                })
            })
            .collect()
    }

    fn load_group(&self, group: u32) -> std::io::Result<Vec<CubeNodeSketch>> {
        let n = self.nodes_in_group(group) as usize;
        let mut bytes = vec![0u8; n * self.node_bytes];
        self.backend.read_into(
            self.read_handle(),
            self.group_offset(group),
            &mut bytes,
            &self.io,
        )?;
        Ok(self.decode_group(&bytes, n))
    }

    fn write_group(&self, group: u32, sketches: &[CubeNodeSketch]) -> std::io::Result<()> {
        let bytes = self.encode_group(sketches);
        self.backend.write_regions(&self.file, &[(self.group_offset(group), bytes)], &self.io)
    }

    /// The file region holding `group`'s round-`round` slice: one
    /// contiguous span of the group's `k × round_bytes` column data
    /// (round-major layout). Regions carry their own offsets, so any
    /// number of query workers can have reads of different groups in
    /// flight on the shared `&File` concurrently — there is no seek cursor
    /// to race on. Reads are counted in the caller's [`IoStats`], which
    /// parallel readers keep thread-local and merge once per worker.
    fn round_slice_req(&self, group: u32, round: usize) -> ReadReq {
        let k = self.nodes_in_group(group) as usize;
        ReadReq {
            offset: self.group_offset(group)
                + (k * self.params.round_serialized_offset(round)) as u64,
            len: k * self.params.round_serialized_bytes(round),
        }
    }

    #[cfg(test)]
    fn read_round_slice(&self, group: u32, round: usize) -> std::io::Result<Vec<u8>> {
        let req = self.round_slice_req(group, round);
        let mut bytes = vec![0u8; req.len];
        self.backend.read_into(self.read_handle(), req.offset, &mut bytes, &self.io)?;
        Ok(bytes)
    }

    /// Deliver `group`'s live, dense round-`round` slices out of a raw file
    /// slice. Slots in `skip` (sparse at the relevant instant) are never
    /// emitted: their file bytes are all-zero padding, not their state.
    fn emit_group_slice(
        &self,
        group: u32,
        round: usize,
        bytes: &[u8],
        live: &(dyn Fn(u32) -> bool + Sync),
        skip: &HashSet<usize>,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) {
        let round_bytes = self.params.round_serialized_bytes(round);
        let start = (group * self.group_size) as usize;
        for i in 0..self.nodes_in_group(group) as usize {
            let node = self.node_set.node(start + i);
            if !live(node) || skip.contains(&(start + i)) {
                continue;
            }
            let sketch = self
                .params
                .deserialize_round(round, &bytes[i * round_bytes..(i + 1) * round_bytes]);
            sink(node, &sketch);
        }
    }

    /// Deliver `group`'s live, dense round-`round` slices out of a sealed
    /// pre-image (an [`EpochOverlay`] capture, held in RAM). Slots in
    /// `skip` were sparse at the seal: their pre-image entries hold only
    /// zeros and their sealed state is served by the sparse pass instead.
    fn emit_group_overlay(
        &self,
        group: u32,
        round: usize,
        pre: &[CubeNodeSketch],
        live: &(dyn Fn(u32) -> bool + Sync),
        skip: &HashSet<usize>,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) {
        let start = (group * self.group_size) as usize;
        for (i, sealed) in pre.iter().enumerate().take(self.nodes_in_group(group) as usize) {
            let node = self.node_set.node(start + i);
            if !live(node) || skip.contains(&(start + i)) {
                continue;
            }
            sink(node, sealed.round(round));
        }
    }

    /// Slots currently holding a sparse representation. The snapshot is
    /// stable for the live query paths (quiesced ingestion), and cheap —
    /// empty — at τ = 0.
    fn sparse_slots(&self) -> HashSet<usize> {
        if self.threshold == 0 {
            return HashSet::new();
        }
        let table = self.sparse.lock();
        table.iter().enumerate().filter(|(_, s)| s.is_some()).map(|(slot, _)| slot).collect()
    }

    /// Slots that were sparse when `overlay`'s epoch was sealed: the union
    /// of overlay-captured sparse pre-images and still-live sparse slots.
    /// Promotion is monotone and every post-seal sparse mutation captures
    /// its pre-image *under the table lock* before touching the set, so
    /// taking that same lock here makes the union exactly "sparse at seal"
    /// — a stable set, safe to snapshot once per round stream even while
    /// ingestion keeps promoting.
    fn sealed_sparse_slots(&self, overlay: &EpochOverlay) -> HashSet<usize> {
        if self.threshold == 0 {
            return HashSet::new();
        }
        let table = self.sparse.lock();
        (0..table.len())
            .filter(|&slot| table[slot].is_some() || overlay.get_sparse(slot as u32).is_some())
            .collect()
    }

    /// The node groups a dense round stream must visit: those with at
    /// least one live node outside `skip`, in slot order. All-sparse
    /// groups are never read — their file bytes are untouched zeros.
    fn wanted_groups(
        &self,
        live: &(dyn Fn(u32) -> bool + Sync),
        skip: &HashSet<usize>,
    ) -> Vec<u32> {
        (0..self.num_groups())
            .filter(|&g| {
                let start = (g * self.group_size) as usize;
                (0..self.nodes_in_group(g) as usize)
                    .any(|i| !skip.contains(&(start + i)) && live(self.node_set.node(start + i)))
            })
            .collect()
    }

    /// Run `f` with mutable access to a cached group, faulting it in (and
    /// possibly evicting the least-recently-used dirty group) first.
    fn with_group<R>(
        &self,
        group: u32,
        f: impl FnOnce(&mut Vec<CubeNodeSketch>) -> R,
    ) -> std::io::Result<R> {
        let mut cache = self.cache.lock();
        cache.clock += 1;
        let clock = cache.clock;

        if !cache.groups.contains_key(&group) {
            // Evict if at capacity.
            if cache.groups.len() >= self.cache_capacity {
                let victim = cache
                    .groups
                    .iter()
                    .min_by_key(|(_, g)| g.last_used)
                    .map(|(&k, _)| k)
                    .expect("cache nonempty at capacity");
                let evicted = cache.groups.remove(&victim).expect("victim present");
                if evicted.dirty {
                    self.write_group(victim, &evicted.sketches)?;
                }
            }
            let sketches = self.load_group(group)?;
            cache.groups.insert(group, CachedGroup { sketches, dirty: false, last_used: clock });
        }

        let entry = cache.groups.get_mut(&group).expect("group just inserted");
        entry.last_used = clock;
        if !entry.dirty {
            // Clean→dirty transition: this clean value equals the file's,
            // which is the sealed value of every live epoch not yet holding
            // this group (any earlier post-seal mutation would have passed
            // through here and captured it) — snapshot it before `f` can
            // mutate. Capturing under the cache lock orders the capture
            // before any write-back of the mutated group, which is what
            // lets epoch readers trust the file for non-captured groups.
            let sketches = &entry.sketches;
            self.epochs.capture_group(group, &mut || sketches.clone());
            entry.dirty = true;
        }
        Ok(f(&mut entry.sketches))
    }

    /// Apply a batch of encoded records to `node` (which must be owned).
    ///
    /// While the node is sparse the batch only toggles its exact
    /// neighbor-set — no group fault, no file traffic. Crossing τ promotes:
    /// the set is replayed through the batch kernel into a dense sketch
    /// (bit-identical to having been dense all along, because sketch state
    /// is XOR-linear in the toggled indices) and written into the node's
    /// group slot. The epoch pre-image is captured under the table lock
    /// *before* the first toggle, so sealed readers see the pre-batch set.
    pub fn apply_batch(&self, node: u32, records: &[u32]) {
        let slot = self.node_set.slot(node);
        if self.threshold > 0 {
            let mut table = self.sparse.lock();
            if let Some(set) = table[slot].as_mut() {
                self.epochs.capture_sparse(slot as u32, &mut || set.clone());
                let mut len = set.len();
                for &rec in records {
                    let (other, _) = crate::node_sketch::decode_other(rec);
                    if other != node {
                        len = set.toggle(other);
                    }
                }
                if len > self.threshold as usize {
                    let dense = set.densify(node, &self.params);
                    table[slot] = None;
                    let group = self.group_of_slot(slot);
                    let local = slot % self.group_size as usize;
                    self.io.record_promotion();
                    // Table lock held across the group write: readers that
                    // saw the slot leave the table are ordered after the
                    // capture above, so the epoch protocol stays airtight.
                    self.with_group(group, |sketches| {
                        sketches[local] = dense;
                    })
                    .expect("disk store promotion failed");
                }
                return;
            }
        }
        let group = self.group_of_slot(slot);
        let local = slot % self.group_size as usize;
        let num_nodes = self.params.num_nodes;
        self.with_group(group, |sketches| {
            super::apply_records(&mut sketches[local], node, records, num_nodes);
        })
        .expect("disk store batch application failed");
    }

    /// Flush every dirty cached group back to the file (adjacent dirty
    /// groups coalesce into single contiguous writes; see
    /// [`Self::writeback_dirty`]).
    pub fn flush(&self) -> std::io::Result<()> {
        let mut cache = self.cache.lock();
        self.writeback_dirty(&mut cache)
    }

    /// Groups a stream-path reader claims per batch: the backend's natural
    /// submission window, bounded by the cache budget (the prefetch queue
    /// must be able to absorb a whole window without exceeding `M`).
    fn stream_window(&self) -> usize {
        self.backend.read_window().min(self.cache_capacity).max(1)
    }

    /// Stream the round-`round` slice of every owned node whose component
    /// is still `live` into `sink`, group by group in slot order — the
    /// storage-friendly query path (paper §4.2, Figure 9).
    ///
    /// Dirty cached groups are written back first so the file is
    /// authoritative, then a background thread reads the wanted groups'
    /// round slices sequentially, staying up to `cache_groups` reads ahead
    /// of the fold (the same RAM budget `M` the ingestion cache honors).
    /// Groups whose nodes are all retired are skipped entirely. Every read
    /// is counted in [`IoStats`]. The caller must have quiesced ingestion
    /// (the system query path flushes before querying).
    pub fn stream_round(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) -> std::io::Result<()> {
        self.flush()?;
        let skip = self.sparse_slots();
        let wanted = self.wanted_groups(live, &skip);

        // Bounded prefetch pipeline over the generic work queue: the reader
        // blocks once `cache_capacity` slices are in flight, so resident
        // query memory stays within the configured cache budget.
        let queue: WorkQueue<(u32, std::io::Result<Vec<u8>>)> =
            WorkQueue::with_capacity(self.cache_capacity);
        std::thread::scope(|scope| {
            // Close the queue on *every* exit from this closure — normal
            // return, an I/O error, or a panic while folding a slice.
            // Without this, a panicking consumer would leave the prefetcher
            // blocked in `push` on a full queue while `thread::scope` waits
            // to join it: the panic would become a deadlock.
            struct CloseOnExit<'q>(&'q WorkQueue<(u32, std::io::Result<Vec<u8>>)>);
            impl Drop for CloseOnExit<'_> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let _close_guard = CloseOnExit(&queue);

            scope.spawn(|| {
                // Reads go down in windows of up to `stream_window` groups
                // per backend submission (1 on pread — the original
                // one-read-ahead pipeline — up to the queue depth on
                // uring); completed slices may arrive out of request order.
                for chunk in wanted.chunks(self.stream_window()) {
                    let reqs: Vec<ReadReq> =
                        chunk.iter().map(|&g| self.round_slice_req(g, round)).collect();
                    let mut open = true;
                    let read = self.backend.read_regions(
                        self.read_handle(),
                        &reqs,
                        &self.io,
                        &mut |i, bytes| {
                            open = queue.push((chunk[i], Ok(bytes.to_vec())));
                            open
                        },
                    );
                    if let Err(e) = read {
                        queue.push((chunk[0], Err(e)));
                        break;
                    }
                    if !open {
                        break;
                    }
                }
            });
            let mut delivered = 0usize;
            let mut result = Ok(());
            while delivered < wanted.len() {
                let Some((group, slice)) = queue.pop() else { break };
                delivered += 1;
                match slice {
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                    Ok(bytes) => self.emit_group_slice(group, round, &bytes, live, &skip, sink),
                }
            }
            // The close guard unblocks the prefetcher if the fold bailed
            // early (error or panic).
            result
        })
    }

    /// [`Self::stream_round`] pinned to a sealed epoch: no flush and no
    /// quiescing — ingestion keeps writing while this runs. Groups the
    /// overlay captured are served from their sealed pre-images (no file
    /// read at all); the rest are read from the file, which holds their
    /// sealed value because the seal flushed and nothing dirtied them
    /// since. The overlay is re-checked *after* each file read and always
    /// wins: a capture landing mid-read means the read may have raced a
    /// write-back of post-seal state, and the capture happens-before that
    /// write-back — so a torn or stale read is always masked.
    pub fn stream_round_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        sink: &mut dyn FnMut(u32, &CubeRoundSketch),
    ) -> std::io::Result<()> {
        let skip = self.sealed_sparse_slots(overlay);
        let wanted = self.wanted_groups(live, &skip);
        // `None` in the pipeline = "serve from the overlay" (captures are
        // never removed, so a hit observed at prefetch time is stable).
        let queue: WorkQueue<(u32, std::io::Result<Option<Vec<u8>>>)> =
            WorkQueue::with_capacity(self.cache_capacity);
        std::thread::scope(|scope| {
            struct CloseOnExit<'q>(&'q WorkQueue<(u32, std::io::Result<Option<Vec<u8>>>)>);
            impl Drop for CloseOnExit<'_> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let _close_guard = CloseOnExit(&queue);

            scope.spawn(|| {
                // Same windowed submission as the live path, except groups
                // the overlay captured are served inline (`Ok(None)`) and
                // only the misses join the read batch.
                'chunks: for chunk in wanted.chunks(self.stream_window()) {
                    let mut misses: Vec<u32> = Vec::with_capacity(chunk.len());
                    for &g in chunk {
                        if overlay.get(g).is_some() {
                            if !queue.push((g, Ok(None))) {
                                break 'chunks;
                            }
                        } else {
                            misses.push(g);
                        }
                    }
                    let reqs: Vec<ReadReq> =
                        misses.iter().map(|&g| self.round_slice_req(g, round)).collect();
                    let mut open = true;
                    let read = self.backend.read_regions(
                        self.read_handle(),
                        &reqs,
                        &self.io,
                        &mut |i, bytes| {
                            open = queue.push((misses[i], Ok(Some(bytes.to_vec()))));
                            open
                        },
                    );
                    if let Err(e) = read {
                        queue.push((chunk[0], Err(e)));
                        break;
                    }
                    if !open {
                        break;
                    }
                }
            });
            let mut delivered = 0usize;
            let mut result = Ok(());
            while delivered < wanted.len() {
                let Some((group, item)) = queue.pop() else { break };
                delivered += 1;
                match item {
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                    Ok(bytes) => match overlay.get(group) {
                        Some(pre) => self.emit_group_overlay(group, round, &pre, live, &skip, sink),
                        None => {
                            let bytes =
                                bytes.expect("prefetcher reads any group the overlay lacks");
                            self.emit_group_slice(group, round, &bytes, live, &skip, sink);
                        }
                    },
                }
            }
            result
        })
    }

    /// [`Self::stream_round_parallel`] pinned to a sealed epoch (same
    /// overlay protocol as [`Self::stream_round_at`], same work-claiming as
    /// the live parallel path).
    pub fn stream_round_parallel_at(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
        pool: &gz_gutters::WorkerPool,
        sinks: &[parking_lot::Mutex<crate::boruvka::RoundSink<'_, CubeRoundSketch>>],
    ) -> std::io::Result<()> {
        let skip = self.sealed_sparse_slots(overlay);
        let wanted = self.wanted_groups(live, &skip);
        let window = self.stream_window();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let first_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        pool.run(&|w| {
            let local_io = IoStats::new();
            let mut sink = sinks[w].lock();
            loop {
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let start = next.fetch_add(window, std::sync::atomic::Ordering::Relaxed);
                if start >= wanted.len() {
                    break;
                }
                let chunk = &wanted[start..wanted.len().min(start + window)];
                // Overlay-captured groups are served from their sealed
                // pre-images inline; only the misses join the read batch.
                let mut misses: Vec<u32> = Vec::with_capacity(chunk.len());
                for &group in chunk {
                    match overlay.get(group) {
                        Some(pre) => {
                            self.emit_group_overlay(
                                group,
                                round,
                                &pre,
                                live,
                                &skip,
                                &mut |n, s| sink.fold(n, s),
                            );
                        }
                        None => misses.push(group),
                    }
                }
                let reqs: Vec<ReadReq> =
                    misses.iter().map(|&g| self.round_slice_req(g, round)).collect();
                let read = self.backend.read_regions(
                    self.read_handle(),
                    &reqs,
                    &local_io,
                    &mut |i, bytes| {
                        // The overlay is re-checked after the read and
                        // always wins: a capture landing mid-read means the
                        // read may have raced a write-back of post-seal
                        // state, and the capture happens-before it.
                        let group = misses[i];
                        match overlay.get(group) {
                            Some(pre) => self.emit_group_overlay(
                                group,
                                round,
                                &pre,
                                live,
                                &skip,
                                &mut |n, s| sink.fold(n, s),
                            ),
                            None => self.emit_group_slice(
                                group,
                                round,
                                bytes,
                                live,
                                &skip,
                                &mut |n, s| sink.fold(n, s),
                            ),
                        }
                        !failed.load(std::sync::atomic::Ordering::Relaxed)
                    },
                );
                if let Err(e) = read {
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
            self.io.merge_from(&local_io);
        });
        match first_error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Stream the round-`round` slice of every owned live node with group
    /// reads spread across the pool's workers: each worker claims the next
    /// wanted group from a shared cursor, issues its own positioned read on
    /// the shared file handle (up to `sinks.len()` reads in flight at
    /// once), deserializes the slices, and folds them into its own sink.
    /// Which worker reads which group is scheduling-dependent, but folding
    /// is XOR, so results are bit-identical to [`Self::stream_round`].
    ///
    /// I/O accounting stays exact under concurrency: every worker counts
    /// into a thread-local [`IoStats`] and merges it into the store's
    /// shared counters once, so a parallel round stream records exactly one
    /// read (of exactly the slice's bytes) per visited group.
    pub fn stream_round_parallel(
        &self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &gz_gutters::WorkerPool,
        sinks: &[parking_lot::Mutex<crate::boruvka::RoundSink<'_, CubeRoundSketch>>],
    ) -> std::io::Result<()> {
        self.flush()?;
        let skip = self.sparse_slots();
        let wanted = self.wanted_groups(live, &skip);

        let window = self.stream_window();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let first_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        pool.run(&|w| {
            let local_io = IoStats::new();
            let mut sink = sinks[w].lock();
            loop {
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                // Claim a whole submission window of groups per trip to the
                // shared cursor: one group at a time on pread (exactly the
                // old claim granularity), `queue_depth` at a time on uring,
                // where the batch goes down in a single `io_uring_enter`
                // and completions fold in whatever order they surface —
                // folding is XOR, so results stay bit-identical.
                let start = next.fetch_add(window, std::sync::atomic::Ordering::Relaxed);
                if start >= wanted.len() {
                    break;
                }
                let chunk = &wanted[start..wanted.len().min(start + window)];
                let reqs: Vec<ReadReq> =
                    chunk.iter().map(|&g| self.round_slice_req(g, round)).collect();
                let read = self.backend.read_regions(
                    self.read_handle(),
                    &reqs,
                    &local_io,
                    &mut |i, bytes| {
                        self.emit_group_slice(chunk[i], round, bytes, live, &skip, &mut |n, s| {
                            sink.fold(n, s)
                        });
                        !failed.load(std::sync::atomic::Ordering::Relaxed)
                    },
                );
                if let Err(e) = read {
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
            self.io.merge_from(&local_io);
        });
        match first_error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Upper bound on sketch bytes the round stream holds resident at once
    /// when read by `threads` query workers. Single-threaded, that is the
    /// prefetch pipeline: the queue (`cache_groups` slices), the slice
    /// being folded, and up to one submission window the prefetcher may
    /// hold in flight while blocked in `push`. With `threads > 1` workers
    /// read for themselves — each holds at most one window of slices. The
    /// window never exceeds the cache budget (see [`Self::stream_window`]),
    /// so batching deepens the pipeline without forfeiting the `M` bound.
    pub fn round_stream_resident_bytes(&self, round: usize, threads: usize) -> usize {
        let slice = self.group_size as usize * self.params.round_serialized_bytes(round);
        let window = self.stream_window();
        if threads <= 1 {
            (self.cache_capacity + 1 + window) * slice
        } else {
            threads * window * slice
        }
    }

    /// Clone out every owned node sketch, indexed by slot (a full scan
    /// through the cache, counting the reads — the paper's "single scan"
    /// query prologue, Lemma 5).
    pub fn snapshot(&self) -> Vec<Option<CubeNodeSketch>> {
        let num_groups = self.num_groups();
        let mut out = Vec::with_capacity(self.node_set.len());
        for group in 0..num_groups {
            let sketches =
                self.with_group(group, |s| s.clone()).expect("disk store snapshot read failed");
            for s in sketches {
                out.push(Some(s));
            }
        }
        // Sparse slots' file/cached bytes are zeros; their true state is the
        // toggle-set, densified by replay (bit-identical to always-dense).
        if self.threshold > 0 {
            let table = self.sparse.lock();
            for (slot, set) in table.iter().enumerate() {
                if let Some(set) = set {
                    out[slot] = Some(set.densify(self.node_set.node(slot), &self.params));
                }
            }
        }
        out
    }

    /// Clone out every owned node sketch as `(node, sketch)` pairs.
    pub fn snapshot_owned(&self) -> Vec<(u32, CubeNodeSketch)> {
        self.snapshot()
            .into_iter()
            .enumerate()
            .map(|(slot, s)| (self.node_set.node(slot), s.expect("snapshot holds every slot")))
            .collect()
    }

    /// Replace every node sketch (checkpoint restore), in slot order.
    /// Sparse slots are retired to dense first (checkpoints store dense
    /// state); their pre-images are captured for any sealed epoch.
    pub fn load_all(&self, sketches: Vec<CubeNodeSketch>) {
        assert_eq!(sketches.len(), self.node_set.len());
        if self.threshold > 0 {
            let mut table = self.sparse.lock();
            for slot in 0..table.len() {
                if let Some(set) = table[slot].as_mut() {
                    self.epochs.capture_sparse(slot as u32, &mut || set.clone());
                    table[slot] = None;
                }
            }
        }
        for (slot, sketch) in sketches.into_iter().enumerate() {
            let group = self.group_of_slot(slot);
            let local = slot % self.group_size as usize;
            self.with_group(group, |group_sketches| {
                group_sketches[local] = sketch;
            })
            .expect("disk store load failed");
        }
    }

    /// Total sketch payload bytes (the on-disk footprint, owned nodes only).
    pub fn sketch_bytes(&self) -> usize {
        self.params.node_sketch_bytes() * self.node_set.len()
    }

    /// Clone the live sparse sets of `live` nodes, for the dispatch layer's
    /// sparse synthesis pass. Empty at τ = 0 without touching the table.
    pub fn sparse_sets(&self, live: &(dyn Fn(u32) -> bool + Sync)) -> Vec<(u32, SparseSet)> {
        if self.threshold == 0 {
            return Vec::new();
        }
        let table = self.sparse.lock();
        table
            .iter()
            .enumerate()
            .filter_map(|(slot, set)| {
                let set = set.as_ref()?;
                let node = self.node_set.node(slot);
                live(node).then(|| (node, set.clone()))
            })
            .collect()
    }

    /// [`Self::sparse_sets`] as sealed at `overlay`'s epoch: an overlay
    /// pre-image outranks the live set (the slot toggled or promoted after
    /// the seal); a live sparse slot with no capture is unchanged since the
    /// seal. Taken under the table lock, so a concurrent promotion is seen
    /// either as still-live or as its (mandatory) capture — never neither.
    pub fn sparse_sets_at(
        &self,
        live: &(dyn Fn(u32) -> bool + Sync),
        overlay: &EpochOverlay,
    ) -> Vec<(u32, SparseSet)> {
        if self.threshold == 0 {
            return Vec::new();
        }
        let table = self.sparse.lock();
        (0..table.len())
            .filter_map(|slot| {
                let node = self.node_set.node(slot);
                if !live(node) {
                    return None;
                }
                if let Some(pre) = overlay.get_sparse(slot as u32) {
                    return Some((node, (*pre).clone()));
                }
                table[slot].as_ref().map(|set| (node, set.clone()))
            })
            .collect()
    }

    /// Representation census: promoted vs sparse slot counts and total
    /// sparse entries (for memory accounting and `--stats` reporting).
    pub fn rep_stats(&self) -> RepStats {
        let table = self.sparse.lock();
        let mut stats = RepStats { promoted: 0, sparse: 0, sparse_entries: 0 };
        for set in table.iter() {
            match set {
                Some(set) => {
                    stats.sparse += 1;
                    stats.sparse_entries += set.len();
                }
                None => stats.promoted += 1,
            }
        }
        stats
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        // Best-effort cleanup of the backing file; ignore failures.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::{encode_other, update_index};
    use gz_sketch::SampleResult;

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-disk-store-{name}"), ".bin")
    }

    /// Build a store on a unique temp file; keep the returned guard alive for
    /// the store's lifetime (dropping it deletes the backing file).
    fn make(
        name: &str,
        num_nodes: u64,
        block_bytes: usize,
        cache: usize,
    ) -> (DiskStore, gz_testutil::TempPath) {
        let params = Arc::new(SketchParams::new(num_nodes, 3, 7, 7));
        let path = tmp(name);
        let store = DiskStore::new(params, path.to_path_buf(), block_bytes, cache).unwrap();
        (store, path)
    }

    #[test]
    fn group_size_rule() {
        // Tiny block: one node per group.
        let (s, _t1) = make("g1", 16, 64, 4);
        assert_eq!(s.group_size(), 1);
        // Huge block: many nodes per group (capped at V).
        let (s2, _t2) = make("g2", 16, 1 << 22, 4);
        assert_eq!(s2.group_size(), 16);
    }

    #[test]
    fn fresh_store_is_all_zero_sketches() {
        let (s, _t) = make("zero", 8, 4096, 2);
        for snap in s.snapshot() {
            assert_eq!(snap.unwrap().sample_round(0), SampleResult::Zero);
        }
    }

    #[test]
    fn updates_survive_eviction() {
        // Cache of 1 group, several groups: every new group faults the old
        // one out, exercising write-back.
        let (s, _t) = make("evict", 16, 64, 1);
        assert_eq!(s.group_size(), 1, "want many groups");
        for node in 0..16u32 {
            let other = (node + 1) % 16;
            if other != node {
                s.apply_batch(node, &[encode_other(other, false)]);
            }
        }
        let io_before = s.io_stats().total_ops();
        assert!(io_before > 16, "evictions must generate traffic");
        let snap = s.snapshot();
        for node in 0..16u32 {
            let other = (node + 1) % 16;
            let got = snap[node as usize].as_ref().unwrap().sample_round(0);
            assert_eq!(got, SampleResult::Index(update_index(node, other, 16)), "node {node}");
        }
    }

    #[test]
    fn toggle_cancels_across_evictions() {
        let (s, _t) = make("toggle", 8, 64, 1);
        s.apply_batch(0, &[encode_other(5, false)]);
        // Touch other groups to force eviction of group 0.
        for node in 1..8u32 {
            s.apply_batch(node, &[encode_other(0, false)]);
        }
        s.apply_batch(0, &[encode_other(5, true)]);
        // Edge (0,5) toggled twice -> gone; but (other,0) edges remain in 0's
        // vector? No: batches only update the *destination* node's sketch.
        let snap = s.snapshot();
        assert_eq!(snap[0].as_ref().unwrap().sample_round(0), SampleResult::Zero);
    }

    #[test]
    fn warm_cache_avoids_io() {
        let (s, _t) = make("warm", 8, 1 << 20, 8); // everything fits in one group + cache
        s.apply_batch(0, &[encode_other(1, false)]);
        let ops_after_first = s.io_stats().total_ops();
        for _ in 0..50 {
            s.apply_batch(0, &[encode_other(2, false), encode_other(2, true)]);
        }
        assert_eq!(
            s.io_stats().total_ops(),
            ops_after_first,
            "warm-cache batches must not touch disk"
        );
    }

    #[test]
    fn strided_store_covers_owned_slots_only() {
        let params = Arc::new(SketchParams::new(20, 3, 7, 7));
        let per_node = params.node_sketch_bytes();
        let path = tmp("strided");
        let shard = DiskStore::for_nodes(
            Arc::clone(&params),
            NodeSet::strided(20, 2, 4),
            path.to_path_buf(),
            256,
            2,
        )
        .unwrap();
        // Shard 2 of 4 over 20 nodes owns {2, 6, 10, 14, 18}.
        assert_eq!(shard.sketch_bytes(), per_node * 5);
        shard.apply_batch(6, &[encode_other(1, false)]);
        let owned = shard.snapshot_owned();
        assert_eq!(owned.iter().map(|(n, _)| *n).collect::<Vec<u32>>(), vec![2, 6, 10, 14, 18]);
        let (_, sketch) = owned.into_iter().find(|(n, _)| *n == 6).unwrap();
        assert_eq!(sketch.sample_round(0), SampleResult::Index(update_index(6, 1, 20)));
    }

    #[test]
    fn round_slice_is_the_contiguous_column_of_the_group() {
        // Raw-file check of the round-major layout: the bytes that
        // read_round_slice returns must be exactly the round-r serialization
        // of each node in the group, in slot order.
        let (s, _t) = make("layout", 12, 1 << 20, 4); // one group of 12
        assert_eq!(s.num_groups(), 1);
        for node in 0..12u32 {
            s.apply_batch(node, &[encode_other((node + 3) % 12, false)]);
        }
        s.flush().unwrap();
        let snap = s.snapshot();
        for round in 0..s.params().rounds() {
            let slice = s.read_round_slice(0, round).unwrap();
            let rb = s.params().round_serialized_bytes(round);
            let mut expected = Vec::new();
            for sk in snap.iter() {
                s.params().serialize_round(sk.as_ref().unwrap(), round, &mut expected);
            }
            assert_eq!(slice.len(), 12 * rb);
            assert_eq!(slice, expected, "round {round}");
        }
    }

    #[test]
    fn stream_round_matches_snapshot_and_counts_reads() {
        let (s, _t) = make("stream", 16, 64, 2); // one node per group, tiny cache
        assert_eq!(s.num_groups(), 16);
        for node in 0..16u32 {
            s.apply_batch(node, &[encode_other((node + 1) % 16, false)]);
        }
        let snap = s.snapshot();
        for round in 0..s.params().rounds() {
            let before = s.io_stats().reads();
            let mut seen = Vec::new();
            s.stream_round(round, &|_| true, &mut |node, sketch| {
                let reference = snap[node as usize].as_ref().unwrap().round(round);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                sketch.serialize_into(&mut a);
                reference.serialize_into(&mut b);
                assert_eq!(a, b, "node {node} round {round}");
                seen.push(node);
            })
            .unwrap();
            seen.sort_unstable();
            assert_eq!(seen, (0..16u32).collect::<Vec<_>>());
            // One slice read per group, at most (flush writes are separate).
            assert!(s.io_stats().reads() - before <= 16, "round {round}");
        }
    }

    #[test]
    fn parallel_stream_matches_serial_and_counts_reads_exactly() {
        use crate::boruvka::RoundSink;
        use gz_gutters::WorkerPool;
        use parking_lot::Mutex;

        let (s, _t) = make("par", 16, 64, 2); // one node per group
        assert_eq!(s.num_groups(), 16);
        for node in 0..16u32 {
            s.apply_batch(node, &[encode_other((node + 5) % 16, false)]);
        }
        s.flush().unwrap();
        let snap = s.snapshot();
        let pool = WorkerPool::new(4);
        let root_of: Vec<u32> = (0..16).collect(); // every node its own supernode
        let retired = vec![false; 16];

        for round in 0..s.params().rounds() {
            let sinks: Vec<Mutex<RoundSink<'_, CubeRoundSketch>>> =
                (0..4).map(|_| Mutex::new(RoundSink::new(&root_of, &retired))).collect();
            let (reads_before, _, bytes_before, _) = s.io_stats().snapshot();
            s.stream_round_parallel(round, &|_| true, &pool, &sinks).unwrap();
            let (reads, _, bytes_read, _) = s.io_stats().snapshot();

            // Four concurrent readers over 16 groups: exactly one read of
            // exactly the slice's bytes per group — the per-worker local
            // IoStats merge must neither drop nor double-count.
            assert_eq!(reads - reads_before, 16, "round {round}");
            assert_eq!(
                bytes_read - bytes_before,
                16 * s.params().round_serialized_bytes(round) as u64,
                "round {round}"
            );

            // Each node is its own root, so its accumulator must be
            // bit-identical to its snapshot round slice, whichever worker
            // folded it.
            let mut acc: Vec<Option<CubeRoundSketch>> = (0..16).map(|_| None).collect();
            for sink in sinks {
                for (node, folded) in sink.into_inner().accumulators().into_iter().enumerate() {
                    if let Some(folded) = folded {
                        assert!(acc[node].replace(folded).is_none(), "node {node} folded twice");
                    }
                }
            }
            for node in 0..16usize {
                let (mut got, mut want) = (Vec::new(), Vec::new());
                acc[node].as_ref().expect("every node folded").serialize_into(&mut got);
                snap[node].as_ref().unwrap().round(round).serialize_into(&mut want);
                assert_eq!(got, want, "node {node} round {round}");
            }
        }
    }

    #[test]
    fn parallel_stream_skips_fully_retired_groups() {
        use crate::boruvka::RoundSink;
        use gz_gutters::WorkerPool;
        use parking_lot::Mutex;

        let (s, _t) = make("par-skip", 16, 64, 2); // one node per group
        s.flush().unwrap();
        let pool = WorkerPool::new(3);
        let root_of: Vec<u32> = (0..16).collect();
        let retired = vec![false; 16];
        let sinks: Vec<Mutex<RoundSink<'_, CubeRoundSketch>>> =
            (0..3).map(|_| Mutex::new(RoundSink::new(&root_of, &retired))).collect();
        let before = s.io_stats().reads();
        s.stream_round_parallel(0, &|n| n == 3 || n == 9, &pool, &sinks).unwrap();
        assert_eq!(s.io_stats().reads() - before, 2, "only live groups may be read");
    }

    #[test]
    fn stream_round_skips_fully_retired_groups() {
        let (s, _t) = make("skip", 16, 64, 2); // one node per group
        s.flush().unwrap();
        let before = s.io_stats().reads();
        let mut seen = Vec::new();
        // Only nodes 3 and 9 are live: exactly two group reads may happen.
        s.stream_round(0, &|n| n == 3 || n == 9, &mut |node, _| seen.push(node)).unwrap();
        assert_eq!(seen, vec![3, 9]);
        assert_eq!(s.io_stats().reads() - before, 2);
    }

    #[test]
    fn matches_ram_store_results() {
        use crate::config::LockingStrategy;
        use crate::store::ram::RamStore;
        let params = Arc::new(SketchParams::new(24, 3, 7, 123));
        let ram = RamStore::new(Arc::clone(&params), LockingStrategy::Direct);
        let vs_ram = tmp("vs_ram");
        let disk = DiskStore::new(Arc::clone(&params), vs_ram.to_path_buf(), 256, 2).unwrap();
        let updates: Vec<(u32, u32)> = (0..60).map(|i| (i % 24, (i * 7 + 1) % 24)).collect();
        for &(a, b) in &updates {
            if a == b {
                continue;
            }
            ram.apply_batch(a, &[encode_other(b, false)]);
            disk.apply_batch(a, &[encode_other(b, false)]);
        }
        let (sr, sd) = (ram.snapshot(), disk.snapshot());
        for (node, (r, d)) in sr.iter().zip(sd.iter()).enumerate() {
            let (r, d) = (r.as_ref().unwrap(), d.as_ref().unwrap());
            for round in 0..r.num_rounds() {
                assert_eq!(
                    r.sample_round(round),
                    d.sample_round(round),
                    "node {node} round {round}"
                );
            }
        }
    }

    fn make_hybrid(
        name: &str,
        num_nodes: u64,
        block_bytes: usize,
        cache: usize,
        threshold: u32,
    ) -> (DiskStore, gz_testutil::TempPath) {
        let params = Arc::new(SketchParams::new(num_nodes, 3, 7, 7));
        let path = tmp(name);
        let store = DiskStore::for_nodes_with_threshold(
            params,
            NodeSet::all(num_nodes),
            path.to_path_buf(),
            block_bytes,
            cache,
            threshold,
        )
        .unwrap();
        (store, path)
    }

    #[test]
    fn sparse_nodes_generate_no_io() {
        // Below τ every batch is a pure toggle-set mutation: no group ever
        // faults, the file is never touched.
        let (s, _t) = make_hybrid("sparse-noio", 16, 64, 1, 8);
        for node in 0..16u32 {
            s.apply_batch(node, &[encode_other((node + 1) % 16, false)]);
            s.apply_batch(node, &[encode_other((node + 2) % 16, false)]);
        }
        assert_eq!(s.io_stats().total_ops(), 0, "sparse ingestion must be I/O-free");
        let stats = s.rep_stats();
        assert_eq!(stats.sparse, 16);
        assert_eq!(stats.promoted, 0);
        assert_eq!(stats.sparse_entries, 32);
        assert_eq!(s.io_stats().sparse_promotions(), 0);
    }

    #[test]
    fn hybrid_snapshot_matches_dense_bitwise_with_promotion() {
        // Same toggle stream into a τ=3 hybrid store and a τ=0 dense store,
        // with a cache of 1 forcing evictions; node 0 crosses τ mid-stream
        // (insert/delete churn included), the rest stay sparse. Snapshots
        // must be bit-identical.
        let (hybrid, _t1) = make_hybrid("hyb-vs-dense", 12, 64, 1, 3);
        let (dense, _t2) = make("hyb-oracle", 12, 64, 1);
        let stream: Vec<(u32, u32, bool)> = vec![
            (0, 3, false),
            (0, 5, false),
            (1, 2, false),
            (0, 5, true),
            (0, 7, false),
            (0, 5, false),
            (0, 9, false), // node 0 now has 4 live neighbors > τ=3: promoted
            (0, 11, false),
            (2, 6, false),
            (0, 3, true),
        ];
        for &(a, b, del) in &stream {
            hybrid.apply_batch(a, &[encode_other(b, del)]);
            dense.apply_batch(a, &[encode_other(b, del)]);
        }
        assert_eq!(hybrid.io_stats().sparse_promotions(), 1);
        let stats = hybrid.rep_stats();
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.sparse, 11);
        let (sh, sd) = (hybrid.snapshot(), dense.snapshot());
        for (slot, (h, d)) in sh.iter().zip(sd.iter()).enumerate() {
            crate::node_sketch::assert_rounds_bitwise_equal(
                h.as_ref().unwrap(),
                d.as_ref().unwrap(),
                &format!("slot {slot}"),
            );
        }
    }

    #[test]
    fn stream_round_reads_only_promoted_groups() {
        // One node per group; only node 4 crosses τ. The dense round stream
        // must emit node 4 alone and read exactly its group.
        let (s, _t) = make_hybrid("stream-promoted", 16, 64, 2, 2);
        for other in [1u32, 2, 3] {
            s.apply_batch(4, &[encode_other(other, false)]);
        }
        s.apply_batch(7, &[encode_other(1, false)]); // stays sparse
        assert_eq!(s.io_stats().sparse_promotions(), 1);
        let before = s.io_stats().reads();
        let mut seen = Vec::new();
        s.stream_round(0, &|_| true, &mut |node, _| seen.push(node)).unwrap();
        assert_eq!(seen, vec![4], "sparse slots must not be emitted by the dense stream");
        assert_eq!(s.io_stats().reads() - before, 1, "all-sparse groups must not be read");
        // The dispatch layer serves sparse nodes; check the raw sets here.
        let sets = s.sparse_sets(&|_| true);
        assert!(sets.iter().any(|(n, set)| *n == 7 && set.neighbors() == [1]));
        assert!(!sets.iter().any(|(n, _)| *n == 4), "promoted node must leave the table");
    }

    fn make_io(
        name: &str,
        num_nodes: u64,
        block_bytes: usize,
        cache: usize,
        io: IoBackendConfig,
    ) -> (DiskStore, gz_testutil::TempPath) {
        let params = Arc::new(SketchParams::new(num_nodes, 3, 7, 7));
        let path = tmp(name);
        let store = DiskStore::for_nodes_with_options(
            params,
            NodeSet::all(num_nodes),
            path.to_path_buf(),
            block_bytes,
            cache,
            0,
            io,
        )
        .unwrap();
        (store, path)
    }

    fn pread_config() -> IoBackendConfig {
        IoBackendConfig {
            kind: crate::store::io_backend::IoBackendKind::Pread,
            ..Default::default()
        }
    }

    #[test]
    fn flush_coalesces_adjacent_dirty_groups() {
        // One node per group, cache big enough that nothing evicts: after
        // touching nodes 0..8, eight adjacent groups are dirty and flush
        // must write them back as ONE contiguous write — strictly fewer
        // write ops than the eight per-group writes of the uncoalesced
        // path.
        let (s, _t) = make_io("coalesce", 16, 64, 16, pread_config());
        assert_eq!(s.group_size(), 1);
        for node in 0..8u32 {
            s.apply_batch(node, &[encode_other(node + 8, false)]);
        }
        let node_bytes = s.params().node_sketch_serialized_bytes() as u64;
        let (_, writes_before, _, bytes_before) = s.io_stats().snapshot();
        s.flush().unwrap();
        let (_, writes, _, bytes_written) = s.io_stats().snapshot();
        assert_eq!(writes - writes_before, 1, "8 adjacent dirty groups must coalesce to 1 write");
        assert!(writes - writes_before < 8, "coalescing must reduce the write count");
        assert_eq!(bytes_written - bytes_before, 8 * node_bytes, "payload is exact");

        // Non-adjacent dirty groups (0, 2, 4) cannot coalesce: three runs.
        for node in [0u32, 2, 4] {
            s.apply_batch(node, &[encode_other(node + 1, false)]);
        }
        let (_, writes_before, _, _) = s.io_stats().snapshot();
        s.flush().unwrap();
        let (_, writes, _, _) = s.io_stats().snapshot();
        assert_eq!(writes - writes_before, 3, "gaps break runs");

        // Nothing dirty: flush must be free.
        let (_, writes_before, _, _) = s.io_stats().snapshot();
        s.flush().unwrap();
        assert_eq!(s.io_stats().writes(), writes_before);
    }

    #[test]
    fn epoch_seal_writeback_coalesces_too() {
        let (s, _t) = make_io("epoch-coalesce", 12, 64, 16, pread_config());
        assert_eq!(s.group_size(), 1);
        for node in 4..9u32 {
            s.apply_batch(node, &[encode_other(1, false)]);
        }
        let (_, writes_before, _, _) = s.io_stats().snapshot();
        let _epoch = s.begin_epoch().unwrap();
        let (_, writes, _, _) = s.io_stats().snapshot();
        assert_eq!(writes - writes_before, 1, "seal write-back of groups 4..9 is one run");
    }

    #[test]
    fn uring_store_matches_pread_bitwise() {
        use crate::boruvka::RoundSink;
        use crate::store::uring::uring_available;
        use gz_gutters::WorkerPool;

        if !uring_available() {
            eprintln!("skipping: io_uring unavailable on this host");
            return;
        }
        let uring_config = IoBackendConfig {
            kind: crate::store::io_backend::IoBackendKind::Uring,
            queue_depth: 4,
            direct: false,
        };
        let (a, _t1) = make_io("eq-pread", 24, 64, 2, pread_config());
        let (b, _t2) = make_io("eq-uring", 24, 64, 2, uring_config);
        assert_eq!(b.io_backend_name(), "uring");
        for i in 0..80u32 {
            let (x, y) = (i % 24, (i * 7 + 1) % 24);
            if x == y {
                continue;
            }
            a.apply_batch(x, &[encode_other(y, false)]);
            b.apply_batch(x, &[encode_other(y, false)]);
        }

        // Serial stream: same slices, and the same exact logical read
        // counts, whatever order uring completes in.
        for round in 0..a.params().rounds() {
            let (ar, _, ab, _) = a.io_stats().snapshot();
            let (br, _, bb, _) = b.io_stats().snapshot();
            let mut got_a: Vec<(u32, Vec<u8>)> = Vec::new();
            let mut got_b: Vec<(u32, Vec<u8>)> = Vec::new();
            a.stream_round(round, &|_| true, &mut |n, s| {
                let mut bytes = Vec::new();
                s.serialize_into(&mut bytes);
                got_a.push((n, bytes));
            })
            .unwrap();
            b.stream_round(round, &|_| true, &mut |n, s| {
                let mut bytes = Vec::new();
                s.serialize_into(&mut bytes);
                got_b.push((n, bytes));
            })
            .unwrap();
            got_a.sort();
            got_b.sort();
            assert_eq!(got_a, got_b, "round {round}");
            let (ar2, _, ab2, _) = a.io_stats().snapshot();
            let (br2, _, bb2, _) = b.io_stats().snapshot();
            assert_eq!(ar2 - ar, br2 - br, "logical read counts agree (round {round})");
            assert_eq!(ab2 - ab, bb2 - bb, "logical read bytes agree (round {round})");
        }

        // Parallel stream on the uring store folds bit-identically to the
        // pread snapshot, across out-of-order windowed completions.
        let snap = a.snapshot();
        let pool = WorkerPool::new(4);
        let root_of: Vec<u32> = (0..24).collect();
        let retired = vec![false; 24];
        for round in 0..b.params().rounds() {
            let sinks: Vec<Mutex<RoundSink<'_, CubeRoundSketch>>> =
                (0..4).map(|_| Mutex::new(RoundSink::new(&root_of, &retired))).collect();
            b.stream_round_parallel(round, &|_| true, &pool, &sinks).unwrap();
            let mut acc: Vec<Option<CubeRoundSketch>> = (0..24).map(|_| None).collect();
            for sink in sinks {
                for (node, folded) in sink.into_inner().accumulators().into_iter().enumerate() {
                    if let Some(folded) = folded {
                        assert!(acc[node].replace(folded).is_none(), "node {node} folded twice");
                    }
                }
            }
            for node in 0..24usize {
                let (mut got, mut want) = (Vec::new(), Vec::new());
                acc[node].as_ref().expect("every node folded").serialize_into(&mut got);
                snap[node].as_ref().unwrap().round(round).serialize_into(&mut want);
                assert_eq!(got, want, "node {node} round {round}");
            }
        }
        assert!(b.io_stats().submissions() > 0);
        assert!(
            b.io_stats().completions() >= b.io_stats().reads(),
            "every logical read rode a completion"
        );
    }

    #[test]
    fn direct_mode_matches_buffered() {
        // O_DIRECT is best-effort (tmpfs refuses it); whatever the open
        // resolves to, results must be bit-identical to the buffered store.
        let direct_config = IoBackendConfig { direct: true, ..pread_config() };
        let (d, _t1) = make_io("direct", 16, 64, 2, direct_config);
        let (o, _t2) = make_io("direct-oracle", 16, 64, 2, pread_config());
        if !d.io_backend_name().ends_with("+direct") {
            eprintln!("note: O_DIRECT unavailable on temp filesystem, exercising fallback");
        }
        for node in 0..16u32 {
            d.apply_batch(node, &[encode_other((node + 3) % 16, false)]);
            o.apply_batch(node, &[encode_other((node + 3) % 16, false)]);
        }
        let (sd, so) = (d.snapshot(), o.snapshot());
        for (slot, (x, y)) in sd.iter().zip(so.iter()).enumerate() {
            crate::node_sketch::assert_rounds_bitwise_equal(
                x.as_ref().unwrap(),
                y.as_ref().unwrap(),
                &format!("slot {slot}"),
            );
        }
        let mut got = Vec::new();
        d.stream_round(0, &|_| true, &mut |n, _| got.push(n)).unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..16u32).collect::<Vec<_>>());
    }

    #[test]
    fn load_all_retires_sparse_slots() {
        let (s, _t) = make_hybrid("load-retire", 8, 1 << 20, 4, 4);
        s.apply_batch(0, &[encode_other(3, false)]);
        let replacement = s.snapshot().into_iter().map(Option::unwrap).collect::<Vec<_>>();
        s.load_all(replacement);
        let stats = s.rep_stats();
        assert_eq!(stats.sparse, 0, "restore must leave every slot dense");
        assert_eq!(
            s.snapshot()[0].as_ref().unwrap().sample_round(0),
            SampleResult::Index(update_index(0, 3, 8))
        );
    }
}
