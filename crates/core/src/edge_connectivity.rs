//! Sketch-based k-edge-connectivity certificates — the "edge- or
//! vertex-connectivity" application the paper names for CubeSketch (§3.1),
//! after Ahn–Guha–McGregor's k-forest construction.
//!
//! Maintain `k` independent copies of the connectivity sketch (layers).
//! After the stream, *peel* forests: `F₁` is a spanning forest recovered
//! from layer 1; delete `F₁`'s edges from layer 2 (sketch linearity makes
//! deletion a toggle) and recover `F₂`, a spanning forest of `G − F₁`; and
//! so on. The union `H = F₁ ∪ … ∪ F_k` is a *sparse certificate*: AGM's
//! theorem states every cut of size `≤ k` in `G` has the same size in `H`,
//! so in particular
//!
//! > `G` is k-edge-connected  ⇔  `H` is k-edge-connected,
//!
//! and `H` has at most `k·(V−1)` edges, small enough to check exactly.
//! Total space is `k·V·polylog(V)` — still sublinear in the graph.

use crate::boruvka::boruvka_spanning_forest;
use crate::config::default_rounds;
use crate::error::GzError;
use crate::node_sketch::{update_index, CubeNodeSketch, SketchParams};
use gz_graph::bridges::is_two_edge_connected;
use gz_graph::{AdjacencyList, Edge};
use gz_hash::SplitMix64;
use std::sync::Arc;

/// Streaming k-edge-connectivity sketcher: `k` independent sketch layers.
pub struct KForestSketcher {
    num_nodes: u64,
    layers: Vec<Layer>,
    updates: u64,
}

struct Layer {
    params: Arc<SketchParams>,
    sketches: Vec<CubeNodeSketch>,
}

/// The peeled certificate: `k` edge-disjoint forests.
#[derive(Debug, Clone)]
pub struct ForestCertificate {
    /// Vertex universe size.
    pub num_nodes: u64,
    /// `forests[i]` is a spanning forest of `G − (forests[0] ∪ … ∪ forests[i−1])`.
    pub forests: Vec<Vec<Edge>>,
}

impl ForestCertificate {
    /// All certificate edges (the sparse subgraph `H`).
    pub fn union_edges(&self) -> Vec<Edge> {
        let mut all: Vec<Edge> = self.forests.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The certificate as a graph.
    pub fn as_graph(&self) -> AdjacencyList {
        AdjacencyList::from_edges(
            self.num_nodes as usize,
            self.union_edges().iter().map(|e| (e.u(), e.v())),
        )
    }

    /// Exact 2-edge-connectivity of the certificate — by AGM's theorem,
    /// equal to the input graph's 2-edge-connectivity when `k ≥ 2`.
    pub fn is_two_edge_connected(&self) -> bool {
        assert!(self.forests.len() >= 2, "need k ≥ 2 layers for a 2-connectivity answer");
        is_two_edge_connected(&self.as_graph())
    }
}

impl KForestSketcher {
    /// Build a sketcher with `k` layers for up to `num_nodes` vertices.
    pub fn new(num_nodes: u64, k: usize, seed: u64) -> Result<Self, GzError> {
        if num_nodes < 2 {
            return Err(GzError::InvalidConfig("need at least 2 nodes".into()));
        }
        if k == 0 {
            return Err(GzError::InvalidConfig("need at least one forest layer".into()));
        }
        let rounds = default_rounds(num_nodes);
        let layers = (0..k as u64)
            .map(|i| {
                let params =
                    Arc::new(SketchParams::new(num_nodes, rounds, 7, SplitMix64::derive(seed, i)));
                let sketches = (0..num_nodes).map(|_| params.new_node_sketch()).collect();
                Layer { params, sketches }
            })
            .collect();
        Ok(KForestSketcher { num_nodes, layers, updates: 0 })
    }

    /// Number of layers `k`.
    pub fn k(&self) -> usize {
        self.layers.len()
    }

    /// Apply one stream update to every layer.
    pub fn update(&mut self, u: u32, v: u32, is_delete: bool) {
        assert!(u != v, "self-loop");
        assert!((u as u64) < self.num_nodes && (v as u64) < self.num_nodes);
        let _ = is_delete; // Z_2: toggle either way
        let idx = update_index(u, v, self.num_nodes);
        for layer in &mut self.layers {
            layer.sketches[u as usize].update_signed(idx, 1);
            layer.sketches[v as usize].update_signed(idx, 1);
        }
        self.updates += 1;
    }

    /// Insert an edge.
    pub fn insert(&mut self, u: u32, v: u32) {
        self.update(u, v, false);
    }

    /// Delete an edge.
    pub fn delete(&mut self, u: u32, v: u32) {
        self.update(u, v, true);
    }

    /// Peel the k forests (non-destructive: clones each layer).
    pub fn certificate(&self) -> Result<ForestCertificate, GzError> {
        let mut removed: Vec<Edge> = Vec::new();
        let mut forests = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            // Clone this layer's sketches and subtract everything already
            // peeled (linearity: deletion = toggle).
            let mut sketches: Vec<Option<CubeNodeSketch>> =
                layer.sketches.iter().map(|s| Some(s.clone())).collect();
            for e in &removed {
                let idx = update_index(e.u(), e.v(), self.num_nodes);
                sketches[e.u() as usize].as_mut().unwrap().update_signed(idx, 1);
                sketches[e.v() as usize].as_mut().unwrap().update_signed(idx, 1);
            }
            let outcome = boruvka_spanning_forest(sketches, self.num_nodes, layer.params.rounds())?;
            removed.extend(outcome.forest.iter().copied());
            forests.push(outcome.forest);
        }
        Ok(ForestCertificate { num_nodes: self.num_nodes, forests })
    }

    /// Is the graph 2-edge-connected? (Requires `k ≥ 2`.)
    pub fn is_two_edge_connected(&self) -> Result<bool, GzError> {
        Ok(self.certificate()?.is_two_edge_connected())
    }

    /// Total sketch bytes across layers (`k ×` the connectivity structure).
    pub fn sketch_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.params.node_sketch_bytes() * l.sketches.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_dsu::Dsu;

    fn sketcher_with(num_nodes: u64, k: usize, edges: &[(u32, u32)]) -> KForestSketcher {
        let mut s = KForestSketcher::new(num_nodes, k, 31).unwrap();
        for &(a, b) in edges {
            s.insert(a, b);
        }
        s
    }

    /// Structural invariants of a peeled certificate.
    fn check_certificate(cert: &ForestCertificate, graph_edges: &[(u32, u32)]) {
        let g = AdjacencyList::from_edges(cert.num_nodes as usize, graph_edges.iter().copied());
        let mut peeled = AdjacencyList::new(cert.num_nodes as usize);
        let mut remaining = g.clone();
        for forest in &cert.forests {
            // Each forest: acyclic, edges exist in the remaining graph, and
            // it spans the remaining graph's components.
            let mut dsu = Dsu::new(cert.num_nodes as usize);
            for &e in forest {
                assert!(remaining.contains(e), "{e} not in remaining graph");
                assert!(!peeled.contains(e), "{e} peeled twice");
                assert!(dsu.union(e.u(), e.v()), "cycle in forest");
            }
            assert_eq!(
                dsu.normalized_labels(),
                gz_graph::connected_components_dsu(&remaining),
                "forest does not span the remaining graph"
            );
            for &e in forest {
                remaining.remove(e);
                peeled.insert(e);
            }
        }
    }

    #[test]
    fn cycle_peels_into_tree_plus_closing_edge() {
        let n = 8u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let s = sketcher_with(n as u64, 2, &edges);
        let cert = s.certificate().unwrap();
        check_certificate(&cert, &edges);
        assert_eq!(cert.forests[0].len(), 7, "spanning tree of the cycle");
        assert_eq!(cert.forests[1].len(), 1, "the closing edge");
        assert!(cert.is_two_edge_connected());
    }

    #[test]
    fn path_is_not_two_edge_connected() {
        let edges: Vec<(u32, u32)> = (0..7u32).map(|i| (i, i + 1)).collect();
        let s = sketcher_with(8, 2, &edges);
        assert!(!s.is_two_edge_connected().unwrap());
    }

    #[test]
    fn complete_graph_is_two_edge_connected() {
        let n = 7u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        let s = sketcher_with(n as u64, 2, &edges);
        let cert = s.certificate().unwrap();
        check_certificate(&cert, &edges);
        assert!(cert.is_two_edge_connected());
        // Certificate is sparse: ≤ k(V−1) edges even though G is dense.
        assert!(cert.union_edges().len() <= 2 * (n as usize - 1));
    }

    #[test]
    fn deletions_affect_connectivity_verdict() {
        let n = 6u32;
        let cycle: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let mut s = sketcher_with(n as u64, 2, &cycle);
        assert!(s.is_two_edge_connected().unwrap());
        s.delete(0, 1); // now a path
        assert!(!s.is_two_edge_connected().unwrap());
    }

    #[test]
    fn matches_exact_two_edge_connectivity_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 14u32;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen::<f64>() < 0.3 {
                        edges.push((a, b));
                    }
                }
            }
            let s = sketcher_with(n as u64, 2, &edges);
            let cert = s.certificate().unwrap();
            check_certificate(&cert, &edges);
            let g = AdjacencyList::from_edges(n as usize, edges.iter().copied());
            assert_eq!(cert.is_two_edge_connected(), is_two_edge_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn three_layers_peel_disjoint_forests() {
        let n = 10u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if (a + 2 * b) % 3 != 0 {
                    edges.push((a, b));
                }
            }
        }
        let s = sketcher_with(n as u64, 3, &edges);
        let cert = s.certificate().unwrap();
        check_certificate(&cert, &edges);
        assert_eq!(cert.forests.len(), 3);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(KForestSketcher::new(1, 2, 0).is_err());
        assert!(KForestSketcher::new(8, 0, 0).is_err());
    }
}
