//! Streaming bipartiteness testing — one of the further sketch applications
//! the paper names for CubeSketch (§3.1: "CubeSketch may be useful for other
//! sketching algorithms for problems such as … testing bipartiteness").
//!
//! The classic reduction (Ahn–Guha–McGregor): build the **bipartite double
//! cover** `G̃` of `G` — vertices `{v, v'} `, each edge `(u,v)` becoming
//! `(u, v')` and `(u', v)`. A connected component of `G` lifts to *two*
//! components of `G̃` exactly when it is bipartite, and to *one* (the cover
//! is connected) when it contains an odd cycle. So:
//!
//! > `G` is bipartite  ⇔  cc(G̃) = 2 · cc(G).
//!
//! Everything needed is connected components on an insert/delete stream —
//! precisely what GraphZeppelin provides — so the tester runs two systems:
//! one on `G`, one on `G̃` (2V vertices, 2 updates per stream update), for
//! `O(V log³V)` total space.

use crate::config::GzConfig;
use crate::error::GzError;
use crate::system::GraphZeppelin;

/// Streaming bipartiteness tester over edge insertions and deletions.
pub struct BipartitenessTester {
    /// System on the input graph `G`.
    plain: GraphZeppelin,
    /// System on the double cover `G̃` (vertex `v'` is `v + num_nodes`).
    cover: GraphZeppelin,
    num_nodes: u64,
}

/// Answer of a bipartiteness query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartitenessAnswer {
    /// Whether the whole graph is bipartite.
    pub bipartite: bool,
    /// Components of `G` (labels normalized to minimum member).
    pub component_labels: Vec<u32>,
    /// Labels (component representatives in `G`) of components that contain
    /// an odd cycle. Empty iff `bipartite`.
    pub odd_components: Vec<u32>,
}

impl BipartitenessTester {
    /// Build a tester for graphs on up to `num_nodes` vertices.
    pub fn new(num_nodes: u64, seed: u64) -> Result<Self, GzError> {
        let mut plain_config = GzConfig::in_ram(num_nodes);
        plain_config.seed = seed;
        plain_config.num_workers = 2;
        let mut cover_config = GzConfig::in_ram(num_nodes * 2);
        cover_config.seed = seed ^ 0xD0B1_E007;
        cover_config.num_workers = 2;
        Ok(BipartitenessTester {
            plain: GraphZeppelin::new(plain_config)?,
            cover: GraphZeppelin::new(cover_config)?,
            num_nodes,
        })
    }

    /// Apply one stream update to both systems.
    pub fn update(&mut self, u: u32, v: u32, is_delete: bool) {
        assert!(u != v, "self-loop");
        assert!((u as u64) < self.num_nodes && (v as u64) < self.num_nodes);
        let shift = self.num_nodes as u32;
        self.plain.update(u, v, is_delete);
        // Double cover: (u, v') and (u', v).
        self.cover.update(u, v + shift, is_delete);
        self.cover.update(u + shift, v, is_delete);
    }

    /// Insert an edge.
    pub fn insert(&mut self, u: u32, v: u32) {
        self.update(u, v, false);
    }

    /// Delete an edge.
    pub fn delete(&mut self, u: u32, v: u32) {
        self.update(u, v, true);
    }

    /// Query: is the current graph bipartite, and which components are odd?
    pub fn query(&mut self) -> Result<BipartitenessAnswer, GzError> {
        let plain_cc = self.plain.connected_components()?;
        let cover_cc = self.cover.connected_components()?;
        let shift = self.num_nodes as u32;

        // Component C of G is odd iff v and v' are connected in the cover
        // for (any, hence every) v ∈ C.
        let labels = plain_cc.labels().to_vec();
        let mut odd_components: Vec<u32> = labels
            .iter()
            .enumerate()
            .filter(|&(v, &l)| {
                // Check once per component, at its representative.
                l == v as u32 && cover_cc.same_component(v as u32, v as u32 + shift)
            })
            .map(|(_, &l)| l)
            .collect();
        odd_components.sort_unstable();
        odd_components.dedup();

        Ok(BipartitenessAnswer {
            bipartite: odd_components.is_empty(),
            component_labels: labels,
            odd_components,
        })
    }

    /// Number of updates ingested.
    pub fn updates_ingested(&self) -> u64 {
        self.plain.updates_ingested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tester(n: u64) -> BipartitenessTester {
        BipartitenessTester::new(n, 11).unwrap()
    }

    #[test]
    fn empty_graph_is_bipartite() {
        let mut t = tester(8);
        let a = t.query().unwrap();
        assert!(a.bipartite);
        assert!(a.odd_components.is_empty());
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let mut t = tester(8);
        for i in 0..6u32 {
            t.insert(i, (i + 1) % 6);
        }
        assert!(t.query().unwrap().bipartite);
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let mut t = tester(8);
        for i in 0..5u32 {
            t.insert(i, (i + 1) % 5);
        }
        let a = t.query().unwrap();
        assert!(!a.bipartite);
        assert_eq!(a.odd_components, vec![0], "the 5-cycle's component is odd");
    }

    #[test]
    fn deletion_restores_bipartiteness() {
        let mut t = tester(8);
        // Odd cycle 0-1-2-0.
        t.insert(0, 1);
        t.insert(1, 2);
        t.insert(2, 0);
        assert!(!t.query().unwrap().bipartite);
        // Break the triangle.
        t.delete(2, 0);
        assert!(t.query().unwrap().bipartite);
    }

    #[test]
    fn mixed_components_identified() {
        let mut t = tester(16);
        // Component A: square (bipartite). Component B: triangle (odd).
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            t.insert(a, b);
        }
        for &(a, b) in &[(8u32, 9u32), (9, 10), (10, 8)] {
            t.insert(a, b);
        }
        let ans = t.query().unwrap();
        assert!(!ans.bipartite);
        assert_eq!(ans.odd_components, vec![8]);
    }

    #[test]
    fn matches_two_coloring_oracle_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        /// Exact bipartiteness by BFS 2-coloring.
        fn oracle(n: usize, edges: &std::collections::HashSet<(u32, u32)>) -> bool {
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in edges {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
            let mut color = vec![-1i8; n];
            for s in 0..n {
                if color[s] != -1 {
                    continue;
                }
                color[s] = 0;
                let mut queue = std::collections::VecDeque::from([s as u32]);
                while let Some(x) = queue.pop_front() {
                    for &y in &adj[x as usize] {
                        if color[y as usize] == -1 {
                            color[y as usize] = 1 - color[x as usize];
                            queue.push_back(y);
                        } else if color[y as usize] == color[x as usize] {
                            return false;
                        }
                    }
                }
            }
            true
        }

        let n = 24u32;
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut t = BipartitenessTester::new(n as u64, seed).unwrap();
            let mut edges = std::collections::HashSet::new();
            for _ in 0..40 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if edges.contains(&key) {
                    edges.remove(&key);
                    t.delete(a, b);
                } else {
                    edges.insert(key);
                    t.insert(a, b);
                }
            }
            let ans = t.query().unwrap();
            assert_eq!(ans.bipartite, oracle(n as usize, &edges), "seed {seed}");
        }
    }
}
