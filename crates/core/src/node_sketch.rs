//! Per-vertex sketch stacks.
//!
//! A *node sketch* (paper §2.2) is `O(log V)` independent ℓ0-sketches of the
//! vertex's characteristic edge-vector — one per Boruvka round, because
//! adaptivity forbids reusing a sketch after its randomness has been
//! revealed (paper footnote 1). The stack is generic over the sampler so the
//! same machinery runs GraphZeppelin (CubeSketch) and the StreamingCC
//! baseline (general ℓ0-sampler).

use gz_graph::{edge_index, Edge, VertexId};
use gz_hash::{SplitMix64, Xxh64Hasher};
use gz_sketch::cube::{CubeSketch, CubeSketchFamily};
use gz_sketch::geometry::SketchGeometry;
use gz_sketch::{L0Sampler, SampleResult};
use std::sync::Arc;

/// A stack of per-round ℓ0-sketches for one vertex (or supernode).
#[derive(Debug, Clone)]
pub struct NodeSketch<S: L0Sampler> {
    rounds: Box<[S]>,
}

impl<S: L0Sampler> NodeSketch<S> {
    /// Build a stack of `num_rounds` sketches via a per-round factory.
    pub fn new_with(num_rounds: usize, mut make: impl FnMut(usize) -> S) -> Self {
        NodeSketch { rounds: (0..num_rounds).map(&mut make).collect() }
    }

    /// Number of rounds (sketches) in the stack.
    #[inline]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The round-`r` sketch.
    #[inline]
    pub fn round(&self, r: usize) -> &S {
        &self.rounds[r]
    }

    /// Mutable access to all rounds — lets the ingestion pipeline split a
    /// batch across a worker's thread group (*sketch-level parallelism*,
    /// paper §5.1: rounds are independent, so "a CubeSketch is only modified
    /// by one thread in a group [and] no locking is necessary at the sketch
    /// level").
    #[inline]
    pub fn rounds_mut(&mut self) -> &mut [S] {
        &mut self.rounds
    }

    /// Apply a signed coordinate update to **every** round's sketch (each
    /// stream update costs `O(log V)` subsketch updates; §2.2).
    #[inline]
    pub fn update_signed(&mut self, idx: u64, delta: i32) {
        for s in self.rounds.iter_mut() {
            s.update_signed(idx, delta);
        }
    }

    /// Merge another stack round-by-round (supernode formation in Boruvka).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.rounds.len(), other.rounds.len(), "round count mismatch");
        for (a, b) in self.rounds.iter_mut().zip(other.rounds.iter()) {
            a.merge_from(b);
        }
    }

    /// Sample from the round-`r` sketch.
    pub fn sample_round(&self, r: usize) -> SampleResult {
        self.rounds[r].sample()
    }

    /// Reset every round to the zero sketch (scratch reuse in the ingestion
    /// pipeline's delta-sketch path).
    pub fn clear_all(&mut self) {
        for s in self.rounds.iter_mut() {
            s.clear();
        }
    }

    /// Total payload bytes across rounds.
    pub fn payload_bytes(&self) -> usize {
        self.rounds.iter().map(|s| s.payload_bytes()).sum()
    }
}

impl<H: gz_hash::Hasher64> NodeSketch<CubeSketch<H>> {
    /// Apply one *prepared* batch of characteristic-vector toggles — decoded
    /// to indices and run through the self-cancellation pre-pass
    /// ([`gz_sketch::cancel_duplicates`]) exactly once — to every round via
    /// the column-major batch kernel. The pre-pass is hash-independent, so
    /// one pass serves all `O(log V)` rounds; bit-identical to looping
    /// [`Self::update_signed`] over the raw records.
    #[inline]
    pub fn update_batch_prepared(&mut self, indices: &[u64]) {
        for s in self.rounds.iter_mut() {
            s.update_batch_prepared(indices);
        }
    }
}

/// The GraphZeppelin node sketch: CubeSketches over the characteristic
/// vector index space.
pub type CubeNodeSketch = NodeSketch<CubeSketch<Xxh64Hasher>>;

/// One round of a [`CubeNodeSketch`] — the slice the streaming query engine
/// moves (round `r` of the query touches only round `r`'s column data).
pub type CubeRoundSketch = CubeSketch<Xxh64Hasher>;

/// Shared per-round CubeSketch families for a whole system.
///
/// All vertices share the same per-round hash functions — required for
/// supernode merging — so families are constructed once and handed to every
/// store/worker.
#[derive(Debug, Clone)]
pub struct SketchParams {
    /// Number of vertices the characteristic vectors are defined over.
    pub num_nodes: u64,
    /// Per-round sketch families (hash functions + geometry).
    pub families: Vec<Arc<CubeSketchFamily<Xxh64Hasher>>>,
}

impl SketchParams {
    /// Families for `num_nodes` vertices, `rounds` rounds, `columns` sketch
    /// columns, derived deterministically from `seed`.
    pub fn new(num_nodes: u64, rounds: u32, columns: u32, seed: u64) -> Self {
        let vector_len = gz_graph::edge_index_count(num_nodes).max(1);
        let geometry = SketchGeometry::with_columns(vector_len, columns);
        let families = (0..rounds as u64)
            .map(|r| CubeSketchFamily::new(geometry, SplitMix64::derive(seed, r)))
            .collect();
        SketchParams { num_nodes, families }
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        self.families.len()
    }

    /// A fresh all-zero node sketch.
    pub fn new_node_sketch(&self) -> CubeNodeSketch {
        NodeSketch::new_with(self.families.len(), |r| self.families[r].new_sketch())
    }

    /// Bytes of one node sketch under the paper's accounting.
    pub fn node_sketch_bytes(&self) -> usize {
        self.families.iter().map(|f| f.geometry().cube_sketch_bytes()).sum()
    }

    /// Serialized size of one node sketch (for the disk store layout).
    pub fn node_sketch_serialized_bytes(&self) -> usize {
        self.families.iter().map(|f| CubeSketch::<Xxh64Hasher>::serialized_size(f.geometry())).sum()
    }

    /// Serialize a node sketch into `out` (rounds concatenated).
    pub fn serialize_node_sketch(&self, sketch: &CubeNodeSketch, out: &mut Vec<u8>) {
        for r in 0..sketch.num_rounds() {
            sketch.round(r).serialize_into(out);
        }
    }

    /// Serialized size of the round-`round` slice of a node sketch.
    pub fn round_serialized_bytes(&self, round: usize) -> usize {
        CubeSketch::<Xxh64Hasher>::serialized_size(self.families[round].geometry())
    }

    /// Byte offset of round `round` within a serialized node sketch (the
    /// rounds-concatenated layout of [`Self::serialize_node_sketch`]).
    pub fn round_serialized_offset(&self, round: usize) -> usize {
        (0..round).map(|r| self.round_serialized_bytes(r)).sum()
    }

    /// Serialize only the round-`round` slice of a node sketch — the unit
    /// the streaming query engine moves (one round of one vertex).
    pub fn serialize_round(&self, sketch: &CubeNodeSketch, round: usize, out: &mut Vec<u8>) {
        sketch.round(round).serialize_into(out);
    }

    /// Deserialize a round slice previously produced by
    /// [`Self::serialize_round`].
    pub fn deserialize_round(&self, round: usize, bytes: &[u8]) -> CubeSketch<Xxh64Hasher> {
        CubeSketch::deserialize(Arc::clone(&self.families[round]), bytes)
    }

    /// Deserialize a node sketch previously produced by
    /// [`Self::serialize_node_sketch`].
    pub fn deserialize_node_sketch(&self, bytes: &[u8]) -> CubeNodeSketch {
        let mut offset = 0;
        NodeSketch::new_with(self.families.len(), |r| {
            let sz = CubeSketch::<Xxh64Hasher>::serialized_size(self.families[r].geometry());
            let s =
                CubeSketch::deserialize(Arc::clone(&self.families[r]), &bytes[offset..offset + sz]);
            offset += sz;
            s
        })
    }
}

/// Test support: assert two node sketch stacks are bit-identical, round by
/// round (the batch-kernel == singles invariant the store and ingest tests
/// pin).
#[cfg(test)]
pub(crate) fn assert_rounds_bitwise_equal(a: &CubeNodeSketch, b: &CubeNodeSketch, ctx: &str) {
    assert_eq!(a.num_rounds(), b.num_rounds(), "{ctx}: round count");
    for r in 0..a.num_rounds() {
        let (mut ab, mut bb) = (Vec::new(), Vec::new());
        a.round(r).serialize_into(&mut ab);
        b.round(r).serialize_into(&mut bb);
        assert_eq!(ab, bb, "{ctx}: round {r}");
    }
}

/// Encode the other endpoint plus a deletion flag into one `u32` batch
/// record. GraphZeppelin itself ignores the flag (Z_2 toggles), but the
/// StreamingCC baseline needs signed updates, and both share the buffering
/// layer.
#[inline]
pub fn encode_other(other: VertexId, is_delete: bool) -> u32 {
    debug_assert!(other < (1 << 31), "vertex ids must fit in 31 bits");
    other | ((is_delete as u32) << 31)
}

/// Inverse of [`encode_other`]: `(other, is_delete)`.
#[inline]
pub fn decode_other(record: u32) -> (VertexId, bool) {
    (record & 0x7FFF_FFFF, record >> 31 == 1)
}

/// The characteristic-vector index toggled by an update `(node, other)`.
#[inline]
pub fn update_index(node: VertexId, other: VertexId, num_nodes: u64) -> u64 {
    edge_index(Edge::new(node, other), num_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(v: u64) -> SketchParams {
        SketchParams::new(v, 6, 7, 42)
    }

    #[test]
    fn node_sketch_round_count() {
        let p = params(64);
        let s = p.new_node_sketch();
        assert_eq!(s.num_rounds(), 6);
    }

    #[test]
    fn update_touches_every_round() {
        let p = params(64);
        let mut s = p.new_node_sketch();
        let idx = update_index(3, 9, 64);
        s.update_signed(idx, 1);
        for r in 0..s.num_rounds() {
            assert_eq!(s.sample_round(r), SampleResult::Index(idx), "round {r}");
        }
    }

    #[test]
    fn rounds_are_independent_families() {
        // Same vector, different hash functions per round: the bucket
        // payloads must differ (otherwise adaptivity is broken).
        let p = params(64);
        let mut s = p.new_node_sketch();
        s.update_signed(update_index(0, 1, 64), 1);
        let mut a = Vec::new();
        s.round(0).serialize_into(&mut a);
        let mut b = Vec::new();
        s.round(1).serialize_into(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_cancels_shared_edges() {
        let p = params(64);
        let (mut su, mut sv) = (p.new_node_sketch(), p.new_node_sketch());
        // Edge (3, 9) present: appears in both endpoint vectors; after
        // merging the supernode {3, 9}, it must cancel.
        let idx = update_index(3, 9, 64);
        su.update_signed(idx, 1);
        sv.update_signed(idx, 1);
        // Edge (3, 20) crosses the cut: only in node 3's vector.
        let cross = update_index(3, 20, 64);
        su.update_signed(cross, 1);
        su.merge(&sv);
        assert_eq!(su.sample_round(0), SampleResult::Index(cross));
    }

    #[test]
    fn serialization_round_trip() {
        let p = params(32);
        let mut s = p.new_node_sketch();
        for (a, b) in [(0u32, 1u32), (5, 9), (30, 31)] {
            s.update_signed(update_index(a, b, 32), 1);
        }
        let mut bytes = Vec::new();
        p.serialize_node_sketch(&s, &mut bytes);
        assert_eq!(bytes.len(), p.node_sketch_serialized_bytes());
        let t = p.deserialize_node_sketch(&bytes);
        for r in 0..s.num_rounds() {
            assert_eq!(t.sample_round(r), s.sample_round(r));
        }
    }

    #[test]
    fn round_slices_tile_the_node_record() {
        let p = params(32);
        let mut s = p.new_node_sketch();
        s.update_signed(update_index(1, 2, 32), 1);
        s.update_signed(update_index(5, 30, 32), 1);
        let mut whole = Vec::new();
        p.serialize_node_sketch(&s, &mut whole);
        for r in 0..s.num_rounds() {
            let off = p.round_serialized_offset(r);
            let len = p.round_serialized_bytes(r);
            let mut slice = Vec::new();
            p.serialize_round(&s, r, &mut slice);
            assert_eq!(&whole[off..off + len], &slice[..], "round {r}");
            assert_eq!(p.deserialize_round(r, &slice).query(), s.sample_round(r));
        }
        assert_eq!(p.round_serialized_offset(s.num_rounds()), whole.len());
    }

    #[test]
    fn encode_decode_other() {
        for (v, d) in [(0u32, false), (7, true), ((1 << 31) - 1, true)] {
            assert_eq!(decode_other(encode_other(v, d)), (v, d));
        }
    }

    #[test]
    fn params_deterministic_in_seed() {
        let a = SketchParams::new(64, 4, 7, 1);
        let b = SketchParams::new(64, 4, 7, 1);
        // Same seed -> compatible families (sketches mergeable).
        let mut sa = a.new_node_sketch();
        let sb = b.new_node_sketch();
        sa.merge(&sb); // would panic if families were incompatible
    }

    #[test]
    fn payload_matches_model() {
        let p = params(128);
        let s = p.new_node_sketch();
        assert_eq!(s.payload_bytes(), p.node_sketch_bytes());
    }
}
