//! Sketch-space Boruvka: query processing (paper §2.2, §4.2, Figure 9).
//!
//! Each round queries the current round's sketch of every live supernode;
//! every recovered edge crosses a supernode cut (internal edges cancel under
//! sketch addition), so its endpoints' components merge. Components whose
//! sketch reports an empty cut are maximal and retire. The paper budgets
//! `log_{3/2} V` rounds; exceeding it is the `algorithm_fails` event with
//! probability `≤ 1/V^c`.
//!
//! The engine is *round-driven*: round `r` pulls only round `r`'s sketch
//! slices from a [`SketchSource`] and folds each vertex's slice into its
//! live supernode's accumulator as it streams past. Because sketch merging
//! is a per-round XOR, the accumulator of a supernode is bit-identical to
//! round `r` of the merged sketch stack the materialized algorithm would
//! hold — so every source (a RAM snapshot, a disk store streaming groups
//! with prefetch, a shard fleet shipping round frames) produces the same
//! labels, while peak query memory drops from `O(V × full sketch)` to
//! `O(live components × one round)` plus the source's buffers.
//!
//! The engine is also *parallel* (DESIGN.md §10): each round's fold is
//! partitioned across a [`gz_gutters::WorkerPool`] — every worker folds its
//! share of the round slices into a thread-local [`RoundSink`], and the
//! sinks are XOR-merged in worker order before sampling. XOR is commutative
//! and associative at the bit level, so the merged accumulator — and hence
//! every sampled edge, retirement decision, and failure count — is
//! independent of thread count and partitioning *by construction*: the
//! parallel query is bit-identical to the single-threaded one. Sampling
//! (phase 1b) is likewise partitioned over contiguous supernode ranges and
//! the per-worker results concatenated in worker order, preserving the
//! serial processing order exactly. Only the DSU merge step stays
//! sequential.

use crate::error::GzError;
use crate::node_sketch::NodeSketch;
use crate::store::{MaterializedSource, SketchSource};
use gz_dsu::Dsu;
use gz_graph::{index_to_edge, Edge};
use gz_gutters::WorkerPool;
use gz_sketch::{L0Sampler, SampleResult};
use parking_lot::Mutex;

/// Result of a successful sketch-connectivity computation.
#[derive(Debug, Clone)]
pub struct BoruvkaOutcome {
    /// Spanning-forest edges (the streaming CC problem's required output).
    pub forest: Vec<Edge>,
    /// Component label per vertex, normalized to the minimum member id.
    pub labels: Vec<u32>,
    /// Boruvka rounds executed.
    pub rounds_used: usize,
    /// Individual sketch-query failures survived along the way (a query
    /// failure only delays a component to the next round; the run fails
    /// only when the round budget is exhausted).
    pub sketch_failures: usize,
    /// Peak sketch bytes resident during the query: supernode accumulators
    /// plus whatever the source buffered (a full materialization for the
    /// snapshot path; a round's prefetch window for the streaming paths).
    pub peak_sketch_bytes: usize,
}

impl BoruvkaOutcome {
    /// Number of connected components: one `O(n)` pass over the labels with
    /// a seen-bitmap (labels are normalized minimum member ids, so they
    /// index the vertex range).
    pub fn num_components(&self) -> usize {
        let mut seen = vec![false; self.labels.len()];
        let mut count = 0usize;
        for &label in &self.labels {
            if !seen[label as usize] {
                seen[label as usize] = true;
                count += 1;
            }
        }
        count
    }
}

/// One query worker's fold target for one Borůvka round: a per-supernode
/// accumulator vector plus the round's supernode map. Sources deliver each
/// node's round slice to exactly one sink (any sink — XOR commutes); the
/// engine XOR-merges the sinks in worker order afterwards, which makes the
/// merged accumulators bit-identical to a single-threaded fold.
pub struct RoundSink<'a, S> {
    root_of: &'a [u32],
    retired: &'a [bool],
    acc: Vec<Option<S>>,
    acc_bytes: usize,
}

impl<'a, S: L0Sampler + Clone> RoundSink<'a, S> {
    pub(crate) fn new(root_of: &'a [u32], retired: &'a [bool]) -> Self {
        RoundSink {
            root_of,
            retired,
            acc: (0..root_of.len()).map(|_| None).collect(),
            acc_bytes: 0,
        }
    }

    /// The per-supernode accumulators folded so far (store-level tests).
    #[cfg(test)]
    pub(crate) fn accumulators(self) -> Vec<Option<S>> {
        self.acc
    }

    /// Fold `node`'s round slice into its supernode's accumulator (a no-op
    /// for retired supernodes).
    #[inline]
    pub fn fold(&mut self, node: u32, slice: &S) {
        let root = self.root_of[node as usize] as usize;
        if self.retired[root] {
            return;
        }
        match &mut self.acc[root] {
            Some(acc) => acc.merge_from(slice),
            slot => {
                self.acc_bytes += slice.payload_bytes();
                *slot = Some(slice.clone());
            }
        }
    }
}

/// XOR-merge per-worker sinks in worker order into one accumulator vector.
/// Returns the merged accumulators plus the summed per-sink payload bytes
/// (the true peak: all sinks were resident simultaneously during the fold).
fn merge_sinks<S: L0Sampler + Clone>(
    sinks: Vec<Mutex<RoundSink<'_, S>>>,
) -> (Vec<Option<S>>, usize) {
    let mut iter = sinks.into_iter().map(|m| m.into_inner());
    let first = iter.next().expect("at least one sink");
    let mut acc = first.acc;
    let mut acc_bytes = first.acc_bytes;
    for sink in iter {
        acc_bytes += sink.acc_bytes;
        for (slot, other) in acc.iter_mut().zip(sink.acc) {
            let Some(b) = other else { continue };
            match slot {
                Some(a) => a.merge_from(&b),
                None => *slot = Some(b),
            }
        }
    }
    (acc, acc_bytes)
}

/// Run the round-driven Boruvka engine over any [`SketchSource`] on a
/// single thread. Equivalent to [`boruvka_rounds_parallel`] with one query
/// thread (and bit-identical to it at any thread count).
pub fn boruvka_rounds<Src: SketchSource>(
    source: &mut Src,
    num_vertices: u64,
    max_rounds: usize,
) -> Result<BoruvkaOutcome, GzError>
where
    Src::Sampler: Send + Sync,
{
    boruvka_rounds_parallel(source, num_vertices, max_rounds, 1)
}

/// Run the round-driven Boruvka engine over any [`SketchSource`], with each
/// round's fold and sampling partitioned across `query_threads` workers.
///
/// Per round: compute every vertex's current supernode root, stream the
/// round's slices folding them into per-worker [`RoundSink`]s (partitioned
/// by the source — by slot range in stores, by node group on disk, by
/// gathered reply in shard fleets), XOR-merge the sinks, sample one cut
/// edge per live supernode across contiguous supernode ranges, then merge
/// endpoint components sequentially. The output is bit-identical across
/// sources *and* thread counts fed the same sketch state (see the module
/// docs for the argument).
pub fn boruvka_rounds_parallel<Src: SketchSource>(
    source: &mut Src,
    num_vertices: u64,
    max_rounds: usize,
    query_threads: usize,
) -> Result<BoruvkaOutcome, GzError>
where
    Src::Sampler: Send + Sync,
{
    let pool = WorkerPool::new(query_threads);
    boruvka_rounds_with_pool(source, num_vertices, max_rounds, &pool)
}

/// [`boruvka_rounds_parallel`] against a caller-owned [`WorkerPool`]: the
/// system query path constructs its pool once and reuses it across queries
/// (and across the rounds of each query) instead of spawning and joining
/// `query_threads` OS threads per call.
pub fn boruvka_rounds_with_pool<Src: SketchSource>(
    source: &mut Src,
    num_vertices: u64,
    max_rounds: usize,
    pool: &WorkerPool,
) -> Result<BoruvkaOutcome, GzError>
where
    Src::Sampler: Send + Sync,
{
    let n = num_vertices as usize;
    let mut dsu = Dsu::new(n);
    // Retired components: cut known empty; never query again. A retired
    // component can never be merged into, because a cut edge would appear
    // in both sides' sketches.
    let mut retired = vec![false; n];
    let mut forest: Vec<Edge> = Vec::new();
    let mut sketch_failures = 0usize;
    let mut rounds_used = 0usize;
    let mut peak_sketch_bytes = 0usize;

    // If exactly one unretired component remains, it cannot have any cut
    // edges (all other components' cuts are provably empty), so it retires
    // without a query. This both saves a round and lets a fully-merged graph
    // finish inside the exact `log_{3/2}V` budget.
    let retire_last_live = |dsu: &mut Dsu, retired: &mut Vec<bool>| {
        let live: Vec<u32> =
            (0..n as u32).filter(|&v| dsu.find(v) == v && !retired[v as usize]).collect();
        if let [only] = live[..] {
            retired[only as usize] = true;
        }
    };

    for round in 0..max_rounds {
        retire_last_live(&mut dsu, &mut retired);
        rounds_used = round + 1;

        // Supernode root of every vertex, fixed for the round (the fold and
        // the source's group-skipping liveness test both read it).
        let root_of: Vec<u32> = (0..n as u32).map(|v| dsu.find(v)).collect();

        let mut found: Vec<Edge> = Vec::new();
        let mut any_live = false;

        if round >= source.num_rounds() {
            // Stack exhausted: still-live components survive the round
            // unqueried and fail only once the round budget runs out.
            any_live = (0..n).any(|v| root_of[v] == v as u32 && !retired[v]);
        } else {
            // Phase 1a: fold each vertex's round slice into its live
            // supernode's accumulator as it streams past, each worker into
            // its own sink; XOR-merging the sinks in worker order then
            // yields accumulators bit-identical to a serial fold.
            let (acc, acc_bytes) = {
                let live = |v: u32| !retired[root_of[v as usize] as usize];
                let sinks: Vec<Mutex<RoundSink<'_, Src::Sampler>>> = (0..pool.threads())
                    .map(|_| Mutex::new(RoundSink::new(&root_of, &retired)))
                    .collect();
                source.stream_round_into(round, &live, pool, &sinks)?;
                merge_sinks(sinks)
            };
            peak_sketch_bytes = peak_sketch_bytes.max(acc_bytes + source.resident_bytes());

            // Phase 1b (paper Lemma 5): sample one edge per live supernode,
            // partitioned over contiguous supernode ranges. Samples are pure
            // functions of the merged accumulators, and concatenating the
            // per-worker results in worker order restores the serial
            // ascending-root processing order exactly.
            let samples: Vec<Mutex<Vec<(u32, SampleResult)>>> =
                (0..pool.threads()).map(|_| Mutex::new(Vec::new())).collect();
            pool.run(&|w| {
                let mut out = samples[w].lock();
                for root in pool.partition(n, w) {
                    if root_of[root] != root as u32 || retired[root] {
                        continue;
                    }
                    let sketch =
                        acc[root].as_ref().expect("live supernode must have folded a slice");
                    out.push((root as u32, sketch.sample()));
                }
            });
            for (root, sample) in samples.into_iter().flat_map(|m| m.into_inner()) {
                match sample {
                    SampleResult::Index(idx) => {
                        any_live = true;
                        found.push(index_to_edge(idx, num_vertices));
                    }
                    SampleResult::Zero => {
                        retired[root as usize] = true;
                    }
                    SampleResult::Fail => {
                        any_live = true;
                        sketch_failures += 1;
                    }
                }
            }
        }

        if !any_live {
            // Every component retired: done.
            break;
        }

        // Phases 2+3: merge endpoint components. No sketch XOR happens here
        // — the next round's fold rebuilds accumulators from the updated
        // supernode membership, which is the same sum. Adjacent components
        // routinely sample the same cut edge from both sides; dropping the
        // duplicates up front halves the DSU finds on such rounds, and the
        // sorted order is deterministic, so outputs stay thread-invariant.
        found.sort_unstable();
        found.dedup();
        for edge in found {
            let (ra, rb) = (dsu.find(edge.u()), dsu.find(edge.v()));
            if ra == rb {
                // Another merge this round already connected them (two
                // components can sample the same cut edge from both sides).
                continue;
            }
            dsu.union(ra, rb);
            let winner = dsu.find(ra);
            // The merged component must be re-queried even if one side had
            // retired... which cannot happen (see `retired` note), but a
            // defensive clear keeps the invariant local.
            retired[winner as usize] = false;
            forest.push(edge);
        }
    }

    // The final round's merges may have left a single live component.
    retire_last_live(&mut dsu, &mut retired);

    // Check for unresolved components (live, not retired).
    let unresolved = (0..n as u32).filter(|&v| dsu.find(v) == v && !retired[v as usize]).count();
    if unresolved > 0 {
        return Err(GzError::AlgorithmFailure { rounds_used, unresolved });
    }

    let labels = dsu.normalized_labels();
    Ok(BoruvkaOutcome { forest, labels, rounds_used, sketch_failures, peak_sketch_bytes })
}

/// Run Boruvka over a materialized per-vertex sketch vector — the snapshot
/// query path, expressed through the same round-driven engine so snapshot
/// and streaming answers are bit-identical by construction.
///
/// `num_vertices` must equal `sketches.len()`; `max_rounds` bounds the
/// rounds and must not exceed the per-node sketch stack depth.
pub fn boruvka_spanning_forest<S: L0Sampler + Clone + Send + Sync>(
    sketches: Vec<Option<NodeSketch<S>>>,
    num_vertices: u64,
    max_rounds: usize,
) -> Result<BoruvkaOutcome, GzError> {
    boruvka_spanning_forest_parallel(sketches, num_vertices, max_rounds, 1)
}

/// [`boruvka_spanning_forest`] with the round fold and sampling partitioned
/// across `query_threads` workers — bit-identical at any thread count.
pub fn boruvka_spanning_forest_parallel<S: L0Sampler + Clone + Send + Sync>(
    sketches: Vec<Option<NodeSketch<S>>>,
    num_vertices: u64,
    max_rounds: usize,
    query_threads: usize,
) -> Result<BoruvkaOutcome, GzError> {
    assert_eq!(sketches.len() as u64, num_vertices);
    let mut source = MaterializedSource::new(sketches);
    boruvka_rounds_parallel(&mut source, num_vertices, max_rounds, query_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::default_rounds;
    use crate::node_sketch::{update_index, SketchParams};
    use gz_graph::{connected_components_dsu, spanning_forest as oracle_forest, AdjacencyList};

    /// Build per-vertex sketches for a set of edges.
    fn sketches_for(
        num_nodes: u64,
        edges: &[(u32, u32)],
        seed: u64,
    ) -> (SketchParams, Vec<Option<crate::node_sketch::CubeNodeSketch>>) {
        let rounds = default_rounds(num_nodes);
        let params = SketchParams::new(num_nodes, rounds, 7, seed);
        let mut sketches: Vec<Option<_>> =
            (0..num_nodes).map(|_| Some(params.new_node_sketch())).collect();
        for &(a, b) in edges {
            let idx = update_index(a, b, num_nodes);
            sketches[a as usize].as_mut().unwrap().update_signed(idx, 1);
            sketches[b as usize].as_mut().unwrap().update_signed(idx, 1);
        }
        (params, sketches)
    }

    fn check_against_oracle(num_nodes: u64, edges: &[(u32, u32)], seed: u64) {
        let (_params, sketches) = sketches_for(num_nodes, edges, seed);
        let rounds = default_rounds(num_nodes) as usize;
        let outcome = boruvka_spanning_forest(sketches, num_nodes, rounds)
            .expect("sketch connectivity failed");
        let g = AdjacencyList::from_edges(num_nodes as usize, edges.iter().copied());
        assert_eq!(outcome.labels, connected_components_dsu(&g), "labels mismatch");
        // Forest size must match the oracle's (V - #components).
        assert_eq!(outcome.forest.len(), oracle_forest(&g).len(), "forest size");
        // Forest edges must be real edges and acyclic.
        assert!(gz_graph::connectivity::is_spanning_forest(&g, &outcome.forest));
    }

    #[test]
    fn empty_graph_all_singletons() {
        let (_p, sketches) = sketches_for(16, &[], 1);
        let outcome = boruvka_spanning_forest(sketches, 16, 8).unwrap();
        assert!(outcome.forest.is_empty());
        assert_eq!(outcome.num_components(), 16);
        assert_eq!(outcome.rounds_used, 1, "all retire in round one");
    }

    #[test]
    fn single_edge() {
        check_against_oracle(8, &[(2, 5)], 7);
    }

    #[test]
    fn path_graph() {
        let edges: Vec<(u32, u32)> = (0..31).map(|i| (i, i + 1)).collect();
        check_against_oracle(32, &edges, 3);
    }

    #[test]
    fn two_cliques() {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        check_against_oracle(16, &edges, 11);
    }

    #[test]
    fn star_plus_isolated() {
        let edges: Vec<(u32, u32)> = (1..20).map(|i| (0, i)).collect();
        check_against_oracle(64, &edges, 13);
    }

    #[test]
    fn dense_random_graphs_many_seeds() {
        // The integration-level reliability experiment lives in gz-bench;
        // here a smoke sweep over seeds on a dense graph.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 48u64;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.5 {
                        edges.push((a, b));
                    }
                }
            }
            check_against_oracle(n, &edges, seed * 31 + 1);
        }
    }

    #[test]
    fn fails_gracefully_with_zero_round_budget() {
        let (_p, sketches) = sketches_for(8, &[(0, 1)], 1);
        let err = boruvka_spanning_forest(sketches, 8, 0).unwrap_err();
        assert!(matches!(err, GzError::AlgorithmFailure { .. }));
    }

    /// The tentpole invariant at the engine level: every field of the
    /// outcome except peak memory — labels, forest (with edge order),
    /// rounds used, failure count — is identical at any thread count.
    #[test]
    fn outcome_is_bit_identical_across_thread_counts() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 64u64;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.12 {
                        edges.push((a, b));
                    }
                }
            }
            let rounds = default_rounds(n) as usize;
            let reference = {
                let (_p, sketches) = sketches_for(n, &edges, seed + 100);
                boruvka_spanning_forest_parallel(sketches, n, rounds, 1).unwrap()
            };
            for threads in [2usize, 3, 4, 8, 17] {
                let (_p, sketches) = sketches_for(n, &edges, seed + 100);
                let parallel =
                    boruvka_spanning_forest_parallel(sketches, n, rounds, threads).unwrap();
                assert_eq!(reference.labels, parallel.labels, "labels at {threads} threads");
                assert_eq!(reference.forest, parallel.forest, "forest at {threads} threads");
                assert_eq!(reference.rounds_used, parallel.rounds_used, "rounds at {threads}");
                assert_eq!(
                    reference.sketch_failures, parallel.sketch_failures,
                    "failures at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_vertices_is_fine() {
        let (_p, sketches) = sketches_for(4, &[(0, 1), (2, 3)], 5);
        let outcome = boruvka_spanning_forest_parallel(sketches, 4, 4, 64).unwrap();
        assert_eq!(outcome.num_components(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::default_rounds;
    use crate::node_sketch::{update_index, SketchParams};
    use gz_graph::connectivity::is_spanning_forest;
    use gz_graph::{connected_components_dsu, AdjacencyList};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Sketch-space Boruvka equals exact connectivity on arbitrary
        /// random graphs (sparse through dense) with arbitrary seeds.
        /// A sampler failure makes the run return AlgorithmFailure — which
        /// would fail this test too; its (observed) absence across the
        /// proptest corpus is itself a reliability statement.
        #[test]
        fn matches_exact_connectivity(
            n in 2u64..40,
            seed in any::<u64>(),
            raw_edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..150)
        ) {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(a, b)| ((a as u64 % n) as u32, (b as u64 % n) as u32))
                .filter(|(a, b)| a != b)
                .collect();
            // Deduplicate: the characteristic vector is over Z2, so each
            // edge must be toggled once to be present.
            let mut dedup: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            dedup.sort_unstable();
            dedup.dedup();

            let rounds = default_rounds(n);
            let params = SketchParams::new(n, rounds, 7, seed);
            let mut sketches: Vec<Option<_>> =
                (0..n).map(|_| Some(params.new_node_sketch())).collect();
            for &(a, b) in &dedup {
                let idx = update_index(a, b, n);
                sketches[a as usize].as_mut().unwrap().update_signed(idx, 1);
                sketches[b as usize].as_mut().unwrap().update_signed(idx, 1);
            }

            let outcome = boruvka_spanning_forest(sketches, n, rounds as usize)
                .expect("sketch connectivity failed");
            let g = AdjacencyList::from_edges(n as usize, dedup.iter().copied());
            prop_assert_eq!(&outcome.labels, &connected_components_dsu(&g));
            prop_assert!(is_spanning_forest(&g, &outcome.forest));
        }
    }
}
