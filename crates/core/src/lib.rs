//! **GraphZeppelin**: storage-friendly sketching for connected components on
//! dynamic graph streams — a from-scratch Rust reproduction of the SIGMOD '22
//! system (Tench, West, Zhang et al.).
//!
//! GraphZeppelin maintains, for every vertex, `O(log V)` CubeSketches of its
//! characteristic edge-vector — `O(V log^3 V)` bits in total, asymptotically
//! less than any lossless representation of a dense graph — and answers
//! connectivity queries by emulating Boruvka's algorithm over those sketches.
//! Stream ingestion is batched through node-based gutters and applied by a
//! pool of Graph Workers, which is what makes the structure fast in RAM and
//! viable on SSD (the paper's *hybrid streaming model*).
//!
//! # Quick start
//!
//! ```
//! use graph_zeppelin::{GraphZeppelin, GzConfig};
//!
//! // A 64-vertex graph stream, all defaults (in-RAM sketches).
//! let mut gz = GraphZeppelin::new(GzConfig::in_ram(64)).unwrap();
//!
//! // Insert a triangle and a separate edge, then delete one triangle edge.
//! gz.edge_update(0, 1);
//! gz.edge_update(1, 2);
//! gz.edge_update(2, 0);
//! gz.edge_update(10, 11);
//! gz.edge_update(2, 0); // second toggle = deletion
//!
//! let cc = gz.connected_components().unwrap();
//! assert_eq!(cc.label(0), cc.label(1));
//! assert_eq!(cc.label(1), cc.label(2));
//! assert_eq!(cc.label(10), cc.label(11));
//! assert_ne!(cc.label(0), cc.label(10));
//! ```
//!
//! # Modules
//!
//! - [`config`] — system configuration (workers, buffering, sketch store).
//! - [`node_sketch`] — per-vertex stacks of ℓ0-sketches (one per Boruvka
//!   round).
//! - [`store`] — sketch stores: in-RAM and file-backed (the SSD model).
//! - [`sparse`] — exact small-set vertex representation for the hybrid
//!   sparse/dense store (promotion-by-replay below `sketch_threshold`).
//! - [`ingest`] — the parallel ingestion pipeline (Figure 7).
//! - [`boruvka`] — sketch-space Boruvka query processing (Figure 9).
//! - [`system`] — the [`GraphZeppelin`] facade tying it all together.
//! - [`streaming_cc`] — the prior-art baseline (StreamingCC over the
//!   general-purpose ℓ0-sampler) used by the paper's §3 comparison.
//! - [`size_model`] — closed-form memory model (Figure 11).
//! - [`bipartiteness`] — streaming bipartiteness via the double cover (a
//!   further CubeSketch application the paper names in §3.1).
//! - [`edge_connectivity`] — k-edge-connectivity certificates by sketch
//!   peeling (another §3.1 application, after Ahn–Guha–McGregor).
//! - [`msf`] — minimum spanning forests over weight-leveled sketches (the
//!   §3.1 "minimum spanning trees" application).
//! - [`checkpoint`] — persist and restore the whole sketch state.
//! - [`sharding`] — cluster-model sharded ingestion (the §8 outlook):
//!   inter-shard batching router, per-shard pipelines, and in-process /
//!   socket transports speaking the `gz_stream::wire` protocol.

pub mod bipartiteness;
pub mod boruvka;
pub mod checkpoint;
pub mod config;
pub mod edge_connectivity;
pub mod error;
pub mod ingest;
pub mod msf;
pub mod node_sketch;
pub mod sharding;
pub mod size_model;
pub mod sparse;
pub mod store;
pub mod streaming_cc;
pub mod system;

pub use bipartiteness::{BipartitenessAnswer, BipartitenessTester};
pub use boruvka::{
    boruvka_rounds, boruvka_rounds_parallel, boruvka_spanning_forest,
    boruvka_spanning_forest_parallel, BoruvkaOutcome, RoundSink,
};
pub use checkpoint::{CheckpointHeader, ServeManifest, ShardCheckpointHeader, UpdateWal};
pub use config::{
    BufferStrategy, GutterCapacity, GzConfig, LockingStrategy, QueryMode, StoreBackend,
};
pub use edge_connectivity::{ForestCertificate, KForestSketcher};
pub use error::{GzError, TransportError, TransportErrorKind};
pub use msf::{MsfSketcher, WeightedForest};
pub use node_sketch::{CubeNodeSketch, NodeSketch};
pub use sharding::{
    connect_shard_tcp, new_pipeline_resuming, serve_shard_connection, shard_checkpoint_file_name,
    InProcessTransport, RecoveringTransport, ReplayLog, RetryPolicy, ShardConfig, ShardLink,
    ShardPipeline, ShardRouter, ShardServeStats, ShardTransport, ShardedEpoch,
    ShardedGraphZeppelin, SocketTransport, TransportTimeouts,
};
pub use sparse::SparseSet;
pub use store::{
    uring_available, EpochOverlay, EpochRoundSource, IoBackendConfig, IoBackendKind,
    MaterializedSource, NodeSet, RepStats, SketchEpoch, SketchSource, SliceSource,
    StoreRoundSource,
};
pub use system::{ConnectedComponents, GraphZeppelin};
