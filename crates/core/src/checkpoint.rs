//! Checkpointing: persist the entire sketch state and resume later.
//!
//! Linear sketches make this trivial in principle — the whole system state
//! is the `V × O(log V)` bucket arrays plus the seeds that define the hash
//! functions — and very useful in practice: a stream can be ingested across
//! process restarts, or sketches shipped from an ingestion machine to a
//! query machine (the coordinator/shard split of [`crate::sharding`]).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    [u8;4] = b"GZC2"   — v2: single-hash column derivation (DESIGN.md §9)
//! num_nodes u64, seed u64, rounds u32, columns u32
//! updates   u64      — updates ingested so far (informational)
//! payload   num_nodes × node_sketch_serialized_bytes
//! ```

use crate::config::GzConfig;
use crate::error::GzError;
use crate::node_sketch::SketchParams;
use crate::system::GraphZeppelin;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

// v1 checkpoints ("GZC1") predate the single-hash column derivation
// (DESIGN.md §9): their bucket payloads were built from the old `h1`/`h2`
// pair and cannot merge with sketches hashed under the current scheme, so
// the magic refuses them instead of silently restoring corrupt state.
const MAGIC: [u8; 4] = *b"GZC2";

/// Header of a checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Vertex universe size.
    pub num_nodes: u64,
    /// Master seed (hash functions are derived from it).
    pub seed: u64,
    /// Rounds per node sketch.
    pub rounds: u32,
    /// Sketch columns.
    pub columns: u32,
    /// Updates ingested when the checkpoint was taken.
    pub updates_ingested: u64,
}

impl GraphZeppelin {
    /// Flush all buffered updates and write the sketch state to `path`.
    pub fn save_checkpoint(&mut self, path: &Path) -> Result<CheckpointHeader, GzError> {
        self.flush();
        let params = self.params().clone();
        let header = CheckpointHeader {
            num_nodes: self.config().num_nodes,
            seed: self.config().seed,
            rounds: params.rounds() as u32,
            columns: self.config().num_columns,
            updates_ingested: self.updates_ingested(),
        };

        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::with_capacity(1 << 20, file);
        w.write_all(&MAGIC)?;
        w.write_all(&header.num_nodes.to_le_bytes())?;
        w.write_all(&header.seed.to_le_bytes())?;
        w.write_all(&header.rounds.to_le_bytes())?;
        w.write_all(&header.columns.to_le_bytes())?;
        w.write_all(&header.updates_ingested.to_le_bytes())?;

        let mut buf = Vec::with_capacity(params.node_sketch_serialized_bytes());
        for sketch in self.snapshot_sketches() {
            buf.clear();
            params.serialize_node_sketch(&sketch, &mut buf);
            w.write_all(&buf)?;
        }
        w.flush()?;
        Ok(header)
    }

    /// Read just the header of a checkpoint file.
    pub fn checkpoint_header(path: &Path) -> Result<CheckpointHeader, GzError> {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::new(file);
        read_header(&mut r)
    }

    /// Restore a system from a checkpoint with default runtime settings
    /// (in-RAM store, default buffering/workers).
    pub fn restore(path: &Path) -> Result<GraphZeppelin, GzError> {
        let header = Self::checkpoint_header(path)?;
        let mut config = GzConfig::in_ram(header.num_nodes);
        config.seed = header.seed;
        config.num_rounds = Some(header.rounds);
        config.num_columns = header.columns;
        Self::restore_with_config(path, config)
    }

    /// Restore with explicit runtime settings. The config's sketch-defining
    /// fields (`num_nodes`, `seed`, rounds, `num_columns`) must match the
    /// checkpoint or an [`GzError::InvalidConfig`] is returned.
    pub fn restore_with_config(path: &Path, config: GzConfig) -> Result<GraphZeppelin, GzError> {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::with_capacity(1 << 20, file);
        let header = read_header(&mut r)?;

        if config.num_nodes != header.num_nodes
            || config.seed != header.seed
            || config.rounds() != header.rounds
            || config.num_columns != header.columns
        {
            return Err(GzError::InvalidConfig(format!(
                "config does not match checkpoint header {header:?}"
            )));
        }

        let mut gz = GraphZeppelin::new(config)?;
        let params =
            SketchParams::new(header.num_nodes, header.rounds, header.columns, header.seed);
        let node_bytes = params.node_sketch_serialized_bytes();
        let mut buf = vec![0u8; node_bytes];
        let mut sketches = Vec::with_capacity(header.num_nodes as usize);
        for _ in 0..header.num_nodes {
            r.read_exact(&mut buf)?;
            sketches.push(params.deserialize_node_sketch(&buf));
        }
        gz.load_sketches(sketches, header.updates_ingested);
        Ok(gz)
    }
}

fn read_header(r: &mut impl Read) -> Result<CheckpointHeader, GzError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(GzError::InvalidConfig("not a GraphZeppelin checkpoint".into()));
    }
    let mut u64buf = [0u8; 8];
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u64buf)?;
    let num_nodes = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf)?;
    let seed = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u32buf)?;
    let rounds = u32::from_le_bytes(u32buf);
    r.read_exact(&mut u32buf)?;
    let columns = u32::from_le_bytes(u32buf);
    r.read_exact(&mut u64buf)?;
    let updates_ingested = u64::from_le_bytes(u64buf);
    Ok(CheckpointHeader { num_nodes, seed, rounds, columns, updates_ingested })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-ckpt-{name}"), ".gzc")
    }

    #[test]
    fn save_restore_round_trip_preserves_answers() {
        let path = tmp("round_trip");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(32)).unwrap();
        for &(a, b) in &[(0u32, 1u32), (1, 2), (5, 6), (6, 7), (7, 5)] {
            gz.edge_update(a, b);
        }
        let expected = gz.connected_components().unwrap().labels().to_vec();
        let header = gz.save_checkpoint(path.path()).unwrap();
        assert_eq!(header.updates_ingested, 5);
        drop(gz);

        let mut restored = GraphZeppelin::restore(path.path()).unwrap();
        assert_eq!(restored.updates_ingested(), 5);
        assert_eq!(restored.connected_components().unwrap().labels(), &expected[..]);
    }

    #[test]
    fn restored_system_continues_streaming() {
        let path = tmp("continue");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(16)).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(2, 3);
        gz.save_checkpoint(path.path()).unwrap();
        drop(gz);

        let mut restored = GraphZeppelin::restore(path.path()).unwrap();
        // Delete an old edge and add a new one across the components.
        restored.update(2, 3, true);
        restored.edge_update(1, 2);
        let cc = restored.connected_components().unwrap();
        assert!(cc.same_component(0, 2));
        assert!(!cc.same_component(2, 3));
    }

    #[test]
    fn hybrid_checkpoint_bitwise_equals_dense_and_round_trips() {
        // A hybrid store (sketch_threshold > 0) densifies on save, so its
        // checkpoint must be byte-for-byte the file an always-dense system
        // writes for the same stream — and restoring it is lossless.
        let edges: Vec<(u32, u32)> =
            vec![(0, 1), (1, 2), (2, 0), (5, 6), (0, 1), (3, 0), (4, 0), (7, 0), (8, 0)];

        let dense_path = tmp("hybrid_dense");
        let mut dense = GraphZeppelin::new(GzConfig::in_ram(24)).unwrap();
        for &(a, b) in &edges {
            dense.update(a, b, false);
        }
        dense.save_checkpoint(dense_path.path()).unwrap();

        let hybrid_path = tmp("hybrid");
        let mut config = GzConfig::in_ram(24);
        config.sketch_threshold = 3; // node 0 crosses τ mid-stream
        let mut hybrid = GraphZeppelin::new(config.clone()).unwrap();
        for &(a, b) in &edges {
            hybrid.update(a, b, false);
        }
        hybrid.flush();
        assert!(hybrid.rep_stats().promoted >= 1, "node 0 should have promoted");
        assert!(hybrid.rep_stats().sparse > 0, "most nodes should still be sparse");
        let expected = hybrid.connected_components().unwrap().labels().to_vec();
        hybrid.save_checkpoint(hybrid_path.path()).unwrap();

        assert_eq!(
            std::fs::read(hybrid_path.path()).unwrap(),
            std::fs::read(dense_path.path()).unwrap(),
            "hybrid checkpoint must densify to the always-dense byte stream"
        );

        // Restore back into a hybrid config: state loads dense (sparse sets
        // are retired), answers are preserved, and streaming continues.
        let mut restored = GraphZeppelin::restore_with_config(hybrid_path.path(), config).unwrap();
        assert_eq!(restored.rep_stats().sparse, 0, "restored state is fully dense");
        assert_eq!(restored.connected_components().unwrap().labels(), &expected[..]);
        restored.update(5, 6, true);
        let cc = restored.connected_components().unwrap();
        assert!(!cc.same_component(5, 6));
    }

    #[test]
    fn mismatched_config_rejected() {
        let path = tmp("mismatch");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(16)).unwrap();
        gz.edge_update(0, 1);
        gz.save_checkpoint(path.path()).unwrap();

        let mut wrong = GzConfig::in_ram(16);
        wrong.seed = 12345; // different hash functions: must refuse
        assert!(matches!(
            GraphZeppelin::restore_with_config(path.path(), wrong),
            Err(GzError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_non_checkpoint_files() {
        let path = tmp("garbage");
        std::fs::write(path.path(), b"definitely not a checkpoint").unwrap();
        assert!(GraphZeppelin::restore(path.path()).is_err());
    }

    #[test]
    fn header_readable_without_payload_scan() {
        let path = tmp("header");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(64)).unwrap();
        gz.edge_update(3, 4);
        gz.save_checkpoint(path.path()).unwrap();
        let h = GraphZeppelin::checkpoint_header(path.path()).unwrap();
        assert_eq!(h.num_nodes, 64);
        assert_eq!(h.updates_ingested, 1);
    }
}
