//! Checkpointing: persist the entire sketch state and resume later.
//!
//! Linear sketches make this trivial in principle — the whole system state
//! is the `V × O(log V)` bucket arrays plus the seeds that define the hash
//! functions — and very useful in practice: a stream can be ingested across
//! process restarts, or sketches shipped from an ingestion machine to a
//! query machine (the coordinator/shard split of [`crate::sharding`]).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    [u8;4] = b"GZC2"   — v2: single-hash column derivation (DESIGN.md §9)
//! num_nodes u64, seed u64, rounds u32, columns u32
//! updates   u64      — updates ingested so far (informational)
//! payload   num_nodes × node_sketch_serialized_bytes
//! ```
//!
//! A second format, `GZS2`, checkpoints a *single shard* of the sharded
//! system (DESIGN.md §14): the same per-node payload but restricted to the
//! shard's owned vertices (in owned-slot order), plus the shard topology
//! and the batch sequence number the state covers — the durable point the
//! coordinator's replay log resumes from after a worker dies:
//!
//! ```text
//! magic    [u8;4] = b"GZS2"
//! num_nodes u64, seed u64, rounds u32, columns u32
//! shard_index u32, num_shards u32
//! seq        u64  — coordinator batches absorbed when the checkpoint was cut
//! owned      u64  — sketches that follow
//! payload    owned × node_sketch_serialized_bytes (owned-slot order)
//! ```
//!
//! Both readers validate the *exact* file length against the header before
//! allocating or deserializing anything: a truncated file, a short sketch
//! payload, and trailing garbage all surface as a clean
//! [`GzError::InvalidConfig`], never a panic or a partial restore. Shard
//! checkpoints are written to a temp file and atomically renamed into
//! place, so a crash mid-write can never regress the durable state a prior
//! `CheckpointAck` promised.

use crate::config::GzConfig;
use crate::error::GzError;
use crate::node_sketch::{CubeNodeSketch, SketchParams};
use crate::system::GraphZeppelin;
use gz_hash::xxh64;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

// v1 checkpoints ("GZC1") predate the single-hash column derivation
// (DESIGN.md §9): their bucket payloads were built from the old `h1`/`h2`
// pair and cannot merge with sketches hashed under the current scheme, so
// the magic refuses them instead of silently restoring corrupt state.
const MAGIC: [u8; 4] = *b"GZC2";
const SHARD_MAGIC: [u8; 4] = *b"GZS2";

/// Byte size of the fixed GZC2 header.
const HEADER_BYTES: u64 = 4 + 8 + 8 + 4 + 4 + 8;
/// Byte size of the fixed GZS2 header.
const SHARD_HEADER_BYTES: u64 = 4 + 8 + 8 + 4 + 4 + 4 + 4 + 8 + 8;

/// Sanity caps on header fields: real configs sit orders of magnitude
/// below these, so anything larger is a corrupt or hostile file — refuse
/// it before a `Vec::with_capacity` turns the lie into an allocation.
const MAX_ROUNDS: u32 = 1 << 12;
const MAX_COLUMNS: u32 = 1 << 20;

fn corrupt(path: &Path, what: impl std::fmt::Display) -> GzError {
    GzError::InvalidConfig(format!("corrupt checkpoint {}: {what}", path.display()))
}

/// Check that `path`'s length is exactly `header + count × node_bytes`.
/// Catches truncation (short sketch payloads) and trailing garbage alike,
/// before anything is allocated from untrusted counts.
fn check_payload_len(
    path: &Path,
    header_bytes: u64,
    count: u64,
    node_bytes: usize,
) -> Result<(), GzError> {
    let expected = count
        .checked_mul(node_bytes as u64)
        .and_then(|p| p.checked_add(header_bytes))
        .ok_or_else(|| corrupt(path, "node count overflows the payload size"))?;
    let actual = std::fs::metadata(path)?.len();
    if actual != expected {
        return Err(corrupt(
            path,
            format!(
                "file is {actual} bytes, expected {expected} \
                 ({count} sketches of {node_bytes} bytes)"
            ),
        ));
    }
    Ok(())
}

/// Header of a checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Vertex universe size.
    pub num_nodes: u64,
    /// Master seed (hash functions are derived from it).
    pub seed: u64,
    /// Rounds per node sketch.
    pub rounds: u32,
    /// Sketch columns.
    pub columns: u32,
    /// Updates ingested when the checkpoint was taken.
    pub updates_ingested: u64,
}

impl GraphZeppelin {
    /// Flush all buffered updates and write the sketch state to `path`.
    pub fn save_checkpoint(&mut self, path: &Path) -> Result<CheckpointHeader, GzError> {
        self.flush();
        let params = self.params().clone();
        let header = CheckpointHeader {
            num_nodes: self.config().num_nodes,
            seed: self.config().seed,
            rounds: params.rounds() as u32,
            columns: self.config().num_columns,
            updates_ingested: self.updates_ingested(),
        };

        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::with_capacity(1 << 20, file);
        w.write_all(&MAGIC)?;
        w.write_all(&header.num_nodes.to_le_bytes())?;
        w.write_all(&header.seed.to_le_bytes())?;
        w.write_all(&header.rounds.to_le_bytes())?;
        w.write_all(&header.columns.to_le_bytes())?;
        w.write_all(&header.updates_ingested.to_le_bytes())?;

        let mut buf = Vec::with_capacity(params.node_sketch_serialized_bytes());
        for sketch in self.snapshot_sketches() {
            buf.clear();
            params.serialize_node_sketch(&sketch, &mut buf);
            w.write_all(&buf)?;
        }
        w.flush()?;
        Ok(header)
    }

    /// Read just the header of a checkpoint file.
    pub fn checkpoint_header(path: &Path) -> Result<CheckpointHeader, GzError> {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::new(file);
        read_header(&mut r)
    }

    /// Restore a system from a checkpoint with default runtime settings
    /// (in-RAM store, default buffering/workers).
    pub fn restore(path: &Path) -> Result<GraphZeppelin, GzError> {
        let header = Self::checkpoint_header(path)?;
        let mut config = GzConfig::in_ram(header.num_nodes);
        config.seed = header.seed;
        config.num_rounds = Some(header.rounds);
        config.num_columns = header.columns;
        Self::restore_with_config(path, config)
    }

    /// Restore with explicit runtime settings. The config's sketch-defining
    /// fields (`num_nodes`, `seed`, rounds, `num_columns`) must match the
    /// checkpoint or an [`GzError::InvalidConfig`] is returned.
    pub fn restore_with_config(path: &Path, config: GzConfig) -> Result<GraphZeppelin, GzError> {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::with_capacity(1 << 20, file);
        let header = read_header(&mut r)?;

        if config.num_nodes != header.num_nodes
            || config.seed != header.seed
            || config.rounds() != header.rounds
            || config.num_columns != header.columns
        {
            return Err(GzError::InvalidConfig(format!(
                "config does not match checkpoint header {header:?}"
            )));
        }

        let params =
            SketchParams::new(header.num_nodes, header.rounds, header.columns, header.seed);
        let node_bytes = params.node_sketch_serialized_bytes();
        check_payload_len(path, HEADER_BYTES, header.num_nodes, node_bytes)?;

        let mut gz = GraphZeppelin::new(config)?;
        let mut buf = vec![0u8; node_bytes];
        let mut sketches = Vec::with_capacity(header.num_nodes as usize);
        for _ in 0..header.num_nodes {
            r.read_exact(&mut buf).map_err(|e| corrupt(path, format!("short payload: {e}")))?;
            sketches.push(params.deserialize_node_sketch(&buf));
        }
        gz.load_sketches(sketches, header.updates_ingested);
        Ok(gz)
    }
}

/// Reader helpers that turn a short read into a clean "truncated" error
/// rather than a bare `UnexpectedEof`.
struct HeaderReader<'a, R: Read> {
    r: &'a mut R,
}

impl<R: Read> HeaderReader<'_, R> {
    fn u32(&mut self) -> Result<u32, GzError> {
        let mut buf = [0u8; 4];
        self.r.read_exact(&mut buf).map_err(truncated_header)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, GzError> {
        let mut buf = [0u8; 8];
        self.r.read_exact(&mut buf).map_err(truncated_header)?;
        Ok(u64::from_le_bytes(buf))
    }
}

fn truncated_header(e: std::io::Error) -> GzError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        GzError::InvalidConfig("truncated checkpoint header".into())
    } else {
        GzError::Io(e)
    }
}

/// Bounds-check the sketch-defining header fields shared by both formats.
fn check_header_fields(num_nodes: u64, rounds: u32, columns: u32) -> Result<(), GzError> {
    if num_nodes < 2 || num_nodes > u64::from(u32::MAX) {
        return Err(GzError::InvalidConfig(format!(
            "checkpoint num_nodes {num_nodes} outside [2, 2^32)"
        )));
    }
    if rounds == 0 || rounds > MAX_ROUNDS {
        return Err(GzError::InvalidConfig(format!(
            "checkpoint rounds {rounds} outside [1, {MAX_ROUNDS}]"
        )));
    }
    if columns == 0 || columns > MAX_COLUMNS {
        return Err(GzError::InvalidConfig(format!(
            "checkpoint columns {columns} outside [1, {MAX_COLUMNS}]"
        )));
    }
    Ok(())
}

fn read_header(r: &mut impl Read) -> Result<CheckpointHeader, GzError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(truncated_header)?;
    if magic != MAGIC {
        return Err(GzError::InvalidConfig("not a GraphZeppelin checkpoint".into()));
    }
    let mut hr = HeaderReader { r };
    let num_nodes = hr.u64()?;
    let seed = hr.u64()?;
    let rounds = hr.u32()?;
    let columns = hr.u32()?;
    let updates_ingested = hr.u64()?;
    check_header_fields(num_nodes, rounds, columns)?;
    Ok(CheckpointHeader { num_nodes, seed, rounds, columns, updates_ingested })
}

/// Header of a per-shard (`GZS2`) checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCheckpointHeader {
    /// Vertex universe size (the whole graph's, not the shard's).
    pub num_nodes: u64,
    /// Master seed.
    pub seed: u64,
    /// Rounds per node sketch.
    pub rounds: u32,
    /// Sketch columns.
    pub columns: u32,
    /// Which shard this state belongs to.
    pub shard_index: u32,
    /// Fleet size the shard was partitioned for.
    pub num_shards: u32,
    /// Coordinator batches the state covers — the replay log resumes
    /// strictly after this point.
    pub seq: u64,
    /// Owned sketches in the payload.
    pub owned_count: u64,
}

fn read_shard_header(r: &mut impl Read) -> Result<ShardCheckpointHeader, GzError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(truncated_header)?;
    if magic != SHARD_MAGIC {
        return Err(GzError::InvalidConfig("not a GraphZeppelin shard checkpoint".into()));
    }
    let mut hr = HeaderReader { r };
    let num_nodes = hr.u64()?;
    let seed = hr.u64()?;
    let rounds = hr.u32()?;
    let columns = hr.u32()?;
    let shard_index = hr.u32()?;
    let num_shards = hr.u32()?;
    let seq = hr.u64()?;
    let owned_count = hr.u64()?;
    check_header_fields(num_nodes, rounds, columns)?;
    if num_shards == 0 || shard_index >= num_shards {
        return Err(GzError::InvalidConfig(format!(
            "shard checkpoint names shard {shard_index} of {num_shards}"
        )));
    }
    if owned_count > num_nodes {
        return Err(GzError::InvalidConfig(format!(
            "shard checkpoint owns {owned_count} of {num_nodes} nodes"
        )));
    }
    Ok(ShardCheckpointHeader {
        num_nodes,
        seed,
        rounds,
        columns,
        shard_index,
        num_shards,
        seq,
        owned_count,
    })
}

/// Read just the header of a shard checkpoint file.
pub fn read_shard_checkpoint_header(path: &Path) -> Result<ShardCheckpointHeader, GzError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    read_shard_header(&mut r)
}

/// Persist a shard's owned sketch state (already densified by
/// `snapshot_owned`) to `path`, atomically: the bytes land in a sibling
/// temp file, are fsynced, and only then renamed over `path`. A crash at
/// any point leaves either the old checkpoint or the new one — never a
/// torn file that would silently regress the durable `seq`.
pub fn save_shard_checkpoint(
    path: &Path,
    header: &ShardCheckpointHeader,
    params: &SketchParams,
    sketches: &[(u32, CubeNodeSketch)],
) -> Result<(), GzError> {
    debug_assert_eq!(sketches.len() as u64, header.owned_count);
    let tmp: PathBuf = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        os.into()
    };
    let file = std::fs::File::create(&tmp)?;
    let mut w = BufWriter::with_capacity(1 << 20, file);
    w.write_all(&SHARD_MAGIC)?;
    w.write_all(&header.num_nodes.to_le_bytes())?;
    w.write_all(&header.seed.to_le_bytes())?;
    w.write_all(&header.rounds.to_le_bytes())?;
    w.write_all(&header.columns.to_le_bytes())?;
    w.write_all(&header.shard_index.to_le_bytes())?;
    w.write_all(&header.num_shards.to_le_bytes())?;
    w.write_all(&header.seq.to_le_bytes())?;
    w.write_all(&header.owned_count.to_le_bytes())?;

    let mut buf = Vec::with_capacity(params.node_sketch_serialized_bytes());
    for (_, sketch) in sketches {
        buf.clear();
        params.serialize_node_sketch(sketch, &mut buf);
        w.write_all(&buf)?;
    }
    w.flush()?;
    let file = w.into_inner().map_err(|e| GzError::Io(e.into_error()))?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a shard checkpoint, validating every identity field against
/// `expect` (whose `seq` is ignored — that is the answer, not a
/// precondition). Returns the owned sketches in owned-slot order plus the
/// sequence number the state covers.
pub fn load_shard_checkpoint(
    path: &Path,
    params: &SketchParams,
    expect: &ShardCheckpointHeader,
) -> Result<(Vec<CubeNodeSketch>, u64), GzError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::with_capacity(1 << 20, file);
    let header = read_shard_header(&mut r)?;

    if header.num_nodes != expect.num_nodes
        || header.seed != expect.seed
        || header.rounds != expect.rounds
        || header.columns != expect.columns
        || header.shard_index != expect.shard_index
        || header.num_shards != expect.num_shards
        || header.owned_count != expect.owned_count
    {
        return Err(GzError::InvalidConfig(format!(
            "shard checkpoint {} does not match this shard's parameters: \
             file has {header:?}, expected {expect:?}",
            path.display()
        )));
    }

    let node_bytes = params.node_sketch_serialized_bytes();
    check_payload_len(path, SHARD_HEADER_BYTES, header.owned_count, node_bytes)?;

    let mut buf = vec![0u8; node_bytes];
    let mut sketches = Vec::with_capacity(header.owned_count as usize);
    for _ in 0..header.owned_count {
        r.read_exact(&mut buf).map_err(|e| corrupt(path, format!("short payload: {e}")))?;
        sketches.push(params.deserialize_node_sketch(&buf));
    }
    Ok((sketches, header.seq))
}

// ---------------------------------------------------------------------------
// Serve durability: update WAL + round manifest
// ---------------------------------------------------------------------------

const WAL_MAGIC: [u8; 4] = *b"GZW1";
const MANIFEST_MAGIC: [u8; 4] = *b"GZSM";

/// Bytes one WAL update occupies: `u` + `v` + the delete flag.
const WAL_UPDATE_BYTES: usize = 9;
/// Bytes of a WAL record header: update count + payload checksum.
const WAL_RECORD_HEADER_BYTES: usize = 4 + 8;

/// Append-only write-ahead log of client edge updates, the durability layer
/// `gz serve` acks against (DESIGN.md §15). Each append is one record:
///
/// ```text
/// count    u32  — updates in this record
/// checksum u64  — xxh64 of the payload, seeded with `count`
/// payload  count × (u u32, v u32, is_delete u8)
/// ```
///
/// and is fsynced before the daemon acks the batch, so an acked update is
/// durable by definition. Recovery replays records until the first torn or
/// corrupt one — a crash mid-append — truncates the tail there, and leaves
/// the file positioned for further appends. Because the WAL is replayed in
/// append order on top of a checkpoint that covers everything before it,
/// the recovered stream is a prefix-preserving superset of the acked
/// prefix: acked updates are always recovered, unacked in-flight ones may
/// be.
#[derive(Debug)]
pub struct UpdateWal {
    file: std::fs::File,
    buf: Vec<u8>,
}

impl UpdateWal {
    /// Create (or truncate) the WAL at `path`, writing and syncing the
    /// magic so recovery can tell "fresh log" from "not a log".
    pub fn create(path: &Path) -> Result<UpdateWal, GzError> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_data()?;
        Ok(UpdateWal { file, buf: Vec::new() })
    }

    /// Durably append one batch of updates: a single `write_all` followed
    /// by `sync_data`. After this returns the batch may be acked.
    pub fn append(&mut self, updates: &[(u32, u32, bool)]) -> Result<(), GzError> {
        let mut payload = std::mem::take(&mut self.buf);
        payload.clear();
        payload.reserve(WAL_RECORD_HEADER_BYTES + updates.len() * WAL_UPDATE_BYTES);
        payload.extend_from_slice(&(updates.len() as u32).to_le_bytes());
        payload.extend_from_slice(&[0u8; 8]); // checksum patched below
        for &(u, v, is_delete) in updates {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
            payload.push(is_delete as u8);
        }
        let checksum =
            xxh64(&payload[WAL_RECORD_HEADER_BYTES..], updates.len() as u64).to_le_bytes();
        payload[4..12].copy_from_slice(&checksum);
        let result = self.file.write_all(&payload).and_then(|()| self.file.sync_data());
        self.buf = payload;
        result.map_err(GzError::Io)
    }

    /// Open the WAL at `path`, replay every intact record into `sink`
    /// (in append order), truncate the first torn or corrupt tail, and
    /// return the log positioned for appends plus the number of updates
    /// replayed. A missing or torn-at-the-magic file is a fresh log, not an
    /// error — the only crash that produces one is a crash during
    /// [`create`](Self::create), before anything could have been acked
    /// against it.
    pub fn recover(
        path: &Path,
        sink: &mut dyn FnMut(u32, u32, bool),
    ) -> Result<(UpdateWal, u64), GzError> {
        let mut file = match std::fs::OpenOptions::new().read(true).write(true).open(path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((UpdateWal::create(path)?, 0));
            }
            Err(e) => return Err(GzError::Io(e)),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() {
            drop(file);
            return Ok((UpdateWal::create(path)?, 0));
        }
        if bytes[..4] != WAL_MAGIC {
            return Err(corrupt(path, "not an update WAL (bad magic)"));
        }

        let mut at = WAL_MAGIC.len();
        let mut replayed = 0u64;
        while let Some(header) = bytes.get(at..at + WAL_RECORD_HEADER_BYTES) {
            let count = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
            let payload_at = at + WAL_RECORD_HEADER_BYTES;
            let Some(payload) = count
                .checked_mul(WAL_UPDATE_BYTES)
                .and_then(|len| bytes.get(payload_at..payload_at + len))
            else {
                break; // torn mid-payload
            };
            if xxh64(payload, count as u64) != checksum {
                break; // torn mid-header or bit-rotted — either way, not acked-intact
            }
            for update in payload.chunks_exact(WAL_UPDATE_BYTES) {
                let u = u32::from_le_bytes(update[..4].try_into().unwrap());
                let v = u32::from_le_bytes(update[4..8].try_into().unwrap());
                sink(u, v, update[8] != 0);
            }
            replayed += count as u64;
            at = payload_at + payload.len();
        }

        file.set_len(at as u64)?;
        file.seek(SeekFrom::Start(at as u64))?;
        file.sync_data()?;
        Ok((UpdateWal { file, buf: Vec::new() }, replayed))
    }
}

/// The manifest naming `gz serve`'s current durable round (DESIGN.md §15):
/// which versioned shard-checkpoint files are authoritative and how many
/// client updates they cover. Written atomically *after* every shard file
/// of the round is complete, so the round it names is always fully on
/// disk; the WAL segment of the same round holds the updates that arrived
/// since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeManifest {
    /// Checkpoint round this manifest names (0 = fresh, no shard files).
    pub round: u64,
    /// Client updates the round's shard files cover.
    pub covered: u64,
    /// Vertex universe size — resume refuses a mismatched restart.
    pub num_nodes: u64,
    /// Master seed.
    pub seed: u64,
    /// Shard count the round's files were cut for.
    pub num_shards: u32,
}

impl ServeManifest {
    fn encode_fields(&self) -> [u8; 36] {
        let mut out = [0u8; 36];
        out[..8].copy_from_slice(&self.round.to_le_bytes());
        out[8..16].copy_from_slice(&self.covered.to_le_bytes());
        out[16..24].copy_from_slice(&self.num_nodes.to_le_bytes());
        out[24..32].copy_from_slice(&self.seed.to_le_bytes());
        out[32..36].copy_from_slice(&self.num_shards.to_le_bytes());
        out
    }

    /// Atomically publish this manifest at `path` (tmp + fsync + rename):
    /// a crash leaves either the previous round current or this one —
    /// never a torn manifest.
    pub fn save(&self, path: &Path) -> Result<(), GzError> {
        let tmp: PathBuf = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            os.into()
        };
        let fields = self.encode_fields();
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&MANIFEST_MAGIC)?;
        file.write_all(&fields)?;
        file.write_all(&xxh64(&fields, 0).to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load and validate the manifest at `path`.
    pub fn load(path: &Path) -> Result<ServeManifest, GzError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() != 4 + 36 + 8 {
            return Err(corrupt(path, format!("manifest is {} bytes, expected 48", bytes.len())));
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(corrupt(path, "not a serve manifest (bad magic)"));
        }
        let fields = &bytes[4..40];
        let checksum = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        if xxh64(fields, 0) != checksum {
            return Err(corrupt(path, "manifest checksum mismatch"));
        }
        Ok(ServeManifest {
            round: u64::from_le_bytes(fields[..8].try_into().unwrap()),
            covered: u64::from_le_bytes(fields[8..16].try_into().unwrap()),
            num_nodes: u64::from_le_bytes(fields[16..24].try_into().unwrap()),
            seed: u64::from_le_bytes(fields[24..32].try_into().unwrap()),
            num_shards: u32::from_le_bytes(fields[32..36].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-ckpt-{name}"), ".gzc")
    }

    #[test]
    fn save_restore_round_trip_preserves_answers() {
        let path = tmp("round_trip");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(32)).unwrap();
        for &(a, b) in &[(0u32, 1u32), (1, 2), (5, 6), (6, 7), (7, 5)] {
            gz.edge_update(a, b);
        }
        let expected = gz.connected_components().unwrap().labels().to_vec();
        let header = gz.save_checkpoint(path.path()).unwrap();
        assert_eq!(header.updates_ingested, 5);
        drop(gz);

        let mut restored = GraphZeppelin::restore(path.path()).unwrap();
        assert_eq!(restored.updates_ingested(), 5);
        assert_eq!(restored.connected_components().unwrap().labels(), &expected[..]);
    }

    #[test]
    fn restored_system_continues_streaming() {
        let path = tmp("continue");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(16)).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(2, 3);
        gz.save_checkpoint(path.path()).unwrap();
        drop(gz);

        let mut restored = GraphZeppelin::restore(path.path()).unwrap();
        // Delete an old edge and add a new one across the components.
        restored.update(2, 3, true);
        restored.edge_update(1, 2);
        let cc = restored.connected_components().unwrap();
        assert!(cc.same_component(0, 2));
        assert!(!cc.same_component(2, 3));
    }

    #[test]
    fn hybrid_checkpoint_bitwise_equals_dense_and_round_trips() {
        // A hybrid store (sketch_threshold > 0) densifies on save, so its
        // checkpoint must be byte-for-byte the file an always-dense system
        // writes for the same stream — and restoring it is lossless.
        let edges: Vec<(u32, u32)> =
            vec![(0, 1), (1, 2), (2, 0), (5, 6), (0, 1), (3, 0), (4, 0), (7, 0), (8, 0)];

        let dense_path = tmp("hybrid_dense");
        let mut dense = GraphZeppelin::new(GzConfig::in_ram(24)).unwrap();
        for &(a, b) in &edges {
            dense.update(a, b, false);
        }
        dense.save_checkpoint(dense_path.path()).unwrap();

        let hybrid_path = tmp("hybrid");
        let mut config = GzConfig::in_ram(24);
        config.sketch_threshold = 3; // node 0 crosses τ mid-stream
        let mut hybrid = GraphZeppelin::new(config.clone()).unwrap();
        for &(a, b) in &edges {
            hybrid.update(a, b, false);
        }
        hybrid.flush();
        assert!(hybrid.rep_stats().promoted >= 1, "node 0 should have promoted");
        assert!(hybrid.rep_stats().sparse > 0, "most nodes should still be sparse");
        let expected = hybrid.connected_components().unwrap().labels().to_vec();
        hybrid.save_checkpoint(hybrid_path.path()).unwrap();

        assert_eq!(
            std::fs::read(hybrid_path.path()).unwrap(),
            std::fs::read(dense_path.path()).unwrap(),
            "hybrid checkpoint must densify to the always-dense byte stream"
        );

        // Restore back into a hybrid config: state loads dense (sparse sets
        // are retired), answers are preserved, and streaming continues.
        let mut restored = GraphZeppelin::restore_with_config(hybrid_path.path(), config).unwrap();
        assert_eq!(restored.rep_stats().sparse, 0, "restored state is fully dense");
        assert_eq!(restored.connected_components().unwrap().labels(), &expected[..]);
        restored.update(5, 6, true);
        let cc = restored.connected_components().unwrap();
        assert!(!cc.same_component(5, 6));
    }

    #[test]
    fn mismatched_config_rejected() {
        let path = tmp("mismatch");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(16)).unwrap();
        gz.edge_update(0, 1);
        gz.save_checkpoint(path.path()).unwrap();

        let mut wrong = GzConfig::in_ram(16);
        wrong.seed = 12345; // different hash functions: must refuse
        assert!(matches!(
            GraphZeppelin::restore_with_config(path.path(), wrong),
            Err(GzError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_non_checkpoint_files() {
        let path = tmp("garbage");
        std::fs::write(path.path(), b"definitely not a checkpoint").unwrap();
        assert!(GraphZeppelin::restore(path.path()).is_err());
    }

    #[test]
    fn header_readable_without_payload_scan() {
        let path = tmp("header");
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(64)).unwrap();
        gz.edge_update(3, 4);
        gz.save_checkpoint(path.path()).unwrap();
        let h = GraphZeppelin::checkpoint_header(path.path()).unwrap();
        assert_eq!(h.num_nodes, 64);
        assert_eq!(h.updates_ingested, 1);
    }

    /// Write a valid checkpoint and return its bytes.
    fn valid_checkpoint_bytes(path: &Path) -> Vec<u8> {
        let mut gz = GraphZeppelin::new(GzConfig::in_ram(16)).unwrap();
        gz.edge_update(0, 1);
        gz.edge_update(2, 3);
        gz.save_checkpoint(path).unwrap();
        std::fs::read(path).unwrap()
    }

    #[test]
    fn truncated_header_is_a_clean_error() {
        let path = tmp("trunc_header");
        let bytes = valid_checkpoint_bytes(path.path());
        // Every prefix of the header must fail cleanly — magic-only,
        // mid-field, and the full-header-no-payload boundary.
        for cut in [0usize, 3, 4, 11, 20, 35] {
            std::fs::write(path.path(), &bytes[..cut]).unwrap();
            let err = GraphZeppelin::restore(path.path()).err().expect("must fail");
            assert!(matches!(err, GzError::InvalidConfig(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn short_sketch_payload_is_a_clean_error() {
        let path = tmp("trunc_payload");
        let bytes = valid_checkpoint_bytes(path.path());
        // Cut mid-payload: header parses, the length check must refuse.
        let cut = 36 + (bytes.len() - 36) / 2;
        std::fs::write(path.path(), &bytes[..cut]).unwrap();
        let err = GraphZeppelin::restore(path.path()).err().expect("must fail");
        assert!(matches!(err, GzError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("bytes"), "should name the size mismatch: {err}");
    }

    #[test]
    fn trailing_garbage_is_a_clean_error() {
        let path = tmp("trailing");
        let mut bytes = valid_checkpoint_bytes(path.path());
        bytes.extend_from_slice(b"junk");
        std::fs::write(path.path(), &bytes).unwrap();
        let err = GraphZeppelin::restore(path.path()).err().expect("must fail");
        assert!(matches!(err, GzError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn absurd_header_fields_are_refused_before_allocation() {
        let path = tmp("absurd");
        let bytes = valid_checkpoint_bytes(path.path());
        // num_nodes = u64::MAX: must fail on the bounds check, not OOM.
        let mut huge = bytes.clone();
        huge[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(path.path(), &huge).unwrap();
        assert!(matches!(GraphZeppelin::restore(path.path()), Err(GzError::InvalidConfig(_))));
        // rounds = u32::MAX likewise.
        let mut huge = bytes;
        huge[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(path.path(), &huge).unwrap();
        assert!(matches!(GraphZeppelin::restore(path.path()), Err(GzError::InvalidConfig(_))));
    }

    fn shard_fixture() -> (SketchParams, ShardCheckpointHeader, Vec<(u32, CubeNodeSketch)>) {
        let params = SketchParams::new(32, 6, 3, 0xABCD);
        // Shard 1 of 2 owns the odd nodes.
        let sketches: Vec<(u32, CubeNodeSketch)> =
            (0..16u32).map(|i| (2 * i + 1, params.new_node_sketch())).collect();
        let header = ShardCheckpointHeader {
            num_nodes: 32,
            seed: 0xABCD,
            rounds: 6,
            columns: 3,
            shard_index: 1,
            num_shards: 2,
            seq: 41,
            owned_count: sketches.len() as u64,
        };
        (params, header, sketches)
    }

    #[test]
    fn shard_checkpoint_round_trips_and_reports_seq() {
        let path = tmp("shard_rt");
        let (params, header, sketches) = shard_fixture();
        save_shard_checkpoint(path.path(), &header, &params, &sketches).unwrap();

        assert_eq!(read_shard_checkpoint_header(path.path()).unwrap(), header);
        let (restored, seq) = load_shard_checkpoint(path.path(), &params, &header).unwrap();
        assert_eq!(seq, 41);
        assert_eq!(restored.len(), sketches.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (got, (_, want)) in restored.iter().zip(&sketches) {
            a.clear();
            b.clear();
            params.serialize_node_sketch(got, &mut a);
            params.serialize_node_sketch(want, &mut b);
            assert_eq!(a, b, "restored sketch must be bit-identical");
        }
        // The atomic-rename temp file must not linger.
        let mut tmp_os = path.path().as_os_str().to_os_string();
        tmp_os.push(".tmp");
        assert!(!PathBuf::from(tmp_os).exists());
    }

    #[test]
    fn shard_checkpoint_rejects_wrong_shard_and_malformed_files() {
        let path = tmp("shard_bad");
        let (params, header, sketches) = shard_fixture();
        save_shard_checkpoint(path.path(), &header, &params, &sketches).unwrap();

        // Wrong shard identity: same file, different expectation.
        let mut other = header;
        other.shard_index = 0;
        assert!(matches!(
            load_shard_checkpoint(path.path(), &params, &other),
            Err(GzError::InvalidConfig(_))
        ));

        // GZC2 magic on a shard-restore path is refused.
        let gzc2 = tmp("shard_bad_gzc2");
        valid_checkpoint_bytes(gzc2.path());
        assert!(read_shard_checkpoint_header(gzc2.path()).is_err());

        // Truncation and trailing garbage are clean errors.
        let bytes = std::fs::read(path.path()).unwrap();
        for cut in [0usize, 7, 30, 51, bytes.len() - 5] {
            std::fs::write(path.path(), &bytes[..cut]).unwrap();
            let err = load_shard_checkpoint(path.path(), &params, &header).unwrap_err();
            assert!(matches!(err, GzError::InvalidConfig(_)), "cut {cut}: {err}");
        }
        let mut garbage = bytes.clone();
        garbage.push(0xFF);
        std::fs::write(path.path(), &garbage).unwrap();
        assert!(matches!(
            load_shard_checkpoint(path.path(), &params, &header),
            Err(GzError::InvalidConfig(_))
        ));
    }

    fn recover_all(path: &Path) -> (UpdateWal, u64, Vec<(u32, u32, bool)>) {
        let mut got = Vec::new();
        let (wal, replayed) = UpdateWal::recover(path, &mut |u, v, d| got.push((u, v, d))).unwrap();
        (wal, replayed, got)
    }

    #[test]
    fn wal_round_trips_batches_in_order() {
        let path = tmp("wal_round_trip");
        let mut wal = UpdateWal::create(path.path()).unwrap();
        wal.append(&[(0, 1, false), (1, 2, false)]).unwrap();
        wal.append(&[]).unwrap();
        wal.append(&[(0, 1, true)]).unwrap();
        drop(wal);

        let (mut wal, replayed, got) = recover_all(path.path());
        assert_eq!(replayed, 3);
        assert_eq!(got, vec![(0, 1, false), (1, 2, false), (0, 1, true)]);

        // Recovery leaves the log appendable: new records land after the
        // replayed ones.
        wal.append(&[(5, 6, false)]).unwrap();
        drop(wal);
        let (_, replayed, got) = recover_all(path.path());
        assert_eq!(replayed, 4);
        assert_eq!(got.last(), Some(&(5, 6, false)));
    }

    #[test]
    fn wal_missing_file_is_a_fresh_log() {
        let path = tmp("wal_missing");
        let (mut wal, replayed, got) = recover_all(path.path());
        assert_eq!((replayed, got.len()), (0, 0));
        wal.append(&[(1, 2, false)]).unwrap();
        drop(wal);
        let (_, replayed, _) = recover_all(path.path());
        assert_eq!(replayed, 1);
    }

    #[test]
    fn wal_truncates_torn_tail_but_keeps_intact_prefix() {
        let path = tmp("wal_torn");
        let mut wal = UpdateWal::create(path.path()).unwrap();
        wal.append(&[(0, 1, false)]).unwrap();
        wal.append(&[(2, 3, false), (3, 4, false)]).unwrap();
        drop(wal);
        let full = std::fs::read(path.path()).unwrap();

        // Tear the file at every byte boundary inside the second record:
        // the first must always survive, the second never half-apply.
        let first_record_end = 4 + 12 + 9;
        for cut in first_record_end..full.len() {
            std::fs::write(path.path(), &full[..cut]).unwrap();
            let (_, replayed, got) = recover_all(path.path());
            assert_eq!(replayed, 1, "cut {cut}");
            assert_eq!(got, vec![(0, 1, false)], "cut {cut}");
            // ...and the torn tail is gone: recovery is idempotent.
            assert_eq!(std::fs::metadata(path.path()).unwrap().len(), first_record_end as u64);
        }

        // A tear inside the magic is a fresh log.
        std::fs::write(path.path(), &full[..2]).unwrap();
        let (_, replayed, _) = recover_all(path.path());
        assert_eq!(replayed, 0);
    }

    #[test]
    fn wal_detects_checksum_corruption() {
        let path = tmp("wal_bitrot");
        let mut wal = UpdateWal::create(path.path()).unwrap();
        wal.append(&[(0, 1, false)]).unwrap();
        wal.append(&[(2, 3, false)]).unwrap();
        drop(wal);

        // Flip one payload byte in the second record: replay stops before
        // it.
        let mut bytes = std::fs::read(path.path()).unwrap();
        let second_payload = 4 + 12 + 9 + 12;
        bytes[second_payload] ^= 0x40;
        std::fs::write(path.path(), &bytes).unwrap();
        let (_, replayed, got) = recover_all(path.path());
        assert_eq!(replayed, 1);
        assert_eq!(got, vec![(0, 1, false)]);
    }

    #[test]
    fn wal_refuses_foreign_files() {
        let path = tmp("wal_foreign");
        std::fs::write(path.path(), b"definitely not a WAL").unwrap();
        let err = UpdateWal::recover(path.path(), &mut |_, _, _| {}).unwrap_err();
        assert!(matches!(err, GzError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn serve_manifest_round_trips_and_rejects_corruption() {
        let path = tmp("manifest");
        let manifest = ServeManifest {
            round: 7,
            covered: 123_456,
            num_nodes: 1 << 20,
            seed: 0x5EED,
            num_shards: 4,
        };
        manifest.save(path.path()).unwrap();
        assert_eq!(ServeManifest::load(path.path()).unwrap(), manifest);

        // Overwrites are atomic replacements of the whole manifest.
        let next = ServeManifest { round: 8, covered: 200_000, ..manifest };
        next.save(path.path()).unwrap();
        assert_eq!(ServeManifest::load(path.path()).unwrap(), next);

        // Any single-byte corruption is caught by length, magic, or
        // checksum.
        let bytes = std::fs::read(path.path()).unwrap();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            std::fs::write(path.path(), &bad).unwrap();
            assert!(ServeManifest::load(path.path()).is_err(), "byte {at}");
        }
        std::fs::write(path.path(), &bytes[..20]).unwrap();
        assert!(ServeManifest::load(path.path()).is_err());
    }
}
