//! Closed-form memory model (paper §5.1 and Figure 11).
//!
//! The paper states: "On initialization GraphZeppelin allocates log(V)
//! CubeSketch data structures for each node in the graph, for a total sketch
//! size of approximately 280·V·log²(V) bytes", derived from 12-byte buckets,
//! 7 columns, `log(V²) = 2·log(V)` rows, and `log_{3/2}(V)` rounds:
//! `12 × 7 × 2·log₂(V) × 1.71·log₂(V) ≈ 287·log₂²(V)` bytes per node. The
//! exact model below (driven by the real sketch geometry) is what Figure 11
//! reports; the approximation is kept for cross-checking against the paper's
//! text.

use crate::config::default_rounds;
use gz_sketch::geometry::SketchGeometry;

/// Exact GraphZeppelin sketch bytes for `num_nodes` vertices with the
/// default geometry (7 columns, `⌈log_{3/2} V⌉` rounds).
pub fn gz_sketch_bytes(num_nodes: u64) -> u64 {
    gz_sketch_bytes_with(num_nodes, default_rounds(num_nodes), 7)
}

/// Exact sketch bytes with explicit rounds/columns.
pub fn gz_sketch_bytes_with(num_nodes: u64, rounds: u32, columns: u32) -> u64 {
    let vector_len = gz_graph::edge_index_count(num_nodes).max(1);
    let geom = SketchGeometry::with_columns(vector_len, columns);
    num_nodes * rounds as u64 * geom.cube_sketch_bytes() as u64
}

/// The paper's closed-form approximation: `280·V·log₂²(V)` bytes.
pub fn paper_approximation_bytes(num_nodes: u64) -> u64 {
    let lg = (num_nodes.max(2) as f64).log2();
    (280.0 * num_nodes as f64 * lg * lg) as u64
}

/// Resident sketch bytes of a *hybrid* store (`sketch_threshold > 0`):
/// promoted nodes carry the full dense stack; each still-sparse node costs
/// only 4 bytes per live neighbor (its exact toggle-set). On a sparse
/// stream where few vertices cross τ this is the tentpole's memory win —
/// e.g. all-sparse with average degree `d̄` costs `4·d̄·V` bytes against
/// the dense model's `~280·V·log²(V)`.
pub fn gz_hybrid_sketch_bytes(
    num_nodes: u64,
    rounds: u32,
    columns: u32,
    promoted: u64,
    sparse_entries: u64,
) -> u64 {
    let per_dense = gz_sketch_bytes_with(num_nodes, rounds, columns) / num_nodes.max(1);
    promoted * per_dense + sparse_entries * 4
}

/// Bytes for an explicit bit-matrix representation (`C(V,2)` bits) — the
/// dense-graph lossless baseline the sketches undercut.
pub fn adjacency_matrix_bytes(num_nodes: u64) -> u64 {
    gz_graph::edge_index_count(num_nodes).div_ceil(8)
}

/// The vertex count above which GraphZeppelin's sketches are smaller than a
/// dense adjacency matrix (the asymptotic `O(V/log³V)` advantage has a
/// concrete crossover; Figure 11b locates it empirically for Aspen/Terrace).
pub fn crossover_vs_matrix() -> u64 {
    let mut v = 2u64;
    while gz_sketch_bytes(v) >= adjacency_matrix_bytes(v) {
        v *= 2;
        if v > (1 << 40) {
            break;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_model_tracks_paper_approximation() {
        // Within a small constant factor across the Figure 11 range.
        for scale in [13u32, 15, 16, 17, 18] {
            let v = 1u64 << scale;
            let exact = gz_sketch_bytes(v) as f64;
            let approx = paper_approximation_bytes(v) as f64;
            let ratio = exact / approx;
            assert!(
                (0.4..2.5).contains(&ratio),
                "scale {scale}: exact {exact:.3e} vs approx {approx:.3e} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn kron13_size_near_paper_measurement() {
        // Paper Figure 11a: GraphZeppelin uses 0.58 GiB on kron13 (2^13
        // nodes). The model should land in the same ballpark.
        let bytes = gz_sketch_bytes(1 << 13) as f64;
        let gib = bytes / (1u64 << 30) as f64;
        assert!((0.2..1.5).contains(&gib), "kron13 model {gib:.2} GiB vs paper 0.58 GiB");
    }

    #[test]
    fn sketches_beat_matrix_for_large_dense_graphs() {
        let crossover = crossover_vs_matrix();
        // The asymptotic advantage must kick in at a realistic scale.
        assert!(crossover > 1 << 8, "crossover {crossover} suspiciously small");
        assert!(crossover <= 1 << 24, "crossover {crossover} never reached");
        // And beyond it, the gap must widen.
        let at = gz_sketch_bytes(crossover) as f64 / adjacency_matrix_bytes(crossover) as f64;
        let beyond =
            gz_sketch_bytes(crossover * 16) as f64 / adjacency_matrix_bytes(crossover * 16) as f64;
        assert!(beyond < at);
    }

    #[test]
    fn hybrid_model_interpolates_between_sparse_and_dense() {
        let v = 1u64 << 13;
        let rounds = default_rounds(v);
        let dense = gz_sketch_bytes(v);
        // All promoted, nothing sparse: exactly the dense model.
        assert_eq!(gz_hybrid_sketch_bytes(v, rounds, 7, v, 0), dense);
        // All sparse at average degree 8: 4 bytes per entry, far below
        // dense — the ≥5× tentpole target holds with lots of slack.
        let sparse = gz_hybrid_sketch_bytes(v, rounds, 7, 0, v * 8);
        assert_eq!(sparse, v * 8 * 4);
        assert!(sparse * 5 <= dense, "sparse {sparse} vs dense {dense}");
        // Mixed census sits strictly between.
        let mixed = gz_hybrid_sketch_bytes(v, rounds, 7, v / 10, (v - v / 10) * 8);
        assert!(sparse < mixed && mixed < dense);
    }

    #[test]
    fn grows_superlinearly_but_subquadratically() {
        let a = gz_sketch_bytes(1 << 12) as f64;
        let b = gz_sketch_bytes(1 << 16) as f64;
        let factor = b / a;
        // 16× more nodes: between 16× (linear) and 256× (quadratic).
        assert!((16.0..200.0).contains(&factor), "factor {factor}");
    }
}
