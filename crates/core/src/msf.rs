//! Sketch-based minimum spanning forest — the "finding minimum spanning
//! trees" application the paper names for CubeSketch (§3.1), after
//! Ahn–Guha–McGregor's leveled construction.
//!
//! Edge weights are quantized to `L` integer levels. Level `ℓ` maintains a
//! full connectivity sketch of the subgraph of edges with weight `≤ ℓ`
//! (prefix structure: an update of weight `w` toggles levels `w..L`).
//! Boruvka then picks, for each live component, a cut edge from the
//! *smallest* level whose sketch is non-empty: since level `ℓ−1` reported an
//! empty cut, that edge's weight is exactly `ℓ` — the minimum over the cut —
//! so the resulting forest is an exact minimum spanning forest over the
//! quantized weights (Boruvka with arbitrary tie-breaking).
//!
//! Space is `L ×` the connectivity structure; the stream model extends to
//! weighted edges as `((u, v), w, ±1)` where a deletion must use the
//! weight it was inserted with.

use crate::config::default_rounds;
use crate::error::GzError;
use crate::node_sketch::{update_index, CubeNodeSketch, SketchParams};
use gz_dsu::Dsu;
use gz_graph::{index_to_edge, Edge};
use gz_hash::SplitMix64;
use gz_sketch::SampleResult;
use std::sync::Arc;

/// Streaming minimum-spanning-forest sketcher with `L` weight levels.
pub struct MsfSketcher {
    num_nodes: u64,
    num_levels: u32,
    /// `levels[ℓ]` sketches the subgraph of weight ≤ ℓ.
    levels: Vec<Level>,
    updates: u64,
}

struct Level {
    params: Arc<SketchParams>,
    sketches: Vec<CubeNodeSketch>,
}

/// A weighted spanning forest answer.
#[derive(Debug, Clone)]
pub struct WeightedForest {
    /// Forest edges with the weight level each was recovered at.
    pub edges: Vec<(Edge, u32)>,
    /// Total weight.
    pub total_weight: u64,
    /// Component labels (normalized to minimum member).
    pub labels: Vec<u32>,
}

impl MsfSketcher {
    /// Build a sketcher for up to `num_nodes` vertices and integer weights
    /// in `[0, num_levels)`.
    pub fn new(num_nodes: u64, num_levels: u32, seed: u64) -> Result<Self, GzError> {
        if num_nodes < 2 {
            return Err(GzError::InvalidConfig("need at least 2 nodes".into()));
        }
        if num_levels == 0 {
            return Err(GzError::InvalidConfig("need at least one weight level".into()));
        }
        let rounds = default_rounds(num_nodes);
        let levels = (0..num_levels as u64)
            .map(|l| {
                let params = Arc::new(SketchParams::new(
                    num_nodes,
                    rounds,
                    7,
                    SplitMix64::derive(seed ^ 0x4D5F, l),
                ));
                let sketches = (0..num_nodes).map(|_| params.new_node_sketch()).collect();
                Level { params, sketches }
            })
            .collect();
        Ok(MsfSketcher { num_nodes, num_levels, levels, updates: 0 })
    }

    /// Number of weight levels.
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Apply one weighted update. Deletions must carry the weight the edge
    /// was inserted with (the stream model's responsibility, as with any
    /// linear sketch).
    pub fn update(&mut self, u: u32, v: u32, weight: u32, is_delete: bool) {
        assert!(u != v, "self-loop");
        assert!((u as u64) < self.num_nodes && (v as u64) < self.num_nodes);
        assert!(weight < self.num_levels, "weight {weight} out of range");
        let _ = is_delete; // Z_2 toggle either way
        let idx = update_index(u, v, self.num_nodes);
        // Prefix structure: levels weight..L contain this edge.
        for level in &mut self.levels[weight as usize..] {
            level.sketches[u as usize].update_signed(idx, 1);
            level.sketches[v as usize].update_signed(idx, 1);
        }
        self.updates += 1;
    }

    /// Insert a weighted edge.
    pub fn insert(&mut self, u: u32, v: u32, weight: u32) {
        self.update(u, v, weight, false);
    }

    /// Delete a weighted edge.
    pub fn delete(&mut self, u: u32, v: u32, weight: u32) {
        self.update(u, v, weight, true);
    }

    /// Compute a minimum spanning forest (non-destructive).
    ///
    /// Weighted Boruvka over the level sketches: each round, each live
    /// component samples from the lowest level with a non-empty cut.
    pub fn minimum_spanning_forest(&self) -> Result<WeightedForest, GzError> {
        let n = self.num_nodes as usize;
        // Clone all levels' sketches (query must not consume ingest state).
        let mut levels: Vec<Vec<Option<CubeNodeSketch>>> = self
            .levels
            .iter()
            .map(|l| l.sketches.iter().map(|s| Some(s.clone())).collect())
            .collect();
        let rounds = self.levels[0].params.rounds();

        let mut dsu = Dsu::new(n);
        let mut retired = vec![false; n];
        let mut forest: Vec<(Edge, u32)> = Vec::new();

        let retire_last_live = |dsu: &mut Dsu, retired: &mut Vec<bool>| {
            let live: Vec<u32> =
                (0..n as u32).filter(|&v| dsu.find(v) == v && !retired[v as usize]).collect();
            if let [only] = live[..] {
                retired[only as usize] = true;
            }
        };

        let mut rounds_used = 0;
        for round in 0..rounds {
            retire_last_live(&mut dsu, &mut retired);
            rounds_used = round + 1;
            let mut found: Vec<(Edge, u32)> = Vec::new();
            let mut any_live = false;
            for root in 0..n as u32 {
                if dsu.find(root) != root || retired[root as usize] {
                    continue;
                }
                // Ascend levels: the first non-empty cut gives the
                // minimum-weight crossing edge (lower levels were empty).
                let mut resolved = false;
                for (w, level) in levels.iter().enumerate() {
                    let sketch = level[root as usize].as_ref().expect("live root owns a sketch");
                    match sketch.sample_round(round) {
                        SampleResult::Zero => continue, // no cut edge ≤ w
                        SampleResult::Index(idx) => {
                            found.push((index_to_edge(idx, self.num_nodes), w as u32));
                            any_live = true;
                            resolved = true;
                            break;
                        }
                        SampleResult::Fail => {
                            // Ambiguous at this level: stop ascending (a
                            // higher-level sample could be non-minimal).
                            any_live = true;
                            resolved = true;
                            break;
                        }
                    }
                }
                if !resolved {
                    // Every level reported Zero: the top level (= whole
                    // graph) has an empty cut, so the component is maximal.
                    retired[root as usize] = true;
                }
            }
            if !any_live {
                break;
            }
            for (edge, w) in found {
                let (ra, rb) = (dsu.find(edge.u()), dsu.find(edge.v()));
                if ra == rb {
                    continue;
                }
                dsu.union(ra, rb);
                let winner = dsu.find(ra);
                let loser = if winner == ra { rb } else { ra };
                // Merge supernode sketches at every level.
                for level in levels.iter_mut() {
                    let loser_sketch = level[loser as usize].take().expect("loser sketch");
                    level[winner as usize].as_mut().expect("winner sketch").merge(&loser_sketch);
                }
                forest.push((edge, w));
            }
        }
        retire_last_live(&mut dsu, &mut retired);

        let unresolved =
            (0..n as u32).filter(|&v| dsu.find(v) == v && !retired[v as usize]).count();
        if unresolved > 0 {
            return Err(GzError::AlgorithmFailure { rounds_used, unresolved });
        }
        let total_weight = forest.iter().map(|&(_, w)| w as u64).sum();
        Ok(WeightedForest { edges: forest, total_weight, labels: dsu.normalized_labels() })
    }

    /// Total sketch bytes across all levels.
    pub fn sketch_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.params.node_sketch_bytes() * l.sketches.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_graph::connectivity::kruskal_msf;

    fn sketcher_with(num_nodes: u64, levels: u32, edges: &[(u32, u32, u32)]) -> MsfSketcher {
        let mut s = MsfSketcher::new(num_nodes, levels, 7).unwrap();
        for &(a, b, w) in edges {
            s.insert(a, b, w);
        }
        s
    }

    fn check_against_kruskal(num_nodes: u64, levels: u32, edges: &[(u32, u32, u32)]) {
        let s = sketcher_with(num_nodes, levels, edges);
        let result = s.minimum_spanning_forest().expect("msf query failed");
        let weighted: Vec<(Edge, u32)> =
            edges.iter().map(|&(a, b, w)| (Edge::new(a, b), w)).collect();
        let (oracle_weight, oracle_forest) = kruskal_msf(num_nodes as usize, &weighted);
        assert_eq!(result.total_weight, oracle_weight, "MSF weight mismatch");
        assert_eq!(result.edges.len(), oracle_forest.len(), "forest size mismatch");
        // The recovered weight labels must match the actual edge weights.
        let weight_of: std::collections::HashMap<Edge, u32> = weighted.iter().copied().collect();
        for &(e, w) in &result.edges {
            assert_eq!(weight_of[&e], w, "recovered wrong weight level for {e}");
        }
    }

    #[test]
    fn prefers_light_edges_on_a_cycle() {
        // Square with three weight-0 edges and one weight-2 edge: the MSF
        // must avoid the heavy edge.
        let edges = [(0u32, 1u32, 0u32), (1, 2, 0), (2, 3, 0), (3, 0, 2)];
        let s = sketcher_with(4, 3, &edges);
        let result = s.minimum_spanning_forest().unwrap();
        assert_eq!(result.total_weight, 0);
        assert!(!result.edges.iter().any(|&(e, _)| e == Edge::new(0, 3)));
    }

    #[test]
    fn matches_kruskal_on_fixed_graphs() {
        check_against_kruskal(
            6,
            4,
            &[(0, 1, 3), (1, 2, 1), (2, 0, 2), (3, 4, 0), (4, 5, 1), (5, 3, 3)],
        );
        // Disconnected with isolated vertex.
        check_against_kruskal(5, 2, &[(0, 1, 1), (2, 3, 0)]);
    }

    #[test]
    fn matches_kruskal_on_random_weighted_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 12u32;
            let levels = 4u32;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen::<f64>() < 0.4 {
                        edges.push((a, b, rng.gen_range(0..levels)));
                    }
                }
            }
            check_against_kruskal(n as u64, levels, &edges);
        }
    }

    #[test]
    fn weighted_deletion_changes_the_forest() {
        let mut s = sketcher_with(4, 3, &[(0, 1, 0), (1, 2, 0), (0, 2, 2)]);
        let before = s.minimum_spanning_forest().unwrap();
        assert_eq!(before.total_weight, 0);
        // Delete a light edge: the heavy edge must now appear.
        s.delete(0, 1, 0);
        let after = s.minimum_spanning_forest().unwrap();
        assert_eq!(after.total_weight, 2);
    }

    #[test]
    fn labels_match_connectivity() {
        let edges = [(0u32, 1u32, 1u32), (2, 3, 0)];
        let s = sketcher_with(6, 2, &edges);
        let result = s.minimum_spanning_forest().unwrap();
        assert_eq!(result.labels, vec![0, 0, 2, 2, 4, 5]);
    }

    #[test]
    fn rejects_out_of_range_weight() {
        let mut s = MsfSketcher::new(4, 2, 1).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.insert(0, 1, 5);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn space_scales_with_levels() {
        let s1 = MsfSketcher::new(16, 1, 1).unwrap();
        let s3 = MsfSketcher::new(16, 3, 1).unwrap();
        assert_eq!(s3.sketch_bytes(), 3 * s1.sketch_bytes());
    }
}
