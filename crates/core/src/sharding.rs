//! Sharded (cluster-model) sketch ingestion — the paper's §8 outlook made
//! concrete: "Since GraphZeppelin's sketches can be updated independently
//! (Section 5.1), we believe that they can be partitioned throughout a
//! distributed cluster without sacrificing stream ingestion rate."
//!
//! This module demonstrates exactly that property in-process: node sketches
//! are partitioned across `k` shards that share nothing but the (identical)
//! sketch hash functions. Each stream update is routed to at most two
//! shards (its endpoints' owners); shards ingest fully independently — no
//! cross-shard communication until query time, when a coordinator gathers
//! the per-shard sketches and runs the ordinary Boruvka computation. The
//! test suite proves the crucial invariant: a sharded system's sketch state
//! (and hence its answers) is bit-identical to a single-node system's.

use crate::boruvka::{boruvka_spanning_forest, BoruvkaOutcome};
use crate::config::LockingStrategy;
use crate::error::GzError;
use crate::node_sketch::{encode_other, CubeNodeSketch, SketchParams};
use crate::store::ram::RamStore;
use std::sync::Arc;

/// A shard: owns the node sketches for one partition of the vertex set.
///
/// In a real deployment this is one machine; here it is one store. The
/// routing contract is the only coupling: shard `i` owns every vertex `v`
/// with `v % num_shards == i`.
pub struct Shard {
    index: u32,
    num_shards: u32,
    store: RamStore,
}

impl Shard {
    /// True if this shard owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: u32) -> bool {
        v % self.num_shards == self.index
    }

    /// Ingest one directed record `(dst, other, is_delete)`; `dst` must be
    /// owned by this shard.
    pub fn ingest(&self, dst: u32, other: u32, is_delete: bool) {
        debug_assert!(self.owns(dst), "routed to the wrong shard");
        self.store.apply_batch(dst, &[encode_other(other, is_delete)]);
    }

    /// Ingest a batch bound for one owned vertex.
    pub fn ingest_batch(&self, dst: u32, records: &[u32]) {
        debug_assert!(self.owns(dst));
        self.store.apply_batch(dst, records);
    }
}

/// A sharded GraphZeppelin: `k` independent shards plus a query
/// coordinator.
pub struct ShardedGraphZeppelin {
    params: Arc<SketchParams>,
    shards: Vec<Arc<Shard>>,
    updates: u64,
}

impl ShardedGraphZeppelin {
    /// Build `num_shards` shards for `num_nodes` vertices. All shards share
    /// the sketch parameters (hash functions) — required for the gathered
    /// sketches to be mergeable at query time — but nothing else.
    pub fn new(num_nodes: u64, num_shards: u32, seed: u64) -> Result<Self, GzError> {
        if num_nodes < 2 {
            return Err(GzError::InvalidConfig("need at least 2 nodes".into()));
        }
        if num_shards == 0 {
            return Err(GzError::InvalidConfig("need at least one shard".into()));
        }
        let rounds = crate::config::default_rounds(num_nodes);
        let params = Arc::new(SketchParams::new(num_nodes, rounds, 7, seed));
        let shards = (0..num_shards)
            .map(|index| {
                Arc::new(Shard {
                    index,
                    num_shards,
                    // Each shard allocates sketches for the full vertex
                    // range but only its residue class is ever touched; a
                    // production system would allocate per-partition. The
                    // memory overhead is irrelevant to the independence
                    // demonstration.
                    store: RamStore::new(Arc::clone(&params), LockingStrategy::DeltaSketch),
                })
            })
            .collect();
        Ok(ShardedGraphZeppelin { params, shards, updates: 0 })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard owning vertex `v`.
    pub fn shard_of(&self, v: u32) -> &Arc<Shard> {
        &self.shards[(v as usize) % self.shards.len()]
    }

    /// Route one stream update: at most two shards are contacted, and
    /// neither needs to know about the other.
    pub fn update(&mut self, u: u32, v: u32, is_delete: bool) {
        assert!(u != v, "self-loop");
        assert!((u as u64) < self.params.num_nodes && (v as u64) < self.params.num_nodes);
        self.shard_of(u).ingest(u, v, is_delete);
        self.shard_of(v).ingest(v, u, is_delete);
        self.updates += 1;
    }

    /// Parallel bulk ingestion: every shard processes its share of the
    /// stream on its own thread — the "without sacrificing stream ingestion
    /// rate" claim, since shards never synchronize.
    pub fn ingest_parallel(&mut self, updates: &[(u32, u32, bool)]) {
        self.updates += updates.len() as u64;
        std::thread::scope(|scope| {
            for shard in &self.shards {
                let shard = Arc::clone(shard);
                scope.spawn(move || {
                    for &(u, v, is_delete) in updates {
                        // Each shard scans the stream and keeps what it
                        // owns (a cluster would instead receive a routed
                        // partition of the stream).
                        if shard.owns(u) {
                            shard.ingest(u, v, is_delete);
                        }
                        if shard.owns(v) {
                            shard.ingest(v, u, is_delete);
                        }
                    }
                });
            }
        });
    }

    /// Gather all shards' sketches at the coordinator.
    fn gather(&self) -> Vec<Option<CubeNodeSketch>> {
        let mut all: Vec<Option<CubeNodeSketch>> =
            (0..self.params.num_nodes).map(|_| None).collect();
        for shard in &self.shards {
            for (v, sketch) in shard.store.snapshot().into_iter().enumerate() {
                if shard.owns(v as u32) {
                    all[v] = sketch;
                }
            }
        }
        all
    }

    /// Query connected components: gather + ordinary Boruvka.
    pub fn spanning_forest(&self) -> Result<BoruvkaOutcome, GzError> {
        boruvka_spanning_forest(self.gather(), self.params.num_nodes, self.params.rounds())
    }

    /// Component labels.
    pub fn connected_components(&self) -> Result<Vec<u32>, GzError> {
        Ok(self.spanning_forest()?.labels)
    }

    /// Updates routed so far.
    pub fn updates_ingested(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GzConfig;
    use crate::system::GraphZeppelin;

    fn demo_updates(n: u32, count: usize, seed: u64) -> Vec<(u32, u32, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut present = std::collections::HashSet::new();
        let mut out = Vec::new();
        while out.len() < count {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if present.remove(&key) {
                out.push((a, b, true));
            } else {
                present.insert(key);
                out.push((a, b, false));
            }
        }
        out
    }

    #[test]
    fn sharded_matches_single_node_system() {
        let n = 64u32;
        let updates = demo_updates(n, 500, 1);
        let seed = 99;

        let mut sharded = ShardedGraphZeppelin::new(n as u64, 4, seed).unwrap();
        for &(u, v, d) in &updates {
            sharded.update(u, v, d);
        }

        let mut config = GzConfig::in_ram(n as u64);
        config.seed = seed;
        let mut single = GraphZeppelin::new(config).unwrap();
        for &(u, v, d) in &updates {
            single.update(u, v, d);
        }

        assert_eq!(
            sharded.connected_components().unwrap(),
            single.connected_components().unwrap().labels()
        );
    }

    #[test]
    fn parallel_shard_ingestion_equals_sequential_routing() {
        let n = 48u32;
        let updates = demo_updates(n, 400, 2);

        let mut seq = ShardedGraphZeppelin::new(n as u64, 3, 7).unwrap();
        for &(u, v, d) in &updates {
            seq.update(u, v, d);
        }
        let mut par = ShardedGraphZeppelin::new(n as u64, 3, 7).unwrap();
        par.ingest_parallel(&updates);

        assert_eq!(seq.connected_components().unwrap(), par.connected_components().unwrap());
    }

    #[test]
    fn each_update_touches_at_most_two_shards() {
        let sys = ShardedGraphZeppelin::new(100, 5, 1).unwrap();
        for (u, v) in [(0u32, 1u32), (5, 10), (99, 3)] {
            let su = sys.shard_of(u).index;
            let sv = sys.shard_of(v).index;
            let touched: std::collections::HashSet<u32> = [su, sv].into_iter().collect();
            assert!(touched.len() <= 2);
        }
    }

    #[test]
    fn shard_count_does_not_change_answers() {
        let n = 40u32;
        let updates = demo_updates(n, 300, 3);
        let mut labels = Vec::new();
        for shards in [1u32, 2, 7] {
            let mut sys = ShardedGraphZeppelin::new(n as u64, shards, 5).unwrap();
            for &(u, v, d) in &updates {
                sys.update(u, v, d);
            }
            labels.push(sys.connected_components().unwrap());
        }
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ShardedGraphZeppelin::new(1, 2, 0).is_err());
        assert!(ShardedGraphZeppelin::new(10, 0, 0).is_err());
    }
}
