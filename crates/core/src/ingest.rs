//! The parallel ingestion pipeline (paper §5.1, Figures 7–8).
//!
//! Graph Workers pop per-node batches from the work queue and apply them to
//! the sketch store. Two levels of parallelism, as in the paper:
//!
//! - **batch-level**: `g` workers process different nodes' batches
//!   concurrently (no contention unless two batches target one node, which
//!   the store's locking handles);
//! - **sketch-level**: a worker may split the `O(log V)` independent
//!   subsketches of one node sketch across a thread group. The paper found
//!   group size 1 best on its hardware, which is the default, but the knob
//!   exists for the §6.4 ablation.

use crate::store::SketchStore;
use gz_gutters::WorkQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Counters published by the worker pool.
#[derive(Debug, Default)]
pub struct IngestCounters {
    /// Batches applied.
    pub batches: AtomicU64,
    /// Individual update records applied.
    pub records: AtomicU64,
}

/// A pool of Graph Worker threads draining a [`WorkQueue`] into a
/// [`SketchStore`].
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    counters: Arc<IngestCounters>,
}

impl WorkerPool {
    /// Spawn `num_workers` workers. Each applies whole batches; with
    /// `group_threads > 1` a worker fans one batch out over that many
    /// scoped threads by splitting sketch rounds.
    pub fn spawn(
        num_workers: usize,
        group_threads: usize,
        queue: Arc<WorkQueue>,
        store: Arc<SketchStore>,
    ) -> Self {
        let counters = Arc::new(IngestCounters::default());
        let handles = (0..num_workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    while let Some(batch) = queue.pop() {
                        apply_batch(&store, batch.node, &batch.others, group_threads);
                        counters.batches.fetch_add(1, Ordering::Relaxed);
                        counters.records.fetch_add(batch.others.len() as u64, Ordering::Relaxed);
                        queue.task_done();
                    }
                })
            })
            .collect();
        WorkerPool { handles, counters }
    }

    /// Shared counters.
    pub fn counters(&self) -> Arc<IngestCounters> {
        Arc::clone(&self.counters)
    }

    /// Join all workers (the queue must already be closed).
    pub fn join(self) {
        for h in self.handles {
            h.join().expect("graph worker panicked");
        }
    }
}

/// Apply one batch, optionally with sketch-level parallelism.
fn apply_batch(store: &SketchStore, node: u32, records: &[u32], group_threads: usize) {
    if group_threads <= 1 {
        store.apply_batch(node, records);
        return;
    }
    match store {
        SketchStore::Ram(ram) => {
            apply_batch_grouped(ram, node, records, group_threads);
        }
        // The disk store is I/O-bound and serialized behind the cache lock;
        // intra-batch threading would only add overhead there.
        SketchStore::Disk(_) => store.apply_batch(node, records),
    }
}

/// Sketch-level parallel application (RAM store, delta-sketch discipline):
/// decode the batch to indices once (into the per-worker thread-local
/// scratch, same as the serial path), run the self-cancellation pre-pass
/// once (hash-independent, so one pass serves every round), build the delta
/// sketch with rounds split across a scoped thread group — each round
/// applied through the column-major batch kernel — then lock only for the
/// merge. The delta sketch comes from the store's reusable scratch pool, so
/// no node-sized allocation happens per batch.
fn apply_batch_grouped(
    ram: &crate::store::ram::RamStore,
    node: u32,
    records: &[u32],
    group_threads: usize,
) {
    let num_nodes = ram.params().num_nodes;
    crate::store::with_index_scratch(|indices| {
        crate::store::decode_records_into(node, records, num_nodes, indices);
        gz_sketch::cancel_duplicates(indices);

        let mut scratch = ram.checkout_scratch();
        {
            let rounds = scratch.rounds_mut();
            let per_chunk = rounds.len().div_ceil(group_threads);
            std::thread::scope(|scope| {
                for chunk in rounds.chunks_mut(per_chunk.max(1)) {
                    let indices = &*indices;
                    scope.spawn(move || {
                        for sketch in chunk.iter_mut() {
                            sketch.update_batch_prepared(indices);
                        }
                    });
                }
            });
        }
        ram.merge_delta(node, &scratch);
        ram.recycle_scratch(scratch);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GzConfig, LockingStrategy};
    use crate::node_sketch::{encode_other, SketchParams};
    use crate::store::ram::RamStore;
    use gz_gutters::Batch;
    use gz_sketch::SampleResult;

    fn ram_store(num_nodes: u64) -> Arc<SketchStore> {
        let params = Arc::new(SketchParams::new(num_nodes, 4, 7, 5));
        Arc::new(SketchStore::Ram(RamStore::new(params, LockingStrategy::DeltaSketch)))
    }

    #[test]
    fn workers_drain_and_apply() {
        let store = ram_store(16);
        let queue = Arc::new(WorkQueue::for_workers(2));
        let pool = WorkerPool::spawn(2, 1, Arc::clone(&queue), Arc::clone(&store));
        for node in 0..16u32 {
            queue.push(Batch { node, others: vec![encode_other((node + 1) % 16, false)] });
        }
        queue.wait_idle();
        queue.close();
        let counters = pool.counters();
        pool.join();
        assert_eq!(counters.batches.load(Ordering::Relaxed), 16);
        assert_eq!(counters.records.load(Ordering::Relaxed), 16);
        // Every node sketch should hold its one edge.
        let snap = store.snapshot();
        for (node, s) in snap.iter().enumerate() {
            let got = s.as_ref().unwrap().sample_round(0);
            assert!(matches!(got, SampleResult::Index(_)), "node {node}: {got:?}");
        }
    }

    #[test]
    fn grouped_application_matches_serial() {
        let serial = ram_store(32);
        let grouped = ram_store(32);
        let records: Vec<u32> = (1..20u32).map(|o| encode_other(o, false)).collect();

        apply_batch(&serial, 0, &records, 1);
        apply_batch(&grouped, 0, &records, 3);

        let (a, b) = (serial.snapshot(), grouped.snapshot());
        let (a, b) = (a[0].as_ref().unwrap(), b[0].as_ref().unwrap());
        for r in 0..a.num_rounds() {
            assert_eq!(a.sample_round(r), b.sample_round(r), "round {r}");
        }
    }

    #[test]
    fn grouped_application_reuses_store_scratch() {
        // The grouped path must draw its delta sketch from the store's
        // scratch pool (no per-batch node-sketch allocation) and recycle it
        // zeroed: repeated grouped batches leave exactly one pooled scratch
        // and state identical to the serial path.
        let grouped = ram_store(32);
        let serial = ram_store(32);
        for node in 0..6u32 {
            let records: Vec<u32> = (1..12).map(|o| encode_other((node + o) % 32, false)).collect();
            apply_batch(&grouped, node, &records, 3);
            apply_batch(&serial, node, &records, 1);
        }
        let SketchStore::Ram(ram) = grouped.as_ref() else { unreachable!("ram store") };
        assert_eq!(ram.scratch_pool_len(), 1, "scratch checked out and recycled per batch");
        let (a, b) = (grouped.snapshot(), serial.snapshot());
        for (node, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            crate::node_sketch::assert_rounds_bitwise_equal(
                x.as_ref().unwrap(),
                y.as_ref().unwrap(),
                &format!("node {node}"),
            );
        }
    }

    #[test]
    fn pool_survives_empty_close() {
        let store = ram_store(4);
        let queue = Arc::new(WorkQueue::for_workers(3));
        let pool = WorkerPool::spawn(3, 1, Arc::clone(&queue), store);
        queue.close();
        pool.join();
    }

    #[test]
    fn config_default_group_threads_is_one() {
        // Paper §6.4: "a group size of one gives the best performance".
        assert_eq!(GzConfig::in_ram(64).group_threads, 1);
    }
}
