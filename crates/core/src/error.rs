//! Error type for the GraphZeppelin system.

use std::fmt;

/// Errors surfaced by the GraphZeppelin public API.
#[derive(Debug)]
pub enum GzError {
    /// The sketch-space Boruvka emulation exhausted its round budget while
    /// components were still unresolved — the paper's `algorithm_fails`
    /// outcome, which occurs with probability at most `1/V^c`
    /// (empirically never observed; §6.3).
    AlgorithmFailure {
        /// Rounds executed before giving up.
        rounds_used: usize,
        /// Components still unresolved.
        unresolved: usize,
    },
    /// Configuration rejected (e.g. zero vertices).
    InvalidConfig(String),
    /// Underlying I/O failure from a disk-backed store or gutter tree.
    Io(std::io::Error),
    /// A shard-protocol violation: mismatched parameter digests, a batch
    /// routed to the wrong shard, or an unexpected wire message.
    Protocol(String),
    /// A shard link failed in a classified way — the taxonomy recovery
    /// logic keys on (a timeout or dead peer is retryable; malformed
    /// traffic is not).
    Transport(TransportError),
}

/// What went wrong on a shard link, coarsely — the axis the coordinator's
/// recovery policy branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// The peer did not answer within the configured deadline. The peer
    /// may still be alive (e.g. a long flush); retry or reconnect.
    Timeout,
    /// The connection is gone: EOF, reset, broken pipe, refused. The
    /// worker process likely died; reconnect/re-spawn is the only cure.
    PeerGone,
    /// The peer sent bytes that violate the wire protocol. Retrying
    /// cannot help — the build or the stream is corrupt.
    Malformed,
}

impl TransportErrorKind {
    /// Whether reconnect-and-replay can plausibly cure this failure.
    pub fn is_recoverable(self) -> bool {
        matches!(self, TransportErrorKind::Timeout | TransportErrorKind::PeerGone)
    }
}

impl fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::PeerGone => "peer gone",
            TransportErrorKind::Malformed => "malformed",
        })
    }
}

/// A classified shard-link failure: which shard, what kind, and the
/// underlying detail.
#[derive(Debug)]
pub struct TransportError {
    /// Shard index whose link failed.
    pub shard: u32,
    /// Failure class (see [`TransportErrorKind`]).
    pub kind: TransportErrorKind,
    /// Human-readable detail from the underlying failure.
    pub detail: String,
}

impl TransportError {
    /// Classify a raw I/O error from shard `shard`'s link.
    ///
    /// `InvalidData` is what the wire codec returns for protocol
    /// violations; timeouts surface as `TimedOut` (or `WouldBlock` on
    /// platforms where `SO_RCVTIMEO` expiry reports EAGAIN). Everything
    /// else that names a dead connection maps to `PeerGone` — including
    /// `ConnectionRefused`, which is what a not-yet-respawned worker
    /// looks like to a reconnect attempt.
    pub fn from_io(shard: u32, err: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        let kind = match err.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => TransportErrorKind::Timeout,
            ErrorKind::InvalidData => TransportErrorKind::Malformed,
            _ => TransportErrorKind::PeerGone,
        };
        TransportError { shard, kind, detail: err.to_string() }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} link failed ({}): {}", self.shard, self.kind, self.detail)
    }
}

impl fmt::Display for GzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GzError::AlgorithmFailure { rounds_used, unresolved } => write!(
                f,
                "sketch connectivity failed: {unresolved} unresolved components \
                 after {rounds_used} Boruvka rounds (probability ≤ 1/V^c event)"
            ),
            GzError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GzError::Io(e) => write!(f, "I/O error: {e}"),
            GzError::Protocol(msg) => write!(f, "shard protocol violation: {msg}"),
            GzError::Transport(e) => write!(f, "shard transport failure: {e}"),
        }
    }
}

impl std::error::Error for GzError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GzError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GzError {
    fn from(e: std::io::Error) -> Self {
        GzError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GzError::AlgorithmFailure { rounds_used: 12, unresolved: 3 };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains("3"));
        assert!(GzError::InvalidConfig("bad".into()).to_string().contains("bad"));
        assert!(GzError::Protocol("digest".into()).to_string().contains("digest"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: GzError = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transport_errors_classify_io_kinds() {
        use std::io::{Error, ErrorKind};
        let cases = [
            (ErrorKind::TimedOut, TransportErrorKind::Timeout),
            (ErrorKind::WouldBlock, TransportErrorKind::Timeout),
            (ErrorKind::UnexpectedEof, TransportErrorKind::PeerGone),
            (ErrorKind::ConnectionReset, TransportErrorKind::PeerGone),
            (ErrorKind::ConnectionAborted, TransportErrorKind::PeerGone),
            (ErrorKind::BrokenPipe, TransportErrorKind::PeerGone),
            (ErrorKind::ConnectionRefused, TransportErrorKind::PeerGone),
            (ErrorKind::InvalidData, TransportErrorKind::Malformed),
        ];
        for (io_kind, want) in cases {
            let te = TransportError::from_io(3, &Error::new(io_kind, "x"));
            assert_eq!(te.kind, want, "{io_kind:?}");
            assert_eq!(te.shard, 3);
        }
    }

    #[test]
    fn transport_recoverability_and_display() {
        assert!(TransportErrorKind::Timeout.is_recoverable());
        assert!(TransportErrorKind::PeerGone.is_recoverable());
        assert!(!TransportErrorKind::Malformed.is_recoverable());
        let e = GzError::Transport(TransportError {
            shard: 2,
            kind: TransportErrorKind::PeerGone,
            detail: "broken pipe".into(),
        });
        let s = e.to_string();
        assert!(s.contains("shard 2") && s.contains("peer gone") && s.contains("broken pipe"));
    }
}
