//! Error type for the GraphZeppelin system.

use std::fmt;

/// Errors surfaced by the GraphZeppelin public API.
#[derive(Debug)]
pub enum GzError {
    /// The sketch-space Boruvka emulation exhausted its round budget while
    /// components were still unresolved — the paper's `algorithm_fails`
    /// outcome, which occurs with probability at most `1/V^c`
    /// (empirically never observed; §6.3).
    AlgorithmFailure {
        /// Rounds executed before giving up.
        rounds_used: usize,
        /// Components still unresolved.
        unresolved: usize,
    },
    /// Configuration rejected (e.g. zero vertices).
    InvalidConfig(String),
    /// Underlying I/O failure from a disk-backed store or gutter tree.
    Io(std::io::Error),
    /// A shard-protocol violation: mismatched parameter digests, a batch
    /// routed to the wrong shard, or an unexpected wire message.
    Protocol(String),
}

impl fmt::Display for GzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GzError::AlgorithmFailure { rounds_used, unresolved } => write!(
                f,
                "sketch connectivity failed: {unresolved} unresolved components \
                 after {rounds_used} Boruvka rounds (probability ≤ 1/V^c event)"
            ),
            GzError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GzError::Io(e) => write!(f, "I/O error: {e}"),
            GzError::Protocol(msg) => write!(f, "shard protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for GzError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GzError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GzError {
    fn from(e: std::io::Error) -> Self {
        GzError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GzError::AlgorithmFailure { rounds_used: 12, unresolved: 3 };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains("3"));
        assert!(GzError::InvalidConfig("bad".into()).to_string().contains("bad"));
        assert!(GzError::Protocol("digest".into()).to_string().contains("digest"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: GzError = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
