//! Shard transports: how coordinator batches reach shard pipelines.
//!
//! The [`ShardTransport`] trait abstracts the coordinator/shard boundary so
//! the *same* coordinator code (router + gather + Boruvka) runs
//! single-process or multi-process:
//!
//! - [`InProcessTransport`] — shards are [`ShardPipeline`]s owned by the
//!   coordinator; "sending" a batch is a queue push. This is the refactored
//!   form of the old `ShardedGraphZeppelin`.
//! - [`SocketTransport`] — shards live behind byte streams (`TcpStream`,
//!   `UnixStream`, or anything `Read + Write`) speaking the
//!   [`gz_stream::wire`] protocol; the remote end runs
//!   [`serve_shard_connection`]'s event loop.
//!
//! Every transport starts with a `Hello`/`HelloAck` digest handshake: two
//! sides whose sketch parameters differ would produce unmergeable sketches,
//! so mismatches are refused before any batch flows.
//!
//! Fault tolerance (DESIGN.md §14) layers on top: [`RecoveringTransport`]
//! wraps a [`SocketTransport`], keeps a bounded [`ReplayLog`] of batches per
//! shard, and when a link fails with a *recoverable* [`TransportError`]
//! (timeout or peer-gone) it respawns the worker, resyncs from the worker's
//! last checkpoint sequence, and replays the missing tail. Because the
//! sketches are linear (XOR), replaying exactly the un-absorbed batches
//! reproduces the lost state bit-for-bit.

use crate::error::{GzError, TransportError};
use crate::sharding::router::ReplayLog;
use crate::sharding::{ShardConfig, ShardPipeline};
use gz_gutters::{Batch, IoStats, WorkQueue};
use gz_hash::SplitMix64;
use gz_stream::wire::{SketchEntry, WireMessage};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Link hardening: timeouts, retry policy, classified errors
// ---------------------------------------------------------------------------

/// Socket deadlines for a shard link. `None` means block forever — the
/// default, and the right call for in-process `UnixStream` pairs where the
/// peer cannot silently vanish. Multi-process deployments set `read` (and
/// usually `write`) so a SIGKILLed worker surfaces as a
/// [`TransportErrorKind::Timeout`](crate::error::TransportErrorKind) instead
/// of a hang.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportTimeouts {
    /// Deadline for establishing a TCP connection.
    pub connect: Option<Duration>,
    /// Deadline for each blocking read on an established link.
    pub read: Option<Duration>,
    /// Deadline for each blocking write on an established link.
    pub write: Option<Duration>,
}

impl TransportTimeouts {
    /// One deadline for everything — the common case.
    pub fn all(d: Duration) -> Self {
        TransportTimeouts { connect: Some(d), read: Some(d), write: Some(d) }
    }
}

/// Bounded exponential backoff with deterministic jitter for reconnect /
/// respawn attempts. Jitter comes from [`SplitMix64`] keyed by
/// `jitter_seed`, the shard index, and the attempt number, so retry timing
/// is reproducible run-to-run (the same discipline as every other use of
/// randomness in this codebase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (at least 1 is always made).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub max: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Sleep before attempt `attempt` (0-based; attempt 0 never sleeps).
    /// The delay is `base * 2^(attempt-1)` capped at `max`, then jittered
    /// into `[delay/2, delay]` so a fleet of recovering coordinators does
    /// not stampede a respawning worker in lockstep.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(16);
        let delay = self.base.saturating_mul(1u32 << shift).min(self.max);
        let half = delay / 2;
        let span_ms = half.as_millis().max(1) as u64;
        let jitter = SplitMix64::derive(self.jitter_seed ^ salt, attempt as u64) % span_ms;
        half + Duration::from_millis(jitter)
    }
}

/// A byte stream that can carry shard traffic and (where the OS supports
/// it) enforce [`TransportTimeouts`]. The default `apply_timeouts` is a
/// no-op so in-memory test streams qualify without ceremony.
pub trait ShardLink: Read + Write + Send {
    /// Install socket deadlines. Streams without kernel timeout support
    /// accept and ignore them.
    fn apply_timeouts(&mut self, _timeouts: &TransportTimeouts) -> std::io::Result<()> {
        Ok(())
    }
}

impl ShardLink for TcpStream {
    fn apply_timeouts(&mut self, timeouts: &TransportTimeouts) -> std::io::Result<()> {
        self.set_read_timeout(timeouts.read)?;
        self.set_write_timeout(timeouts.write)
    }
}

impl ShardLink for UnixStream {
    fn apply_timeouts(&mut self, timeouts: &TransportTimeouts) -> std::io::Result<()> {
        self.set_read_timeout(timeouts.read)?;
        self.set_write_timeout(timeouts.write)
    }
}

impl<T: ShardLink + ?Sized> ShardLink for &mut T {
    fn apply_timeouts(&mut self, timeouts: &TransportTimeouts) -> std::io::Result<()> {
        (**self).apply_timeouts(timeouts)
    }
}

/// Write `msg` on shard `shard`'s link, classifying any I/O failure into a
/// typed [`TransportError`] carrying the shard index.
fn send_msg<S: Read + Write>(link: &mut S, shard: u32, msg: &WireMessage) -> Result<(), GzError> {
    msg.write_to(link).map_err(|e| GzError::Transport(TransportError::from_io(shard, &e)))
}

/// Read one frame from shard `shard`'s link, classifying failures the same
/// way (`UnexpectedEof` → peer gone, `TimedOut`/`WouldBlock` → timeout,
/// `InvalidData` → malformed).
fn recv_msg<S: Read + Write>(link: &mut S, shard: u32) -> Result<WireMessage, GzError> {
    WireMessage::read_from(link).map_err(|e| GzError::Transport(TransportError::from_io(shard, &e)))
}

/// True for errors a [`RecoveringTransport`] may heal by respawning the
/// worker: timeouts and dead peers. Malformed frames and protocol
/// violations are bugs, not outages — they propagate.
fn recoverable(err: &GzError) -> bool {
    matches!(err, GzError::Transport(te) if te.kind.is_recoverable())
}

/// A coordinator's view of its shards.
pub trait ShardTransport {
    /// Number of shards behind this transport.
    fn num_shards(&self) -> u32;

    /// Ship a node-keyed batch to `shard`.
    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError>;

    /// Make every shipped batch visible in the shards' sketches (the
    /// distributed form of the paper's `cleanup()`).
    fn flush(&mut self) -> Result<(), GzError>;

    /// Collect every shard's serialized sketches at the coordinator.
    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError>;

    /// Collect only round `round`'s slice of every shard's sketches — the
    /// streaming query's gather unit. Each reply is `rounds`-fold smaller
    /// than a full [`Self::gather`], so the coordinator holds at most one
    /// round of the universe at a time. With `epochs = None` each shard
    /// flushes and answers from its live sketches; with `Some(ids)` shard
    /// `i` answers from its sealed epoch `ids[i]` **without** flushing, so
    /// the gather runs concurrently with ingestion (DESIGN.md §11).
    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError>;

    /// Gather round `round` with overlap: issue the request to every shard
    /// up front, then invoke `on_reply` once per shard's reply *as it
    /// arrives*, so the coordinator folds one shard's slices while the
    /// others are still serializing or transmitting theirs. An error from
    /// `on_reply` stops folding and is returned (remaining shards are still
    /// drained where the transport needs it for framing sanity). `epochs`
    /// pins the gather exactly as in [`Self::gather_round`]. The default
    /// collects everything first — transports with real concurrency
    /// override it.
    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        on_reply(self.gather_round(round, epochs)?)
    }

    /// Seal one epoch on every shard — each shard flushes its pipeline and
    /// freezes the sealed state behind copy-on-write — and return the
    /// per-shard epoch ids, indexed by shard. The ids are what epoch-pinned
    /// gathers and [`Self::release_epoch`] quote back.
    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError>;

    /// Release previously sealed epochs (`epochs[i]` on shard `i`), letting
    /// each shard reclaim its copy-on-write captures. Idempotent: releasing
    /// an already-released id is not an error.
    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError>;

    /// Ask every shard to durably checkpoint its owned sketch state, and
    /// return the per-shard batch sequence numbers the checkpoints cover
    /// (indexed by shard). Transports that track a replay log prune it
    /// here. The default refuses: a transport must opt in to durability.
    fn checkpoint_shards(&mut self) -> Result<Vec<u64>, GzError> {
        Err(GzError::InvalidConfig("this transport does not support shard checkpoints".into()))
    }

    /// Durably checkpoint every shard's owned state to `paths[i]` (one path
    /// per shard), overriding any cadence-configured destination. `gz
    /// serve` uses this to write *versioned* checkpoint rounds: each round
    /// lands at fresh paths, and only after every shard file is complete
    /// does a manifest flip make the round current — so a crash mid-round
    /// can never mix old and new shard state. The default refuses, like
    /// [`checkpoint_shards`](Self::checkpoint_shards).
    fn checkpoint_shards_to(&mut self, paths: &[std::path::PathBuf]) -> Result<Vec<u64>, GzError> {
        let _ = paths;
        Err(GzError::InvalidConfig(
            "this transport does not support targeted shard checkpoints".into(),
        ))
    }

    /// Restore every shard's owned state from `paths[i]`, validating each
    /// file's topology header against the shard it lands on. Returns the
    /// per-shard sequence numbers the restored state covers. The default
    /// refuses.
    fn resume_shards_from(&mut self, paths: &[std::path::PathBuf]) -> Result<Vec<u64>, GzError> {
        let _ = paths;
        Err(GzError::InvalidConfig("this transport does not support shard resume".into()))
    }

    /// Recovery counters, if this transport keeps them
    /// ([`RecoveringTransport`] does; plain transports return `None`).
    fn recovery_stats(&self) -> Option<Arc<IoStats>> {
        None
    }

    /// Tear the shards down.
    fn shutdown(&mut self) -> Result<(), GzError>;
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// All shards in this process: the single-process deployment, now expressed
/// as a transport so it shares every line of coordinator code with the
/// multi-process one.
pub struct InProcessTransport {
    shards: Vec<ShardPipeline>,
}

impl InProcessTransport {
    /// Build `config.num_shards` pipelines in this process.
    pub fn new(config: &ShardConfig) -> Result<Self, GzError> {
        let shards = (0..config.num_shards)
            .map(|i| ShardPipeline::new(config, i))
            .collect::<Result<Vec<_>, GzError>>()?;
        Ok(InProcessTransport { shards })
    }

    /// Sketch bytes held per shard (footprint accounting).
    pub fn shard_sketch_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.sketch_bytes()).collect()
    }
}

impl ShardTransport for InProcessTransport {
    fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError> {
        self.shards[shard as usize].enqueue(batch.node, batch.others)
    }

    fn flush(&mut self) -> Result<(), GzError> {
        for shard in &self.shards {
            shard.flush();
        }
        Ok(())
    }

    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.gather_serialized());
        }
        Ok(entries)
    }

    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError> {
        check_epochs(epochs, self.shards.len())?;
        let mut entries = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            entries.extend(match epochs {
                None => shard.gather_round_serialized(round as usize)?,
                Some(ids) => shard.gather_round_serialized_at(round as usize, ids[i])?,
            });
        }
        Ok(entries)
    }

    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        check_epochs(epochs, self.shards.len())?;
        // Every shard serializes its round slice on its own scoped thread;
        // replies funnel through a queue sized to hold them all (so a
        // failed fold never leaves a producer blocked) and are folded in
        // arrival order — folding is XOR, so arrival order is immaterial.
        let queue: WorkQueue<Result<Vec<SketchEntry>, GzError>> =
            WorkQueue::with_capacity(self.shards.len().max(1));
        std::thread::scope(|scope| {
            for (i, shard) in self.shards.iter().enumerate() {
                let queue = &queue;
                scope.spawn(move || {
                    // A panicking gather must still push *something*: the
                    // coordinator pops one reply per shard, and a missing
                    // push would leave it blocked forever inside this scope
                    // — turning the panic into a silent hang. Push an error
                    // to unblock it, then re-raise so `thread::scope`
                    // propagates the panic as usual.
                    let reply =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match epochs {
                            None => shard.gather_round_serialized(round as usize),
                            Some(ids) => shard.gather_round_serialized_at(round as usize, ids[i]),
                        }));
                    match reply {
                        Ok(reply) => {
                            queue.push(reply);
                        }
                        Err(payload) => {
                            queue.push(Err(GzError::Protocol("shard gather panicked".into())));
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
            let mut result = Ok(());
            for _ in 0..self.shards.len() {
                let Some(reply) = queue.pop() else { break };
                if result.is_err() {
                    continue; // drain remaining producers
                }
                result = match reply {
                    Ok(entries) => on_reply(entries),
                    Err(e) => Err(e),
                };
            }
            result
        })
    }

    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError> {
        self.shards.iter().map(|shard| shard.seal_epoch()).collect()
    }

    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError> {
        check_epochs(Some(epochs), self.shards.len())?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.release_epoch(epochs[i]);
        }
        Ok(())
    }

    fn checkpoint_shards(&mut self) -> Result<Vec<u64>, GzError> {
        self.shards.iter().map(|shard| shard.save_checkpoint()).collect()
    }

    fn checkpoint_shards_to(&mut self, paths: &[std::path::PathBuf]) -> Result<Vec<u64>, GzError> {
        if paths.len() != self.shards.len() {
            return Err(GzError::InvalidConfig(format!(
                "checkpoint_shards_to needs one path per shard: got {} for {} shards",
                paths.len(),
                self.shards.len()
            )));
        }
        self.shards
            .iter()
            .zip(paths)
            .map(|(shard, path)| {
                shard.set_checkpoint_path(path.clone());
                shard.save_checkpoint()
            })
            .collect()
    }

    fn resume_shards_from(&mut self, paths: &[std::path::PathBuf]) -> Result<Vec<u64>, GzError> {
        if paths.len() != self.shards.len() {
            return Err(GzError::InvalidConfig(format!(
                "resume_shards_from needs one path per shard: got {} for {} shards",
                paths.len(),
                self.shards.len()
            )));
        }
        self.shards.iter().zip(paths).map(|(shard, path)| shard.resume_from(path)).collect()
    }

    fn shutdown(&mut self) -> Result<(), GzError> {
        self.shards.clear(); // Drop closes queues and joins workers.
        Ok(())
    }
}

/// An epoch-pinned request must carry exactly one epoch id per shard.
fn check_epochs(epochs: Option<&[u64]>, num_shards: usize) -> Result<(), GzError> {
    match epochs {
        Some(ids) if ids.len() != num_shards => {
            Err(GzError::Protocol(format!("{} epoch ids for {num_shards} shards", ids.len())))
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

/// Shards behind byte streams speaking the wire protocol. Stream `i`
/// connects to the worker serving shard `i`.
pub struct SocketTransport<S: Read + Write> {
    links: Vec<S>,
}

impl SocketTransport<TcpStream> {
    /// Connect to TCP shard workers at `addrs` (one per shard, in shard
    /// order) and run the parameter handshake. No deadlines, default retry
    /// — see [`Self::connect_tcp_with`] for the hardened form.
    pub fn connect_tcp(addrs: &[String], params_digest: u64) -> Result<Self, GzError> {
        Self::connect_tcp_with(
            addrs,
            params_digest,
            &TransportTimeouts::default(),
            &RetryPolicy::default(),
        )
    }

    /// Connect with explicit deadlines and a bounded retry policy: each
    /// link gets up to `retry.attempts` connection attempts with
    /// exponential backoff (a worker still binding its listener looks like
    /// `ConnectionRefused`), and the configured read/write timeouts are
    /// installed before the handshake.
    pub fn connect_tcp_with(
        addrs: &[String],
        params_digest: u64,
        timeouts: &TransportTimeouts,
        retry: &RetryPolicy,
    ) -> Result<Self, GzError> {
        let mut links = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            links.push(connect_shard_tcp(addr, i as u32, timeouts, retry)?);
        }
        Self::handshake(links, params_digest)
    }
}

/// Dial one shard worker over TCP with deadlines and bounded retry. Public
/// because respawn closures (the CLI's `--respawn` policy) dial single
/// shards the same way the initial [`SocketTransport::connect_tcp_with`]
/// does.
pub fn connect_shard_tcp(
    addr: &str,
    shard: u32,
    timeouts: &TransportTimeouts,
    retry: &RetryPolicy,
) -> Result<TcpStream, GzError> {
    let mut last: Option<GzError> = None;
    for attempt in 0..retry.attempts.max(1) {
        let pause = retry.backoff(attempt, shard as u64);
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        match tcp_connect_once(addr, timeouts.connect) {
            Ok(mut stream) => {
                // Frames are written whole; disabling Nagle keeps the
                // request/reply turns (Flush, Gather) from stalling on
                // delayed ACKs.
                let setup = stream.set_nodelay(true).and_then(|()| stream.apply_timeouts(timeouts));
                match setup {
                    Ok(()) => return Ok(stream),
                    Err(e) => last = Some(GzError::Transport(TransportError::from_io(shard, &e))),
                }
            }
            Err(e) => last = Some(GzError::Transport(TransportError::from_io(shard, &e))),
        }
    }
    Err(last.expect("at least one connection attempt is always made"))
}

/// One connection attempt, honoring the connect deadline when set
/// (`TcpStream::connect_timeout` needs resolved addresses, so the deadline
/// applies per resolved candidate).
fn tcp_connect_once(addr: &str, deadline: Option<Duration>) -> std::io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    match deadline {
        None => TcpStream::connect(addr),
        Some(d) => {
            let mut last = std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{addr} resolved to no addresses"),
            );
            for candidate in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&candidate, d) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last = e,
                }
            }
            Err(last)
        }
    }
}

impl<S: Read + Write> SocketTransport<S> {
    /// Take ownership of connected streams (one per shard, in shard order)
    /// and run the `Hello`/`HelloAck` handshake on each.
    pub fn handshake(mut links: Vec<S>, params_digest: u64) -> Result<Self, GzError> {
        if links.is_empty() {
            return Err(GzError::InvalidConfig("need at least one shard link".into()));
        }
        for (i, link) in links.iter_mut().enumerate() {
            WireMessage::Hello { params_digest }.write_to(link)?;
            match WireMessage::read_from(link)? {
                WireMessage::HelloAck { params_digest: theirs } if theirs == params_digest => {}
                WireMessage::HelloAck { params_digest: theirs } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} parameter digest {theirs:#x} != coordinator {params_digest:#x}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered Hello with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(SocketTransport { links })
    }
}

impl<S: Read + Write> ShardTransport for SocketTransport<S> {
    fn num_shards(&self) -> u32 {
        self.links.len() as u32
    }

    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError> {
        send_msg(
            &mut self.links[shard as usize],
            shard,
            &WireMessage::Batch { node: batch.node, records: batch.others },
        )
    }

    fn flush(&mut self) -> Result<(), GzError> {
        // Pipelined: all shards flush concurrently, then all acks collected.
        for (i, link) in self.links.iter_mut().enumerate() {
            send_msg(link, i as u32, &WireMessage::Flush)?;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            match recv_msg(link, i as u32)? {
                WireMessage::FlushAck => {}
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered Flush with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError> {
        for (i, link) in self.links.iter_mut().enumerate() {
            send_msg(link, i as u32, &WireMessage::GatherSketches)?;
        }
        let mut entries = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            match recv_msg(link, i as u32)? {
                WireMessage::Sketches { entries: shard_entries } => {
                    entries.extend(shard_entries);
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherSketches with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(entries)
    }

    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError> {
        check_epochs(epochs, self.links.len())?;
        // Pipelined like the full gather: all shards serialize their round
        // slice concurrently, then the replies are collected in shard order.
        for (i, link) in self.links.iter_mut().enumerate() {
            let msg = WireMessage::GatherRound { round, epoch: epochs.map(|ids| ids[i]) };
            send_msg(link, i as u32, &msg)?;
        }
        let mut entries = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            match recv_msg(link, i as u32)? {
                WireMessage::RoundSketches { round: theirs, entries: shard_entries }
                    if theirs == round =>
                {
                    entries.extend(shard_entries);
                }
                WireMessage::RoundSketches { round: theirs, .. } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound({round}) with round {theirs}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(entries)
    }

    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        check_epochs(epochs, self.links.len())?;
        // All requests go out before any reply is read, so every shard
        // serializes its slice concurrently; each reply is then folded as
        // soon as its link delivers it, while later shards are still
        // working. (Replies are read in link order — a shard that finishes
        // early is buffered by the transport until its turn.)
        for (i, link) in self.links.iter_mut().enumerate() {
            let msg = WireMessage::GatherRound { round, epoch: epochs.map(|ids| ids[i]) };
            send_msg(link, i as u32, &msg)?;
        }
        let mut result = Ok(());
        for (i, link) in self.links.iter_mut().enumerate() {
            // Keep reading even after a fold error: every link owes exactly
            // one reply, and leaving it unread would desynchronize the
            // framing for whatever the coordinator does next.
            match recv_msg(link, i as u32)? {
                WireMessage::RoundSketches { round: theirs, entries } if theirs == round => {
                    if result.is_ok() {
                        result = on_reply(entries);
                    }
                }
                WireMessage::RoundSketches { round: theirs, .. } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound({round}) with round {theirs}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound with {}",
                        other.name()
                    )));
                }
            }
        }
        result
    }

    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError> {
        // Pipelined: every shard flushes and seals concurrently, then the
        // per-shard epoch ids are collected in shard order.
        for (i, link) in self.links.iter_mut().enumerate() {
            send_msg(link, i as u32, &WireMessage::SealEpoch)?;
        }
        let mut ids = Vec::with_capacity(self.links.len());
        for (i, link) in self.links.iter_mut().enumerate() {
            match recv_msg(link, i as u32)? {
                WireMessage::EpochSealed { epoch } => ids.push(epoch),
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered SealEpoch with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(ids)
    }

    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError> {
        check_epochs(Some(epochs), self.links.len())?;
        for (i, link) in self.links.iter_mut().enumerate() {
            send_msg(link, i as u32, &WireMessage::ReleaseEpoch { epoch: epochs[i] })?;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            match recv_msg(link, i as u32)? {
                WireMessage::EpochReleased => {}
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered ReleaseEpoch with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn checkpoint_shards(&mut self) -> Result<Vec<u64>, GzError> {
        // Pipelined: `CheckpointShard` is an in-stream frame, so each
        // shard's checkpoint covers exactly the batches framed before it —
        // no coordinator-side flush or barrier needed.
        for (i, link) in self.links.iter_mut().enumerate() {
            send_msg(link, i as u32, &WireMessage::CheckpointShard)?;
        }
        let mut seqs = Vec::with_capacity(self.links.len());
        for (i, link) in self.links.iter_mut().enumerate() {
            match recv_msg(link, i as u32)? {
                WireMessage::CheckpointAck { seq } => seqs.push(seq),
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered CheckpointShard with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(seqs)
    }

    fn shutdown(&mut self) -> Result<(), GzError> {
        // Attempt every link even if some fail: a dead shard must not leave
        // its siblings waiting for a Shutdown that never arrives (their
        // serve loops block in read, and a coordinator joining worker
        // threads would hang forever).
        let mut first_err = None;
        for (i, link) in self.links.iter_mut().enumerate() {
            if let Err(e) = send_msg(link, i as u32, &WireMessage::Shutdown) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Recovering transport: replay log + worker respawn
// ---------------------------------------------------------------------------

/// A [`SocketTransport`] that survives worker death (DESIGN.md §14).
///
/// Every batch shipped to a shard is also appended to that shard's
/// [`ReplayLog`]; the log is pruned when the shard acknowledges a durable
/// checkpoint. When an operation fails with a recoverable
/// [`TransportError`] (timeout, peer gone), the transport calls the
/// `respawn` closure to obtain a fresh link to a restarted worker, runs the
/// `Hello` handshake, asks `Resync` — the worker answers with the batch
/// sequence its restored checkpoint covers — and replays exactly the logged
/// batches after that sequence. Linearity makes this sound: XOR updates
/// commute, and replaying only the un-absorbed tail reproduces the lost
/// state bit-for-bit. The interrupted operation is then re-issued on the
/// fresh link (once; a second failure propagates).
///
/// What recovery does **not** preserve: epochs sealed on a worker die with
/// it. An epoch-pinned gather that names a lost epoch fails on the respawned
/// worker too, so long-running epoch readers must tolerate
/// re-sealing after a crash.
pub struct RecoveringTransport<S: ShardLink> {
    inner: SocketTransport<S>,
    /// Per-shard batches since the last acknowledged checkpoint.
    logs: Vec<ReplayLog>,
    /// Produces a fresh, connected (but un-handshaken) link to shard `i` —
    /// respawning the worker process first if the deployment needs that.
    respawn: Box<dyn FnMut(u32) -> Result<S, GzError> + Send>,
    timeouts: TransportTimeouts,
    retry: RetryPolicy,
    params_digest: u64,
    stats: Arc<IoStats>,
    /// Per-shard replay-log entry bound; exceeding it forces a checkpoint
    /// round so coordinator memory stays proportional to the checkpoint
    /// cadence, never the stream length.
    replay_log_cap: Option<usize>,
}

impl<S: ShardLink> RecoveringTransport<S> {
    /// Wrap an already-handshaken transport. `respawn(i)` must return a
    /// fresh connected link to a live worker for shard `i` (the transport
    /// runs the handshake and resync itself). The configured `timeouts`
    /// are installed on the existing links immediately — a transport that
    /// can't detect a dead peer can't recover from one.
    pub fn new(
        mut inner: SocketTransport<S>,
        params_digest: u64,
        timeouts: TransportTimeouts,
        retry: RetryPolicy,
        respawn: Box<dyn FnMut(u32) -> Result<S, GzError> + Send>,
    ) -> Result<Self, GzError> {
        for (i, link) in inner.links.iter_mut().enumerate() {
            link.apply_timeouts(&timeouts)
                .map_err(|e| GzError::Transport(TransportError::from_io(i as u32, &e)))?;
        }
        let logs = (0..inner.links.len()).map(|_| ReplayLog::new()).collect();
        Ok(RecoveringTransport {
            inner,
            logs,
            respawn,
            timeouts,
            retry,
            params_digest,
            stats: Arc::new(IoStats::default()),
            replay_log_cap: None,
        })
    }

    /// Bound each shard's replay log to `cap` entries; exceeding the bound
    /// triggers an inline checkpoint round (which prunes the logs).
    pub fn with_replay_log_cap(mut self, cap: usize) -> Self {
        self.replay_log_cap = Some(cap.max(1));
        self
    }

    /// Recovery counters: checkpoints acknowledged, replays performed,
    /// batches replayed, reconnect attempts.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Replace shard `shard`'s dead link: respawn (with bounded, jittered
    /// backoff), handshake, resync, replay the missing tail. `cause` is
    /// returned if every attempt fails.
    fn recover(&mut self, shard: u32, cause: GzError) -> Result<(), GzError> {
        let mut last_err = cause;
        for attempt in 0..self.retry.attempts.max(1) {
            let pause = self.retry.backoff(attempt, shard as u64);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            self.stats.record_reconnect_attempt();
            let mut link = match (self.respawn)(shard) {
                Ok(link) => link,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match self.resync(shard, &mut link) {
                Ok(()) => {
                    self.inner.links[shard as usize] = link;
                    return Ok(());
                }
                // A protocol violation (digest mismatch, resync gap) will
                // not heal by retrying — the deployment is misconfigured.
                Err(e @ GzError::Protocol(_)) => return Err(e),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Handshake + resync + replay on a fresh link (not yet installed).
    fn resync(&mut self, shard: u32, link: &mut S) -> Result<(), GzError> {
        link.apply_timeouts(&self.timeouts)
            .map_err(|e| GzError::Transport(TransportError::from_io(shard, &e)))?;
        send_msg(link, shard, &WireMessage::Hello { params_digest: self.params_digest })?;
        match recv_msg(link, shard)? {
            WireMessage::HelloAck { params_digest: theirs } if theirs == self.params_digest => {}
            WireMessage::HelloAck { params_digest: theirs } => {
                return Err(GzError::Protocol(format!(
                    "respawned shard {shard} parameter digest {theirs:#x} != coordinator {:#x}",
                    self.params_digest
                )));
            }
            other => {
                return Err(GzError::Protocol(format!(
                    "respawned shard {shard} answered Hello with {}",
                    other.name()
                )));
            }
        }
        send_msg(link, shard, &WireMessage::Resync)?;
        let seq = match recv_msg(link, shard)? {
            WireMessage::ResyncFrom { seq } => seq,
            other => {
                return Err(GzError::Protocol(format!(
                    "respawned shard {shard} answered Resync with {}",
                    other.name()
                )));
            }
        };
        let log = &self.logs[shard as usize];
        if !log.covers(seq) {
            return Err(GzError::Protocol(format!(
                "shard {shard} resumed at seq {seq}, outside the replay log \
                 [{}, {}] — its checkpoint predates the last acknowledged one",
                log.next_seq() - log.len() as u64,
                log.next_seq()
            )));
        }
        let missing = log.next_seq() - seq;
        for batch in log.iter_from(seq) {
            send_msg(
                link,
                shard,
                &WireMessage::Batch { node: batch.node, records: batch.others.clone() },
            )?;
        }
        self.stats.record_replay(missing);
        Ok(())
    }

    /// Write `msg` to `shard`, recovering once. A fresh link has no pending
    /// requests, so the write is simply re-issued after recovery.
    fn send_recovering(&mut self, shard: u32, msg: &WireMessage) -> Result<(), GzError> {
        match send_msg(&mut self.inner.links[shard as usize], shard, msg) {
            Err(e) if recoverable(&e) => {
                self.recover(shard, e)?;
                send_msg(&mut self.inner.links[shard as usize], shard, msg)
            }
            other => other,
        }
    }

    /// Read `shard`'s reply to `request`, recovering once. Recovery
    /// replaces the link wholesale, so the fresh worker never saw the
    /// request — it is re-sent before the reply is read again.
    fn recv_recovering(
        &mut self,
        shard: u32,
        request: &WireMessage,
    ) -> Result<WireMessage, GzError> {
        match recv_msg(&mut self.inner.links[shard as usize], shard) {
            Err(e) if recoverable(&e) => {
                self.recover(shard, e)?;
                let link = &mut self.inner.links[shard as usize];
                send_msg(link, shard, request)?;
                recv_msg(link, shard)
            }
            other => other,
        }
    }
}

impl<S: ShardLink> ShardTransport for RecoveringTransport<S> {
    fn num_shards(&self) -> u32 {
        self.inner.links.len() as u32
    }

    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError> {
        // Log first: if the write fails, recovery's replay delivers the
        // batch (it is part of the tail), so no explicit retry is needed.
        // A "successful" write only proves the bytes entered a socket
        // buffer — the log keeps the batch until a checkpoint proves the
        // worker absorbed it durably.
        let msg = WireMessage::Batch { node: batch.node, records: batch.others.clone() };
        self.logs[shard as usize].append(batch);
        match send_msg(&mut self.inner.links[shard as usize], shard, &msg) {
            Ok(()) => {}
            Err(e) if recoverable(&e) => self.recover(shard, e)?,
            Err(e) => return Err(e),
        }
        if let Some(cap) = self.replay_log_cap {
            if self.logs[shard as usize].len() >= cap {
                self.checkpoint_shards()?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), GzError> {
        let n = self.inner.links.len();
        for i in 0..n {
            self.send_recovering(i as u32, &WireMessage::Flush)?;
        }
        for i in 0..n {
            match self.recv_recovering(i as u32, &WireMessage::Flush)? {
                WireMessage::FlushAck => {}
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered Flush with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError> {
        let n = self.inner.links.len();
        for i in 0..n {
            self.send_recovering(i as u32, &WireMessage::GatherSketches)?;
        }
        let mut entries = Vec::new();
        for i in 0..n {
            match self.recv_recovering(i as u32, &WireMessage::GatherSketches)? {
                WireMessage::Sketches { entries: shard_entries } => entries.extend(shard_entries),
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherSketches with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(entries)
    }

    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError> {
        check_epochs(epochs, self.inner.links.len())?;
        let n = self.inner.links.len();
        let request =
            |i: usize| WireMessage::GatherRound { round, epoch: epochs.map(|ids| ids[i]) };
        for i in 0..n {
            self.send_recovering(i as u32, &request(i))?;
        }
        let mut entries = Vec::new();
        for i in 0..n {
            match self.recv_recovering(i as u32, &request(i))? {
                WireMessage::RoundSketches { round: theirs, entries: shard_entries }
                    if theirs == round =>
                {
                    entries.extend(shard_entries);
                }
                WireMessage::RoundSketches { round: theirs, .. } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound({round}) with round {theirs}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(entries)
    }

    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        check_epochs(epochs, self.inner.links.len())?;
        let n = self.inner.links.len();
        let request =
            |i: usize| WireMessage::GatherRound { round, epoch: epochs.map(|ids| ids[i]) };
        for i in 0..n {
            self.send_recovering(i as u32, &request(i))?;
        }
        let mut result = Ok(());
        for i in 0..n {
            // As in SocketTransport: every link owes one reply; keep
            // draining after a fold error to preserve framing.
            match self.recv_recovering(i as u32, &request(i))? {
                WireMessage::RoundSketches { round: theirs, entries } if theirs == round => {
                    if result.is_ok() {
                        result = on_reply(entries);
                    }
                }
                WireMessage::RoundSketches { round: theirs, .. } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound({round}) with round {theirs}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound with {}",
                        other.name()
                    )));
                }
            }
        }
        result
    }

    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError> {
        let n = self.inner.links.len();
        for i in 0..n {
            self.send_recovering(i as u32, &WireMessage::SealEpoch)?;
        }
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            match self.recv_recovering(i as u32, &WireMessage::SealEpoch)? {
                WireMessage::EpochSealed { epoch } => ids.push(epoch),
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered SealEpoch with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(ids)
    }

    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError> {
        // No recovery: a worker that died since sealing has already lost
        // the epoch, and respawning one just to release nothing would turn
        // every post-crash cleanup into a reconnect storm.
        self.inner.release_epoch(epochs)
    }

    fn checkpoint_shards(&mut self) -> Result<Vec<u64>, GzError> {
        let n = self.inner.links.len();
        for i in 0..n {
            self.send_recovering(i as u32, &WireMessage::CheckpointShard)?;
        }
        let mut seqs = Vec::with_capacity(n);
        for i in 0..n {
            match self.recv_recovering(i as u32, &WireMessage::CheckpointShard)? {
                WireMessage::CheckpointAck { seq } => {
                    // The checkpoint durably covers batches `..seq`; the
                    // replay log no longer needs them.
                    self.logs[i].prune_through(seq);
                    self.stats.record_checkpoint();
                    seqs.push(seq);
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered CheckpointShard with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(seqs)
    }

    fn recovery_stats(&self) -> Option<Arc<IoStats>> {
        Some(Arc::clone(&self.stats))
    }

    fn shutdown(&mut self) -> Result<(), GzError> {
        // No recovery on the way out: respawning a worker to tell it to
        // shut down is pure churn.
        self.inner.shutdown()
    }
}

// ---------------------------------------------------------------------------
// Shard-worker event loop
// ---------------------------------------------------------------------------

/// Counters a worker reports when its connection ends.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardServeStats {
    /// `Batch` messages received.
    pub batches: u64,
    /// Update records inside those batches.
    pub records: u64,
    /// `Flush` round trips served.
    pub flushes: u64,
    /// `GatherSketches`/`GatherRound` round trips served.
    pub gathers: u64,
    /// `SealEpoch` round trips served.
    pub seals: u64,
    /// `CheckpointShard` round trips served (durable checkpoints written).
    pub checkpoints: u64,
}

/// Drive one coordinator connection over `stream` against `pipeline`:
/// the shard-worker event loop. Returns when the coordinator sends
/// `Shutdown`; errors end the loop (and should end the worker).
pub fn serve_shard_connection<S: Read + Write>(
    stream: &mut S,
    pipeline: &ShardPipeline,
    params_digest: u64,
) -> Result<ShardServeStats, GzError> {
    let mut stats = ShardServeStats::default();
    loop {
        match WireMessage::read_from(stream)? {
            WireMessage::Hello { params_digest: theirs } => {
                // Always answer with our digest; a mismatched coordinator
                // sees the difference, and we refuse to ingest for it.
                WireMessage::HelloAck { params_digest }.write_to(stream)?;
                if theirs != params_digest {
                    return Err(GzError::Protocol(format!(
                        "coordinator digest {theirs:#x} != shard {params_digest:#x}"
                    )));
                }
            }
            WireMessage::Batch { node, records } => {
                stats.batches += 1;
                stats.records += records.len() as u64;
                pipeline.enqueue(node, records)?;
            }
            WireMessage::Flush => {
                stats.flushes += 1;
                pipeline.flush();
                WireMessage::FlushAck.write_to(stream)?;
            }
            WireMessage::GatherSketches => {
                stats.gathers += 1;
                let entries = pipeline.gather_serialized();
                WireMessage::Sketches { entries }.write_to(stream)?;
            }
            WireMessage::GatherRound { round, epoch } => {
                stats.gathers += 1;
                // An epoch-pinned gather must NOT flush — answering from the
                // sealed snapshot while ingestion runs is the whole point.
                let entries = match epoch {
                    None => pipeline.gather_round_serialized(round as usize)?,
                    Some(id) => pipeline.gather_round_serialized_at(round as usize, id)?,
                };
                WireMessage::RoundSketches { round, entries }.write_to(stream)?;
            }
            WireMessage::SealEpoch => {
                stats.seals += 1;
                let epoch = pipeline.seal_epoch()?;
                WireMessage::EpochSealed { epoch }.write_to(stream)?;
            }
            WireMessage::CheckpointShard => {
                stats.checkpoints += 1;
                // Flushes, then persists atomically; the returned sequence
                // number tells the coordinator which replay-log prefix the
                // checkpoint makes redundant. A worker started without a
                // checkpoint path fails here — the coordinator should not
                // have asked.
                let seq = pipeline.save_checkpoint()?;
                WireMessage::CheckpointAck { seq }.write_to(stream)?;
            }
            WireMessage::Resync => {
                // A recovering coordinator asks where we stand; we answer
                // with the batch count our restored state already covers so
                // it replays strictly after (replaying an absorbed batch
                // would XOR it out again).
                WireMessage::ResyncFrom { seq: pipeline.seq() }.write_to(stream)?;
            }
            WireMessage::ReleaseEpoch { epoch } => {
                pipeline.release_epoch(epoch);
                WireMessage::EpochReleased.write_to(stream)?;
            }
            WireMessage::Shutdown => {
                // A clean goodbye must not silently drop the updates
                // absorbed since the last cadence checkpoint: when this
                // worker has a checkpoint destination configured, cut one
                // final checkpoint so a later `--resume` starts from the
                // state the coordinator last saw, not an older one.
                if pipeline.checkpoint_path().is_some() {
                    stats.checkpoints += 1;
                    pipeline.save_checkpoint()?;
                }
                return Ok(stats);
            }
            other => {
                return Err(GzError::Protocol(format!(
                    "unexpected {} on a shard-worker connection",
                    other.name()
                )));
            }
        }
    }
}

/// Join handle of a shard worker spawned by [`spawn_local_socket_workers`].
pub type LocalWorkerHandle = std::thread::JoinHandle<Result<ShardServeStats, GzError>>;

/// Spawn `config.num_shards` shard workers on local threads connected by
/// `UnixStream` pairs, and hand back the coordinator-side transport plus
/// the worker join handles. This exercises the *entire* wire path (framing,
/// handshake, event loop) without OS processes — the form the equivalence
/// suite uses; the multi-process example does the same over TCP with real
/// processes.
///
/// When `config.checkpoint_dir` is set and a shard's checkpoint file
/// already exists, the worker resumes from it before serving — the
/// thread-level analogue of `gz shard-worker --resume`.
pub fn spawn_local_socket_workers(
    config: &ShardConfig,
) -> Result<(SocketTransport<UnixStream>, Vec<LocalWorkerHandle>), GzError> {
    let digest = config.params_digest();
    let mut coordinator_ends = Vec::with_capacity(config.num_shards as usize);
    let mut handles = Vec::with_capacity(config.num_shards as usize);
    for index in 0..config.num_shards {
        let (ours, theirs) = UnixStream::pair()?;
        coordinator_ends.push(ours);
        let worker_config = config.clone();
        handles.push(std::thread::spawn(move || {
            let pipeline = new_pipeline_resuming(&worker_config, index)?;
            let mut stream = theirs;
            serve_shard_connection(&mut stream, &pipeline, worker_config.params_digest())
        }));
    }
    let transport = SocketTransport::handshake(coordinator_ends, digest)?;
    Ok((transport, handles))
}

/// Build shard `index`'s pipeline, resuming from its configured checkpoint
/// file when one exists on disk. A missing file is a fresh start, not an
/// error; a present-but-corrupt file is.
pub fn new_pipeline_resuming(config: &ShardConfig, index: u32) -> Result<ShardPipeline, GzError> {
    let pipeline = ShardPipeline::new(config, index)?;
    if let Some(path) = pipeline.checkpoint_path() {
        if path.exists() {
            pipeline.resume_from(&path)?;
        }
    }
    Ok(pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TransportErrorKind;
    use crate::node_sketch::encode_other;

    #[test]
    fn handshake_rejects_digest_mismatch() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (mut ours, theirs) = std::os::unix::net::UnixStream::pair().unwrap();
        let worker = std::thread::spawn(move || {
            let pipeline = ShardPipeline::new(&config, 0).unwrap();
            let mut stream = theirs;
            serve_shard_connection(&mut stream, &pipeline, digest)
        });
        // Coordinator advertises a different digest: both sides must refuse.
        let result = SocketTransport::handshake(vec![&mut ours], digest ^ 1);
        assert!(matches!(result, Err(GzError::Protocol(_))));
        assert!(matches!(worker.join().unwrap(), Err(GzError::Protocol(_))));
    }

    #[test]
    fn socket_and_in_process_transports_gather_identically() {
        let config = ShardConfig::in_ram(12, 3);
        let updates: Vec<(u32, u32)> =
            (0..30u32).map(|i| (i % 12, (i * 5 + 1) % 12)).filter(|&(a, b)| a != b).collect();

        let mut in_proc = InProcessTransport::new(&config).unwrap();
        let (mut socket, handles) = spawn_local_socket_workers(&config).unwrap();

        for &(u, v) in &updates {
            for (dst, other) in [(u, v), (v, u)] {
                let batch = Batch { node: dst, others: vec![encode_other(other, false)] };
                in_proc.send_batch(dst % 3, batch.clone()).unwrap();
                socket.send_batch(dst % 3, batch).unwrap();
            }
        }
        in_proc.flush().unwrap();
        socket.flush().unwrap();

        let sort = |mut v: Vec<SketchEntry>| {
            v.sort_by_key(|e| e.node);
            v
        };
        let a = sort(in_proc.gather().unwrap());
        let b = sort(socket.gather().unwrap());
        assert_eq!(a, b, "wire transport must not change sketch state");

        in_proc.shutdown().unwrap();
        socket.shutdown().unwrap();
        for h in handles {
            let stats = h.join().unwrap().unwrap();
            assert!(stats.batches > 0);
            assert_eq!(stats.flushes, 1);
            assert_eq!(stats.gathers, 1);
        }
    }

    #[test]
    fn gather_round_each_delivers_every_shard_exactly_once() {
        // Both transports' overlapped gathers must deliver the same entry
        // multiset as the collect-everything gather_round, one reply per
        // shard — whatever order the concurrent shard workers finish in.
        let config = ShardConfig::in_ram(20, 4);
        let mut in_proc = InProcessTransport::new(&config).unwrap();
        let (mut socket, handles) = spawn_local_socket_workers(&config).unwrap();
        for node in 0..20u32 {
            let batch = Batch { node, others: vec![encode_other((node + 1) % 20, false)] };
            in_proc.send_batch(node % 4, batch.clone()).unwrap();
            socket.send_batch(node % 4, batch).unwrap();
        }
        in_proc.flush().unwrap();
        socket.flush().unwrap();

        let reference = {
            let mut v = in_proc.gather_round(1, None).unwrap();
            v.sort_by_key(|e| e.node);
            v
        };
        for transport in [&mut in_proc as &mut dyn ShardTransport, &mut socket] {
            let mut replies = 0usize;
            let mut collected = Vec::new();
            transport
                .gather_round_each(1, None, &mut |entries| {
                    replies += 1;
                    collected.extend(entries);
                    Ok(())
                })
                .unwrap();
            assert_eq!(replies, 4, "one reply per shard");
            collected.sort_by_key(|e| e.node);
            assert_eq!(collected, reference);
        }

        in_proc.shutdown().unwrap();
        socket.shutdown().unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn gather_round_each_stops_folding_after_an_error() {
        let config = ShardConfig::in_ram(12, 3);
        let mut transport = InProcessTransport::new(&config).unwrap();
        let mut replies = 0usize;
        let result = transport.gather_round_each(0, None, &mut |_| {
            replies += 1;
            Err(GzError::Protocol("fold rejected".into()))
        });
        assert!(matches!(result, Err(GzError::Protocol(_))));
        assert_eq!(replies, 1, "folding must stop at the first error");
        transport.shutdown().unwrap();
    }

    #[test]
    fn shutdown_reaches_live_shards_past_a_dead_one() {
        let config = ShardConfig::in_ram(16, 2);
        let digest = config.params_digest();

        // Shard 0: a worker that dies right after the handshake.
        let (ours0, theirs0) = std::os::unix::net::UnixStream::pair().unwrap();
        let dead = std::thread::spawn(move || {
            let mut stream = theirs0;
            match WireMessage::read_from(&mut stream).unwrap() {
                WireMessage::Hello { params_digest } => {
                    WireMessage::HelloAck { params_digest }.write_to(&mut stream).unwrap();
                }
                other => panic!("expected Hello, got {}", other.name()),
            }
            // Dropping the stream here simulates a crashed shard worker.
        });
        // Shard 1: a healthy worker.
        let (ours1, theirs1) = std::os::unix::net::UnixStream::pair().unwrap();
        let config1 = config.clone();
        let live = std::thread::spawn(move || {
            let pipeline = ShardPipeline::new(&config1, 1).unwrap();
            let mut stream = theirs1;
            serve_shard_connection(&mut stream, &pipeline, digest)
        });

        let mut transport = SocketTransport::handshake(vec![ours0, ours1], digest).unwrap();
        dead.join().unwrap();
        // Shutdown fails on the dead link but must still reach shard 1 —
        // otherwise the live worker blocks in read forever and this test
        // hangs on join.
        assert!(transport.shutdown().is_err());
        live.join().unwrap().unwrap();
    }

    #[test]
    fn serve_loop_rejects_coordinator_only_messages() {
        let config = ShardConfig::in_ram(8, 1);
        let pipeline = ShardPipeline::new(&config, 0).unwrap();
        let mut buf = Vec::new();
        WireMessage::FlushAck.write_to(&mut buf).unwrap();
        let mut stream = ReadWriteBuf { read: buf, at: 0, written: Vec::new() };
        assert!(matches!(
            serve_shard_connection(&mut stream, &pipeline, config.params_digest()),
            Err(GzError::Protocol(_))
        ));
    }

    // -- link hardening: typed errors at every protocol state ---------------

    /// Spawn a thread that answers the `Hello` handshake, then hands the
    /// stream to `after` (which decides how the "worker" misbehaves).
    fn handshake_then<F>(theirs: UnixStream, after: F) -> std::thread::JoinHandle<()>
    where
        F: FnOnce(UnixStream) + Send + 'static,
    {
        std::thread::spawn(move || {
            let mut stream = theirs;
            match WireMessage::read_from(&mut stream).unwrap() {
                WireMessage::Hello { params_digest } => {
                    WireMessage::HelloAck { params_digest }.write_to(&mut stream).unwrap();
                }
                other => panic!("expected Hello, got {}", other.name()),
            }
            after(stream);
        })
    }

    fn assert_kind(err: GzError, want: crate::error::TransportErrorKind, ctx: &str) {
        match err {
            GzError::Transport(te) => {
                assert_eq!(te.kind, want, "{ctx}: {te}");
                assert_eq!(te.shard, 0, "{ctx}: wrong shard index");
            }
            other => panic!("{ctx}: expected a transport error, got {other}"),
        }
    }

    #[test]
    fn peer_disconnect_mid_batch_is_typed_peer_gone() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (ours, theirs) = UnixStream::pair().unwrap();
        let worker = handshake_then(theirs, drop); // dies right after Hello
        let mut transport = SocketTransport::handshake(vec![ours], digest).unwrap();
        worker.join().unwrap();
        // Writes land in the socket buffer until the kernel notices the
        // peer closed; keep sending until the failure surfaces. It must be
        // a typed PeerGone, never a panic or hang.
        let mut failure = None;
        for i in 0..100_000u32 {
            let batch = Batch { node: i % 16, others: vec![encode_other((i + 1) % 16, false)] };
            if let Err(e) = transport.send_batch(0, batch) {
                failure = Some(e);
                break;
            }
        }
        assert_kind(
            failure.expect("a dead peer must fail sends"),
            TransportErrorKind::PeerGone,
            "mid-batch",
        );
    }

    #[test]
    fn peer_disconnect_awaiting_flush_ack_is_typed_peer_gone() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (ours, theirs) = UnixStream::pair().unwrap();
        // Worker reads the Flush, then dies without acking.
        let worker = handshake_then(theirs, |mut stream| {
            assert!(matches!(WireMessage::read_from(&mut stream).unwrap(), WireMessage::Flush));
        });
        let mut transport = SocketTransport::handshake(vec![ours], digest).unwrap();
        let err = transport.flush().expect_err("no ack is coming");
        assert_kind(err, TransportErrorKind::PeerGone, "awaiting FlushAck");
        worker.join().unwrap();
    }

    #[test]
    fn peer_disconnect_mid_gather_round_reply_is_typed_peer_gone() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (ours, theirs) = UnixStream::pair().unwrap();
        // Worker starts a RoundSketches reply but dies mid-frame: the
        // coordinator sees EOF inside a frame body, which must classify as
        // peer-gone (connection truncation), not a protocol parse error.
        let worker = handshake_then(theirs, |mut stream| {
            assert!(matches!(
                WireMessage::read_from(&mut stream).unwrap(),
                WireMessage::GatherRound { .. }
            ));
            let mut frame = Vec::new();
            WireMessage::RoundSketches { round: 0, entries: vec![] }.write_to(&mut frame).unwrap();
            use std::io::Write as _;
            stream.write_all(&frame[..frame.len() - 1]).unwrap();
        });
        let mut transport = SocketTransport::handshake(vec![ours], digest).unwrap();
        let err = transport.gather_round(0, None).expect_err("truncated reply");
        assert_kind(err, TransportErrorKind::PeerGone, "mid-GatherRound");
        worker.join().unwrap();
    }

    #[test]
    fn stalled_worker_surfaces_as_timeout_not_hang() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (mut ours, theirs) = UnixStream::pair().unwrap();
        // Worker swallows every request without answering, until EOF.
        let worker = handshake_then(
            theirs,
            |mut stream| {
                while WireMessage::read_from(&mut stream).is_ok() {}
            },
        );
        ours.apply_timeouts(&TransportTimeouts {
            connect: None,
            read: Some(Duration::from_millis(50)),
            write: Some(Duration::from_millis(50)),
        })
        .unwrap();
        let mut transport = SocketTransport::handshake(vec![ours], digest).unwrap();
        let err = transport.flush().expect_err("worker never acks");
        assert_kind(err, TransportErrorKind::Timeout, "stalled worker");
        drop(transport); // EOF ends the worker's swallow loop
        worker.join().unwrap();
    }

    #[test]
    fn retry_backoff_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(0, 3), Duration::ZERO, "first attempt is immediate");
        for attempt in 1..12 {
            for salt in 0..4 {
                let d = policy.backoff(attempt, salt);
                assert_eq!(d, policy.backoff(attempt, salt), "jitter must be deterministic");
                assert!(d <= policy.max, "backoff {d:?} exceeds cap");
                assert!(d >= policy.base / 2, "backoff {d:?} below half the base");
            }
        }
        // Jitter separates shards retrying in lockstep.
        assert_ne!(policy.backoff(3, 0), policy.backoff(3, 1));
    }

    // -- checkpoints over the wire ------------------------------------------

    #[test]
    fn checkpoint_over_sockets_acks_seq_and_writes_files() {
        let dir = gz_testutil::TempDir::new("gz-wire-ckpt");
        let mut config = ShardConfig::in_ram(16, 2);
        config.checkpoint_dir = Some(dir.path().to_path_buf());
        let (mut socket, handles) = spawn_local_socket_workers(&config).unwrap();
        for node in 0..16u32 {
            let batch = Batch { node, others: vec![encode_other((node + 1) % 16, false)] };
            socket.send_batch(node % 2, batch).unwrap();
        }
        let seqs = socket.checkpoint_shards().unwrap();
        assert_eq!(seqs, vec![8, 8], "each shard acked its own batch count");
        for index in 0..2u32 {
            let path =
                dir.path().join(crate::sharding::shard_checkpoint_file_name(index, 2, config.seed));
            assert!(path.exists(), "shard {index} checkpoint file missing");
        }
        socket.shutdown().unwrap();
        for h in handles {
            // The explicit round plus the final checkpoint every worker
            // with a configured path cuts on a clean `Shutdown`.
            assert_eq!(h.join().unwrap().unwrap().checkpoints, 2);
        }
    }

    // -- recovery: respawn, resync, replay ----------------------------------

    /// A stream that injects a worker crash: after `budget` bytes have been
    /// read, every read fails. Dropping the stream (when the serve loop
    /// errors out) closes the socket — exactly what a SIGKILLed process
    /// does, minus the process.
    struct DyingStream {
        inner: UnixStream,
        budget: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl Read for DyingStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            use std::sync::atomic::Ordering;
            let left = self.budget.load(Ordering::SeqCst);
            if left == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected worker crash",
                ));
            }
            let want = buf.len().min(left);
            let n = self.inner.read(&mut buf[..want])?;
            self.budget.fetch_sub(n, Ordering::SeqCst);
            Ok(n)
        }
    }

    impl Write for DyingStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn recovering_transport_replays_after_worker_death() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::{Arc, Mutex};

        let dir = gz_testutil::TempDir::new("gz-recover");
        let mut config = ShardConfig::in_ram(16, 2);
        config.checkpoint_dir = Some(dir.path().to_path_buf());
        let digest = config.params_digest();

        fn spawn_worker(
            config: &ShardConfig,
            index: u32,
            budget: Arc<AtomicUsize>,
        ) -> (UnixStream, LocalWorkerHandle) {
            let (ours, theirs) = UnixStream::pair().unwrap();
            let cfg = config.clone();
            let handle = std::thread::spawn(move || {
                let pipeline = new_pipeline_resuming(&cfg, index)?;
                let mut stream = DyingStream { inner: theirs, budget };
                serve_shard_connection(&mut stream, &pipeline, cfg.params_digest())
            });
            (ours, handle)
        }

        let unlimited = || Arc::new(AtomicUsize::new(usize::MAX));
        let shard0_budget = Arc::new(AtomicUsize::new(usize::MAX));
        let (ours0, doomed_handle) = spawn_worker(&config, 0, Arc::clone(&shard0_budget));
        let (ours1, handle1) = spawn_worker(&config, 1, unlimited());
        let respawned: Arc<Mutex<Vec<LocalWorkerHandle>>> = Arc::new(Mutex::new(Vec::new()));

        let inner = SocketTransport::handshake(vec![ours0, ours1], digest).unwrap();
        let respawned_for_closure = Arc::clone(&respawned);
        let respawn_config = config.clone();
        let mut transport = RecoveringTransport::new(
            inner,
            digest,
            TransportTimeouts {
                connect: None,
                read: Some(Duration::from_secs(5)),
                write: Some(Duration::from_secs(5)),
            },
            RetryPolicy {
                attempts: 3,
                base: Duration::from_millis(1),
                max: Duration::from_millis(10),
                jitter_seed: 7,
            },
            Box::new(move |index| {
                let budget = Arc::new(AtomicUsize::new(usize::MAX));
                let (ours, handle) = spawn_worker(&respawn_config, index, budget);
                respawned_for_closure.lock().unwrap().push(handle);
                Ok(ours)
            }),
        )
        .unwrap();
        let stats = transport.stats();

        // Reference: the same batches through an uninterrupted transport.
        let phase1: Vec<(u32, u32)> = (0..16u32).map(|n| (n, (n + 1) % 16)).collect();
        let phase2: Vec<(u32, u32)> = (0..16u32).map(|n| (n, (n + 5) % 16)).collect();
        let mut reference = InProcessTransport::new(&ShardConfig::in_ram(16, 2)).unwrap();
        for &(node, other) in phase1.iter().chain(&phase2) {
            let batch = Batch { node, others: vec![encode_other(other, false)] };
            reference.send_batch(node % 2, batch).unwrap();
        }
        reference.flush().unwrap();

        // Phase 1, then a checkpoint round (prunes both replay logs).
        for &(node, other) in &phase1 {
            let batch = Batch { node, others: vec![encode_other(other, false)] };
            transport.send_batch(node % 2, batch).unwrap();
        }
        assert_eq!(transport.checkpoint_shards().unwrap(), vec![8, 8]);
        assert_eq!(stats.checkpoints(), 2);

        // Kill shard 0's worker a few dozen bytes into phase 2.
        shard0_budget.store(64, std::sync::atomic::Ordering::SeqCst);
        for &(node, other) in &phase2 {
            let batch = Batch { node, others: vec![encode_other(other, false)] };
            transport.send_batch(node % 2, batch).unwrap();
        }
        transport.flush().unwrap();

        // The recovered state must be bit-identical to the uninterrupted run.
        let sort = |mut v: Vec<SketchEntry>| {
            v.sort_by_key(|e| e.node);
            v
        };
        assert_eq!(
            sort(transport.gather().unwrap()),
            sort(reference.gather().unwrap()),
            "post-recovery sketches must match an uninterrupted run exactly"
        );

        // Exactly one death: one replay, one reconnect attempt, and the
        // replayed tail is bounded by phase 2's shard-0 share.
        assert_eq!(stats.replays(), 1);
        assert_eq!(stats.reconnect_attempts(), 1);
        assert!(
            (1..=8).contains(&stats.batches_replayed()),
            "replayed {} batches, expected within phase 2's shard-0 share",
            stats.batches_replayed()
        );

        transport.shutdown().unwrap();
        reference.shutdown().unwrap();
        assert!(
            doomed_handle.join().unwrap().is_err(),
            "the doomed worker dies of its injected crash"
        );
        handle1.join().unwrap().unwrap();
        let handles: Vec<LocalWorkerHandle> = respawned.lock().unwrap().drain(..).collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn recovery_gives_up_after_the_retry_budget() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (ours, theirs) = UnixStream::pair().unwrap();
        let worker = handshake_then(theirs, drop);
        let inner = SocketTransport::handshake(vec![ours], digest).unwrap();
        let mut transport = RecoveringTransport::new(
            inner,
            digest,
            TransportTimeouts::default(),
            RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(1),
                max: Duration::from_millis(2),
                jitter_seed: 1,
            },
            Box::new(|_| Err(GzError::InvalidConfig("respawn disabled".into()))),
        )
        .unwrap();
        let stats = transport.stats();
        worker.join().unwrap();

        let mut failure = None;
        for i in 0..100_000u32 {
            let batch = Batch { node: i % 16, others: vec![encode_other((i + 1) % 16, false)] };
            if let Err(e) = transport.send_batch(0, batch) {
                failure = Some(e);
                break;
            }
        }
        assert!(
            matches!(failure, Some(GzError::InvalidConfig(_))),
            "the respawn closure's refusal is the final error"
        );
        assert_eq!(stats.reconnect_attempts(), 2, "both budgeted attempts were spent");
        assert_eq!(stats.replays(), 0);
    }

    #[test]
    fn replay_log_cap_forces_inline_checkpoints() {
        let dir = gz_testutil::TempDir::new("gz-cap");
        let mut config = ShardConfig::in_ram(16, 1);
        config.checkpoint_dir = Some(dir.path().to_path_buf());
        let digest = config.params_digest();
        let (ours, theirs) = UnixStream::pair().unwrap();
        let cfg = config.clone();
        let worker = std::thread::spawn(move || {
            let pipeline = new_pipeline_resuming(&cfg, 0)?;
            let mut stream = theirs;
            serve_shard_connection(&mut stream, &pipeline, cfg.params_digest())
        });
        let inner = SocketTransport::handshake(vec![ours], digest).unwrap();
        let mut transport = RecoveringTransport::new(
            inner,
            digest,
            TransportTimeouts::default(),
            RetryPolicy::default(),
            Box::new(|_| Err(GzError::InvalidConfig("no respawn in this test".into()))),
        )
        .unwrap()
        .with_replay_log_cap(4);
        let stats = transport.stats();

        for i in 0..12u32 {
            let batch = Batch { node: i % 16, others: vec![encode_other((i + 1) % 16, false)] };
            transport.send_batch(0, batch).unwrap();
        }
        // 12 batches with a cap of 4: the log hit the cap three times, each
        // forcing a checkpoint round that pruned it.
        assert_eq!(stats.checkpoints(), 3);
        transport.shutdown().unwrap();
        worker.join().unwrap().unwrap();
    }

    /// An in-memory Read + Write stream for driving the serve loop directly.
    struct ReadWriteBuf {
        read: Vec<u8>,
        at: usize,
        written: Vec<u8>,
    }

    impl Read for ReadWriteBuf {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.read.len() - self.at);
            buf[..n].copy_from_slice(&self.read[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    impl Write for ReadWriteBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
