//! Shard transports: how coordinator batches reach shard pipelines.
//!
//! The [`ShardTransport`] trait abstracts the coordinator/shard boundary so
//! the *same* coordinator code (router + gather + Boruvka) runs
//! single-process or multi-process:
//!
//! - [`InProcessTransport`] — shards are [`ShardPipeline`]s owned by the
//!   coordinator; "sending" a batch is a queue push. This is the refactored
//!   form of the old `ShardedGraphZeppelin`.
//! - [`SocketTransport`] — shards live behind byte streams (`TcpStream`,
//!   `UnixStream`, or anything `Read + Write`) speaking the
//!   [`gz_stream::wire`] protocol; the remote end runs
//!   [`serve_shard_connection`]'s event loop.
//!
//! Every transport starts with a `Hello`/`HelloAck` digest handshake: two
//! sides whose sketch parameters differ would produce unmergeable sketches,
//! so mismatches are refused before any batch flows.

use crate::error::GzError;
use crate::sharding::{ShardConfig, ShardPipeline};
use gz_gutters::{Batch, WorkQueue};
use gz_stream::wire::{SketchEntry, WireMessage};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A coordinator's view of its shards.
pub trait ShardTransport {
    /// Number of shards behind this transport.
    fn num_shards(&self) -> u32;

    /// Ship a node-keyed batch to `shard`.
    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError>;

    /// Make every shipped batch visible in the shards' sketches (the
    /// distributed form of the paper's `cleanup()`).
    fn flush(&mut self) -> Result<(), GzError>;

    /// Collect every shard's serialized sketches at the coordinator.
    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError>;

    /// Collect only round `round`'s slice of every shard's sketches — the
    /// streaming query's gather unit. Each reply is `rounds`-fold smaller
    /// than a full [`Self::gather`], so the coordinator holds at most one
    /// round of the universe at a time. With `epochs = None` each shard
    /// flushes and answers from its live sketches; with `Some(ids)` shard
    /// `i` answers from its sealed epoch `ids[i]` **without** flushing, so
    /// the gather runs concurrently with ingestion (DESIGN.md §11).
    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError>;

    /// Gather round `round` with overlap: issue the request to every shard
    /// up front, then invoke `on_reply` once per shard's reply *as it
    /// arrives*, so the coordinator folds one shard's slices while the
    /// others are still serializing or transmitting theirs. An error from
    /// `on_reply` stops folding and is returned (remaining shards are still
    /// drained where the transport needs it for framing sanity). `epochs`
    /// pins the gather exactly as in [`Self::gather_round`]. The default
    /// collects everything first — transports with real concurrency
    /// override it.
    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        on_reply(self.gather_round(round, epochs)?)
    }

    /// Seal one epoch on every shard — each shard flushes its pipeline and
    /// freezes the sealed state behind copy-on-write — and return the
    /// per-shard epoch ids, indexed by shard. The ids are what epoch-pinned
    /// gathers and [`Self::release_epoch`] quote back.
    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError>;

    /// Release previously sealed epochs (`epochs[i]` on shard `i`), letting
    /// each shard reclaim its copy-on-write captures. Idempotent: releasing
    /// an already-released id is not an error.
    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError>;

    /// Tear the shards down.
    fn shutdown(&mut self) -> Result<(), GzError>;
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// All shards in this process: the single-process deployment, now expressed
/// as a transport so it shares every line of coordinator code with the
/// multi-process one.
pub struct InProcessTransport {
    shards: Vec<ShardPipeline>,
}

impl InProcessTransport {
    /// Build `config.num_shards` pipelines in this process.
    pub fn new(config: &ShardConfig) -> Result<Self, GzError> {
        let shards = (0..config.num_shards)
            .map(|i| ShardPipeline::new(config, i))
            .collect::<Result<Vec<_>, GzError>>()?;
        Ok(InProcessTransport { shards })
    }

    /// Sketch bytes held per shard (footprint accounting).
    pub fn shard_sketch_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.sketch_bytes()).collect()
    }
}

impl ShardTransport for InProcessTransport {
    fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError> {
        self.shards[shard as usize].enqueue(batch.node, batch.others)
    }

    fn flush(&mut self) -> Result<(), GzError> {
        for shard in &self.shards {
            shard.flush();
        }
        Ok(())
    }

    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.gather_serialized());
        }
        Ok(entries)
    }

    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError> {
        check_epochs(epochs, self.shards.len())?;
        let mut entries = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            entries.extend(match epochs {
                None => shard.gather_round_serialized(round as usize)?,
                Some(ids) => shard.gather_round_serialized_at(round as usize, ids[i])?,
            });
        }
        Ok(entries)
    }

    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        check_epochs(epochs, self.shards.len())?;
        // Every shard serializes its round slice on its own scoped thread;
        // replies funnel through a queue sized to hold them all (so a
        // failed fold never leaves a producer blocked) and are folded in
        // arrival order — folding is XOR, so arrival order is immaterial.
        let queue: WorkQueue<Result<Vec<SketchEntry>, GzError>> =
            WorkQueue::with_capacity(self.shards.len().max(1));
        std::thread::scope(|scope| {
            for (i, shard) in self.shards.iter().enumerate() {
                let queue = &queue;
                scope.spawn(move || {
                    // A panicking gather must still push *something*: the
                    // coordinator pops one reply per shard, and a missing
                    // push would leave it blocked forever inside this scope
                    // — turning the panic into a silent hang. Push an error
                    // to unblock it, then re-raise so `thread::scope`
                    // propagates the panic as usual.
                    let reply =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match epochs {
                            None => shard.gather_round_serialized(round as usize),
                            Some(ids) => shard.gather_round_serialized_at(round as usize, ids[i]),
                        }));
                    match reply {
                        Ok(reply) => {
                            queue.push(reply);
                        }
                        Err(payload) => {
                            queue.push(Err(GzError::Protocol("shard gather panicked".into())));
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
            let mut result = Ok(());
            for _ in 0..self.shards.len() {
                let Some(reply) = queue.pop() else { break };
                if result.is_err() {
                    continue; // drain remaining producers
                }
                result = match reply {
                    Ok(entries) => on_reply(entries),
                    Err(e) => Err(e),
                };
            }
            result
        })
    }

    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError> {
        self.shards.iter().map(|shard| shard.seal_epoch()).collect()
    }

    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError> {
        check_epochs(Some(epochs), self.shards.len())?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.release_epoch(epochs[i]);
        }
        Ok(())
    }

    fn shutdown(&mut self) -> Result<(), GzError> {
        self.shards.clear(); // Drop closes queues and joins workers.
        Ok(())
    }
}

/// An epoch-pinned request must carry exactly one epoch id per shard.
fn check_epochs(epochs: Option<&[u64]>, num_shards: usize) -> Result<(), GzError> {
    match epochs {
        Some(ids) if ids.len() != num_shards => {
            Err(GzError::Protocol(format!("{} epoch ids for {num_shards} shards", ids.len())))
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

/// Shards behind byte streams speaking the wire protocol. Stream `i`
/// connects to the worker serving shard `i`.
pub struct SocketTransport<S: Read + Write> {
    links: Vec<S>,
}

impl SocketTransport<TcpStream> {
    /// Connect to TCP shard workers at `addrs` (one per shard, in shard
    /// order) and run the parameter handshake.
    pub fn connect_tcp(addrs: &[String], params_digest: u64) -> Result<Self, GzError> {
        let mut links = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr.as_str())?;
            // Frames are written whole; disabling Nagle keeps the
            // request/reply turns (Flush, Gather) from stalling on
            // delayed ACKs.
            stream.set_nodelay(true)?;
            links.push(stream);
        }
        Self::handshake(links, params_digest)
    }
}

impl<S: Read + Write> SocketTransport<S> {
    /// Take ownership of connected streams (one per shard, in shard order)
    /// and run the `Hello`/`HelloAck` handshake on each.
    pub fn handshake(mut links: Vec<S>, params_digest: u64) -> Result<Self, GzError> {
        if links.is_empty() {
            return Err(GzError::InvalidConfig("need at least one shard link".into()));
        }
        for (i, link) in links.iter_mut().enumerate() {
            WireMessage::Hello { params_digest }.write_to(link)?;
            match WireMessage::read_from(link)? {
                WireMessage::HelloAck { params_digest: theirs } if theirs == params_digest => {}
                WireMessage::HelloAck { params_digest: theirs } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} parameter digest {theirs:#x} != coordinator {params_digest:#x}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered Hello with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(SocketTransport { links })
    }
}

impl<S: Read + Write> ShardTransport for SocketTransport<S> {
    fn num_shards(&self) -> u32 {
        self.links.len() as u32
    }

    fn send_batch(&mut self, shard: u32, batch: Batch) -> Result<(), GzError> {
        WireMessage::Batch { node: batch.node, records: batch.others }
            .write_to(&mut self.links[shard as usize])?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), GzError> {
        // Pipelined: all shards flush concurrently, then all acks collected.
        for link in &mut self.links {
            WireMessage::Flush.write_to(link)?;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            match WireMessage::read_from(link)? {
                WireMessage::FlushAck => {}
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered Flush with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn gather(&mut self) -> Result<Vec<SketchEntry>, GzError> {
        for link in &mut self.links {
            WireMessage::GatherSketches.write_to(link)?;
        }
        let mut entries = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            match WireMessage::read_from(link)? {
                WireMessage::Sketches { entries: shard_entries } => {
                    entries.extend(shard_entries);
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherSketches with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(entries)
    }

    fn gather_round(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
    ) -> Result<Vec<SketchEntry>, GzError> {
        check_epochs(epochs, self.links.len())?;
        // Pipelined like the full gather: all shards serialize their round
        // slice concurrently, then the replies are collected in shard order.
        for (i, link) in self.links.iter_mut().enumerate() {
            WireMessage::GatherRound { round, epoch: epochs.map(|ids| ids[i]) }.write_to(link)?;
        }
        let mut entries = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            match WireMessage::read_from(link)? {
                WireMessage::RoundSketches { round: theirs, entries: shard_entries }
                    if theirs == round =>
                {
                    entries.extend(shard_entries);
                }
                WireMessage::RoundSketches { round: theirs, .. } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound({round}) with round {theirs}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(entries)
    }

    fn gather_round_each(
        &mut self,
        round: u32,
        epochs: Option<&[u64]>,
        on_reply: &mut dyn FnMut(Vec<SketchEntry>) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        check_epochs(epochs, self.links.len())?;
        // All requests go out before any reply is read, so every shard
        // serializes its slice concurrently; each reply is then folded as
        // soon as its link delivers it, while later shards are still
        // working. (Replies are read in link order — a shard that finishes
        // early is buffered by the transport until its turn.)
        for (i, link) in self.links.iter_mut().enumerate() {
            WireMessage::GatherRound { round, epoch: epochs.map(|ids| ids[i]) }.write_to(link)?;
        }
        let mut result = Ok(());
        for (i, link) in self.links.iter_mut().enumerate() {
            // Keep reading even after a fold error: every link owes exactly
            // one reply, and leaving it unread would desynchronize the
            // framing for whatever the coordinator does next.
            match WireMessage::read_from(link)? {
                WireMessage::RoundSketches { round: theirs, entries } if theirs == round => {
                    if result.is_ok() {
                        result = on_reply(entries);
                    }
                }
                WireMessage::RoundSketches { round: theirs, .. } => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound({round}) with round {theirs}"
                    )));
                }
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered GatherRound with {}",
                        other.name()
                    )));
                }
            }
        }
        result
    }

    fn seal_epoch(&mut self) -> Result<Vec<u64>, GzError> {
        // Pipelined: every shard flushes and seals concurrently, then the
        // per-shard epoch ids are collected in shard order.
        for link in &mut self.links {
            WireMessage::SealEpoch.write_to(link)?;
        }
        let mut ids = Vec::with_capacity(self.links.len());
        for (i, link) in self.links.iter_mut().enumerate() {
            match WireMessage::read_from(link)? {
                WireMessage::EpochSealed { epoch } => ids.push(epoch),
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered SealEpoch with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(ids)
    }

    fn release_epoch(&mut self, epochs: &[u64]) -> Result<(), GzError> {
        check_epochs(Some(epochs), self.links.len())?;
        for (i, link) in self.links.iter_mut().enumerate() {
            WireMessage::ReleaseEpoch { epoch: epochs[i] }.write_to(link)?;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            match WireMessage::read_from(link)? {
                WireMessage::EpochReleased => {}
                other => {
                    return Err(GzError::Protocol(format!(
                        "shard {i} answered ReleaseEpoch with {}",
                        other.name()
                    )));
                }
            }
        }
        Ok(())
    }

    fn shutdown(&mut self) -> Result<(), GzError> {
        // Attempt every link even if some fail: a dead shard must not leave
        // its siblings waiting for a Shutdown that never arrives (their
        // serve loops block in read, and a coordinator joining worker
        // threads would hang forever).
        let mut first_err = None;
        for link in &mut self.links {
            if let Err(e) = WireMessage::Shutdown.write_to(link) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard-worker event loop
// ---------------------------------------------------------------------------

/// Counters a worker reports when its connection ends.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardServeStats {
    /// `Batch` messages received.
    pub batches: u64,
    /// Update records inside those batches.
    pub records: u64,
    /// `Flush` round trips served.
    pub flushes: u64,
    /// `GatherSketches`/`GatherRound` round trips served.
    pub gathers: u64,
    /// `SealEpoch` round trips served.
    pub seals: u64,
}

/// Drive one coordinator connection over `stream` against `pipeline`:
/// the shard-worker event loop. Returns when the coordinator sends
/// `Shutdown`; errors end the loop (and should end the worker).
pub fn serve_shard_connection<S: Read + Write>(
    stream: &mut S,
    pipeline: &ShardPipeline,
    params_digest: u64,
) -> Result<ShardServeStats, GzError> {
    let mut stats = ShardServeStats::default();
    loop {
        match WireMessage::read_from(stream)? {
            WireMessage::Hello { params_digest: theirs } => {
                // Always answer with our digest; a mismatched coordinator
                // sees the difference, and we refuse to ingest for it.
                WireMessage::HelloAck { params_digest }.write_to(stream)?;
                if theirs != params_digest {
                    return Err(GzError::Protocol(format!(
                        "coordinator digest {theirs:#x} != shard {params_digest:#x}"
                    )));
                }
            }
            WireMessage::Batch { node, records } => {
                stats.batches += 1;
                stats.records += records.len() as u64;
                pipeline.enqueue(node, records)?;
            }
            WireMessage::Flush => {
                stats.flushes += 1;
                pipeline.flush();
                WireMessage::FlushAck.write_to(stream)?;
            }
            WireMessage::GatherSketches => {
                stats.gathers += 1;
                let entries = pipeline.gather_serialized();
                WireMessage::Sketches { entries }.write_to(stream)?;
            }
            WireMessage::GatherRound { round, epoch } => {
                stats.gathers += 1;
                // An epoch-pinned gather must NOT flush — answering from the
                // sealed snapshot while ingestion runs is the whole point.
                let entries = match epoch {
                    None => pipeline.gather_round_serialized(round as usize)?,
                    Some(id) => pipeline.gather_round_serialized_at(round as usize, id)?,
                };
                WireMessage::RoundSketches { round, entries }.write_to(stream)?;
            }
            WireMessage::SealEpoch => {
                stats.seals += 1;
                let epoch = pipeline.seal_epoch()?;
                WireMessage::EpochSealed { epoch }.write_to(stream)?;
            }
            WireMessage::ReleaseEpoch { epoch } => {
                pipeline.release_epoch(epoch);
                WireMessage::EpochReleased.write_to(stream)?;
            }
            WireMessage::Shutdown => return Ok(stats),
            other => {
                return Err(GzError::Protocol(format!(
                    "unexpected {} on a shard-worker connection",
                    other.name()
                )));
            }
        }
    }
}

/// Join handle of a shard worker spawned by [`spawn_local_socket_workers`].
pub type LocalWorkerHandle = std::thread::JoinHandle<Result<ShardServeStats, GzError>>;

/// Spawn `config.num_shards` shard workers on local threads connected by
/// `UnixStream` pairs, and hand back the coordinator-side transport plus
/// the worker join handles. This exercises the *entire* wire path (framing,
/// handshake, event loop) without OS processes — the form the equivalence
/// suite uses; the multi-process example does the same over TCP with real
/// processes.
pub fn spawn_local_socket_workers(
    config: &ShardConfig,
) -> Result<(SocketTransport<std::os::unix::net::UnixStream>, Vec<LocalWorkerHandle>), GzError> {
    let digest = config.params_digest();
    let mut coordinator_ends = Vec::with_capacity(config.num_shards as usize);
    let mut handles = Vec::with_capacity(config.num_shards as usize);
    for index in 0..config.num_shards {
        let (ours, theirs) = std::os::unix::net::UnixStream::pair()?;
        coordinator_ends.push(ours);
        let worker_config = config.clone();
        handles.push(std::thread::spawn(move || {
            let pipeline = ShardPipeline::new(&worker_config, index)?;
            let mut stream = theirs;
            serve_shard_connection(&mut stream, &pipeline, worker_config.params_digest())
        }));
    }
    let transport = SocketTransport::handshake(coordinator_ends, digest)?;
    Ok((transport, handles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::encode_other;

    #[test]
    fn handshake_rejects_digest_mismatch() {
        let config = ShardConfig::in_ram(16, 1);
        let digest = config.params_digest();
        let (mut ours, theirs) = std::os::unix::net::UnixStream::pair().unwrap();
        let worker = std::thread::spawn(move || {
            let pipeline = ShardPipeline::new(&config, 0).unwrap();
            let mut stream = theirs;
            serve_shard_connection(&mut stream, &pipeline, digest)
        });
        // Coordinator advertises a different digest: both sides must refuse.
        let result = SocketTransport::handshake(vec![&mut ours], digest ^ 1);
        assert!(matches!(result, Err(GzError::Protocol(_))));
        assert!(matches!(worker.join().unwrap(), Err(GzError::Protocol(_))));
    }

    #[test]
    fn socket_and_in_process_transports_gather_identically() {
        let config = ShardConfig::in_ram(12, 3);
        let updates: Vec<(u32, u32)> =
            (0..30u32).map(|i| (i % 12, (i * 5 + 1) % 12)).filter(|&(a, b)| a != b).collect();

        let mut in_proc = InProcessTransport::new(&config).unwrap();
        let (mut socket, handles) = spawn_local_socket_workers(&config).unwrap();

        for &(u, v) in &updates {
            for (dst, other) in [(u, v), (v, u)] {
                let batch = Batch { node: dst, others: vec![encode_other(other, false)] };
                in_proc.send_batch(dst % 3, batch.clone()).unwrap();
                socket.send_batch(dst % 3, batch).unwrap();
            }
        }
        in_proc.flush().unwrap();
        socket.flush().unwrap();

        let sort = |mut v: Vec<SketchEntry>| {
            v.sort_by_key(|e| e.node);
            v
        };
        let a = sort(in_proc.gather().unwrap());
        let b = sort(socket.gather().unwrap());
        assert_eq!(a, b, "wire transport must not change sketch state");

        in_proc.shutdown().unwrap();
        socket.shutdown().unwrap();
        for h in handles {
            let stats = h.join().unwrap().unwrap();
            assert!(stats.batches > 0);
            assert_eq!(stats.flushes, 1);
            assert_eq!(stats.gathers, 1);
        }
    }

    #[test]
    fn gather_round_each_delivers_every_shard_exactly_once() {
        // Both transports' overlapped gathers must deliver the same entry
        // multiset as the collect-everything gather_round, one reply per
        // shard — whatever order the concurrent shard workers finish in.
        let config = ShardConfig::in_ram(20, 4);
        let mut in_proc = InProcessTransport::new(&config).unwrap();
        let (mut socket, handles) = spawn_local_socket_workers(&config).unwrap();
        for node in 0..20u32 {
            let batch = Batch { node, others: vec![encode_other((node + 1) % 20, false)] };
            in_proc.send_batch(node % 4, batch.clone()).unwrap();
            socket.send_batch(node % 4, batch).unwrap();
        }
        in_proc.flush().unwrap();
        socket.flush().unwrap();

        let reference = {
            let mut v = in_proc.gather_round(1, None).unwrap();
            v.sort_by_key(|e| e.node);
            v
        };
        for transport in [&mut in_proc as &mut dyn ShardTransport, &mut socket] {
            let mut replies = 0usize;
            let mut collected = Vec::new();
            transport
                .gather_round_each(1, None, &mut |entries| {
                    replies += 1;
                    collected.extend(entries);
                    Ok(())
                })
                .unwrap();
            assert_eq!(replies, 4, "one reply per shard");
            collected.sort_by_key(|e| e.node);
            assert_eq!(collected, reference);
        }

        in_proc.shutdown().unwrap();
        socket.shutdown().unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn gather_round_each_stops_folding_after_an_error() {
        let config = ShardConfig::in_ram(12, 3);
        let mut transport = InProcessTransport::new(&config).unwrap();
        let mut replies = 0usize;
        let result = transport.gather_round_each(0, None, &mut |_| {
            replies += 1;
            Err(GzError::Protocol("fold rejected".into()))
        });
        assert!(matches!(result, Err(GzError::Protocol(_))));
        assert_eq!(replies, 1, "folding must stop at the first error");
        transport.shutdown().unwrap();
    }

    #[test]
    fn shutdown_reaches_live_shards_past_a_dead_one() {
        let config = ShardConfig::in_ram(16, 2);
        let digest = config.params_digest();

        // Shard 0: a worker that dies right after the handshake.
        let (ours0, theirs0) = std::os::unix::net::UnixStream::pair().unwrap();
        let dead = std::thread::spawn(move || {
            let mut stream = theirs0;
            match WireMessage::read_from(&mut stream).unwrap() {
                WireMessage::Hello { params_digest } => {
                    WireMessage::HelloAck { params_digest }.write_to(&mut stream).unwrap();
                }
                other => panic!("expected Hello, got {}", other.name()),
            }
            // Dropping the stream here simulates a crashed shard worker.
        });
        // Shard 1: a healthy worker.
        let (ours1, theirs1) = std::os::unix::net::UnixStream::pair().unwrap();
        let config1 = config.clone();
        let live = std::thread::spawn(move || {
            let pipeline = ShardPipeline::new(&config1, 1).unwrap();
            let mut stream = theirs1;
            serve_shard_connection(&mut stream, &pipeline, digest)
        });

        let mut transport = SocketTransport::handshake(vec![ours0, ours1], digest).unwrap();
        dead.join().unwrap();
        // Shutdown fails on the dead link but must still reach shard 1 —
        // otherwise the live worker blocks in read forever and this test
        // hangs on join.
        assert!(transport.shutdown().is_err());
        live.join().unwrap().unwrap();
    }

    #[test]
    fn serve_loop_rejects_coordinator_only_messages() {
        let config = ShardConfig::in_ram(8, 1);
        let pipeline = ShardPipeline::new(&config, 0).unwrap();
        let mut buf = Vec::new();
        WireMessage::FlushAck.write_to(&mut buf).unwrap();
        let mut stream = ReadWriteBuf { read: buf, at: 0, written: Vec::new() };
        assert!(matches!(
            serve_shard_connection(&mut stream, &pipeline, config.params_digest()),
            Err(GzError::Protocol(_))
        ));
    }

    /// An in-memory Read + Write stream for driving the serve loop directly.
    struct ReadWriteBuf {
        read: Vec<u8>,
        at: usize,
        written: Vec<u8>,
    }

    impl Read for ReadWriteBuf {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.read.len() - self.at);
            buf[..n].copy_from_slice(&self.read[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    impl Write for ReadWriteBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
