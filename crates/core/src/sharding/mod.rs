//! Sharded (cluster-model) sketch ingestion — the paper's §8 outlook made
//! concrete: "Since GraphZeppelin's sketches can be updated independently
//! (Section 5.1), we believe that they can be partitioned throughout a
//! distributed cluster without sacrificing stream ingestion rate."
//!
//! The subsystem has four layers (DESIGN.md §7):
//!
//! - [`ShardRouter`] — coordinator-side inter-shard batching: per-node
//!   gutters (reusing `gz_gutters`) accumulate updates and emit node-keyed
//!   batches, replacing the old per-update routing hot path.
//! - the wire protocol (`gz_stream::wire`) — framed, versioned messages
//!   (`Hello`, `Batch`, `Flush`, `GatherSketches`, `GatherRound`,
//!   `Shutdown`) between coordinator and shard workers.
//! - [`ShardTransport`] — how batches travel: [`InProcessTransport`]
//!   (queue pushes, the single-process deployment) or [`SocketTransport`]
//!   (TCP/Unix sockets to worker processes running
//!   [`serve_shard_connection`]). The coordinator is transport-agnostic.
//! - [`ShardPipeline`] — a full per-shard ingestion stack: work queue,
//!   Graph Worker pool, and a pluggable RAM/disk store covering only the
//!   shard's owned vertices.
//!
//! The routing contract is unchanged: shard `i` owns every vertex `v` with
//! `v % num_shards == i`, each update touches at most two shards, and
//! shards never communicate until query time. Queries run in either
//! [`QueryMode`]: snapshot mode gathers every node's full sketch stack at
//! the coordinator and runs the ordinary Boruvka computation; streaming
//! mode gathers one `GatherRound` frame per Borůvka round (a `rounds`-fold
//! smaller message) and folds the slices straight into the round-driven
//! engine, so the coordinator never materializes the universe. The crucial
//! invariant — proved by the equivalence suite and the multi-process
//! example — is that a sharded system's gathered sketch state is
//! *bit-identical* to a single-node system's on the same stream, and both
//! query modes return bit-identical answers.

mod pipeline;
mod router;
mod transport;

pub use pipeline::{shard_checkpoint_file_name, ShardPipeline};
pub use router::{ReplayLog, ShardRouter};
pub use transport::{
    connect_shard_tcp, new_pipeline_resuming, serve_shard_connection, spawn_local_socket_workers,
    InProcessTransport, RecoveringTransport, RetryPolicy, ShardLink, ShardServeStats,
    ShardTransport, SocketTransport, TransportTimeouts,
};

use crate::boruvka::{boruvka_rounds_parallel, boruvka_spanning_forest_parallel, BoruvkaOutcome};
use crate::config::{GutterCapacity, LockingStrategy, QueryMode, StoreBackend};
use crate::error::GzError;
use crate::node_sketch::{CubeNodeSketch, CubeRoundSketch, SketchParams};
use crate::sparse::SparseSet;
use crate::store::io_backend::IoBackendConfig;
use crate::store::SketchSource;
use gz_gutters::WorkerPool;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration shared by the coordinator and every shard worker. Both
/// sides must agree on all sketch-defining fields — enforced at connection
/// time by the [`Self::params_digest`] handshake.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Vertex universe size.
    pub num_nodes: u64,
    /// Number of shards; shard `i` owns `{v : v % num_shards == i}`.
    pub num_shards: u32,
    /// Master seed (all shards must share it for mergeable sketches).
    pub seed: u64,
    /// Boruvka rounds; `None` = the paper's `⌈log_{3/2} V⌉`.
    pub num_rounds: Option<u32>,
    /// CubeSketch columns.
    pub num_columns: u32,
    /// Graph Workers per shard pipeline.
    pub workers_per_shard: usize,
    /// Batch-level locking discipline inside each shard.
    pub locking: LockingStrategy,
    /// Per-shard sketch store placement (RAM or disk).
    pub store: StoreBackend,
    /// Hybrid-representation promotion threshold τ, mirroring
    /// [`crate::config::GzConfig::sketch_threshold`]: each owned node keeps
    /// an exact toggle-set until it exceeds τ live neighbors, then is
    /// replayed into a dense sketch. 0 = always dense. Not part of the
    /// parameter digest: promotion-by-replay is bit-identical, so shards
    /// with different thresholds still gather mergeable state.
    pub sketch_threshold: u32,
    /// Router gutter capacity (the inter-shard batch size knob).
    pub router_capacity: GutterCapacity,
    /// How the coordinator gathers sketches at query time (coordinator-side
    /// only: not part of the parameter digest, since it cannot change the
    /// sketch state or the answers).
    pub query_mode: QueryMode,
    /// Worker threads the coordinator's Borůvka engine folds and samples
    /// with; `None` = the per-shard ingestion worker count. Coordinator-side
    /// only — answers are bit-identical at any thread count.
    pub query_threads: Option<usize>,
    /// Bounded staleness for streaming queries (DESIGN.md §11), mirroring
    /// [`crate::config::GzConfig::query_staleness`]: `None` (the default)
    /// keeps the stop-the-world behavior; `Some(n)` lets a streaming query
    /// reuse the last sealed epoch while at most `n` updates were routed
    /// since its seal. Coordinator-side only — not part of the parameter
    /// digest.
    pub query_staleness: Option<u64>,
    /// Disk-store I/O backend tunables for each shard's store, mirroring
    /// [`crate::config::GzConfig::io`]. Ignored by RAM stores and not part
    /// of the parameter digest — the backend changes how bytes move, never
    /// which bytes exist, so shards with different backends still gather
    /// mergeable state.
    pub io: IoBackendConfig,
    /// Directory where each shard persists its `GZS2` checkpoint
    /// (DESIGN.md §14). `None` disables checkpointing. Worker-side (and
    /// used by in-process pipelines); not part of the parameter digest —
    /// where durable state lands cannot change the sketch bytes.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Coordinator-side checkpoint cadence: after every `n` routed batches
    /// the coordinator asks all shards to checkpoint, which prunes the
    /// recovery replay log. `None` = only explicit
    /// [`ShardedGraphZeppelin::checkpoint_shards`] calls. Not part of the
    /// parameter digest.
    pub checkpoint_every: Option<u64>,
}

impl ShardConfig {
    /// In-RAM defaults matching [`crate::config::GzConfig::in_ram`], so a
    /// sharded system with the same seed is bit-identical to a single-node
    /// one.
    pub fn in_ram(num_nodes: u64, num_shards: u32) -> Self {
        ShardConfig {
            num_nodes,
            num_shards,
            seed: 0x5EED_1E55,
            num_rounds: None,
            num_columns: gz_sketch::geometry::DEFAULT_COLUMNS,
            workers_per_shard: 2,
            locking: LockingStrategy::DeltaSketch,
            store: StoreBackend::Ram,
            sketch_threshold: 0,
            router_capacity: GutterCapacity::SketchFactor(0.5),
            query_mode: QueryMode::default(),
            query_threads: None,
            query_staleness: None,
            io: IoBackendConfig::default(),
            checkpoint_dir: None,
            checkpoint_every: None,
        }
    }

    /// Number of Boruvka rounds (= sketches per node).
    pub fn rounds(&self) -> u32 {
        self.num_rounds.unwrap_or_else(|| crate::config::default_rounds(self.num_nodes))
    }

    /// Worker threads the coordinator queries with (defaults to the
    /// ingestion worker count).
    pub fn query_threads(&self) -> usize {
        self.query_threads.unwrap_or(self.workers_per_shard).max(1)
    }

    /// The shared sketch parameters every shard derives.
    pub fn params(&self) -> SketchParams {
        SketchParams::new(self.num_nodes, self.rounds(), self.num_columns, self.seed)
    }

    /// Digest of every sketch-defining field, exchanged in the wire
    /// handshake: a worker whose digest differs would build unmergeable
    /// sketches, so the connection is refused.
    pub fn params_digest(&self) -> u64 {
        let mut bytes = [0u8; 28];
        bytes[0..8].copy_from_slice(&self.num_nodes.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.seed.to_le_bytes());
        bytes[16..20].copy_from_slice(&self.rounds().to_le_bytes());
        bytes[20..24].copy_from_slice(&self.num_columns.to_le_bytes());
        bytes[24..28].copy_from_slice(&self.num_shards.to_le_bytes());
        gz_hash::xxh64(&bytes, u64::from(gz_stream::PROTOCOL_VERSION))
    }

    /// Validate invariants the subsystem relies on.
    pub fn validate(&self) -> Result<(), GzError> {
        if self.num_nodes < 2 {
            return Err(GzError::InvalidConfig("need at least 2 nodes".into()));
        }
        if self.num_nodes > u32::MAX as u64 {
            return Err(GzError::InvalidConfig("vertex ids must fit in u32".into()));
        }
        if self.num_shards == 0 {
            return Err(GzError::InvalidConfig("need at least one shard".into()));
        }
        if self.workers_per_shard == 0 {
            return Err(GzError::InvalidConfig("need at least one worker per shard".into()));
        }
        if self.query_threads == Some(0) {
            return Err(GzError::InvalidConfig("query_threads must be ≥ 1".into()));
        }
        if self.num_columns == 0 {
            return Err(GzError::InvalidConfig("need at least one sketch column".into()));
        }
        if self.io.queue_depth == 0 {
            return Err(GzError::InvalidConfig("io queue_depth must be ≥ 1".into()));
        }
        if self.checkpoint_every == Some(0) {
            return Err(GzError::InvalidConfig("checkpoint_every must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// A sharded GraphZeppelin: a batching router in front of `k` shard
/// pipelines behind a pluggable transport, plus a query coordinator.
///
/// The transport sits behind a mutex shared with any [`ShardedEpoch`]
/// handles from [`Self::begin_epoch`]: epoch-pinned gathers and ingestion
/// batches interleave at message granularity on the same links, so a query
/// thread folds a sealed snapshot while this system keeps routing updates.
pub struct ShardedGraphZeppelin {
    params: Arc<SketchParams>,
    router: ShardRouter,
    transport: Arc<parking_lot::Mutex<Box<dyn ShardTransport + Send>>>,
    /// Local worker threads (socket transports spawned in-process); joined
    /// on shutdown.
    local_workers: Vec<JoinHandle<Result<ShardServeStats, GzError>>>,
    num_nodes: u64,
    updates: u64,
    query_mode: QueryMode,
    query_threads: usize,
    /// Last sealed epoch and the update count at its seal — the bounded-
    /// staleness cache (`ShardConfig::query_staleness`).
    cached_epoch: Option<(ShardedEpoch, u64)>,
    query_staleness: Option<u64>,
    /// Checkpoint cadence in routed batches (`ShardConfig::checkpoint_every`).
    checkpoint_every: Option<u64>,
    /// Router batch count at the last fleet checkpoint.
    last_checkpoint_batches: u64,
    shut_down: bool,
}

impl ShardedGraphZeppelin {
    /// Single-process sharded system with default parameters — the
    /// convenience form (`num_shards` shards over `num_nodes` vertices,
    /// deterministic in `seed`).
    pub fn new(num_nodes: u64, num_shards: u32, seed: u64) -> Result<Self, GzError> {
        let mut config = ShardConfig::in_ram(num_nodes, num_shards);
        config.seed = seed;
        Self::in_process(config)
    }

    /// Single-process deployment: shards are pipelines in this process
    /// behind an [`InProcessTransport`].
    pub fn in_process(config: ShardConfig) -> Result<Self, GzError> {
        let transport = InProcessTransport::new(&config)?;
        Self::with_transport(config, Box::new(transport))
    }

    /// Shards on local threads behind Unix-socket pairs: the full wire
    /// protocol without OS processes (useful for tests and for exercising
    /// the socket path on one machine).
    pub fn local_socket(config: ShardConfig) -> Result<Self, GzError> {
        let (transport, workers) = spawn_local_socket_workers(&config)?;
        let mut system = Self::with_transport(config, Box::new(transport))?;
        system.local_workers = workers;
        Ok(system)
    }

    /// The general form: any transport whose shard count matches
    /// `config.num_shards` (e.g. [`SocketTransport::connect_tcp`] to
    /// worker processes).
    pub fn with_transport(
        config: ShardConfig,
        transport: Box<dyn ShardTransport + Send>,
    ) -> Result<Self, GzError> {
        config.validate()?;
        if transport.num_shards() != config.num_shards {
            return Err(GzError::InvalidConfig(format!(
                "transport has {} shards, config wants {}",
                transport.num_shards(),
                config.num_shards
            )));
        }
        let params = Arc::new(config.params());
        let router = ShardRouter::new(
            config.num_nodes,
            config.num_shards,
            config.router_capacity,
            params.node_sketch_bytes(),
        );
        Ok(ShardedGraphZeppelin {
            params,
            router,
            transport: Arc::new(parking_lot::Mutex::new(transport)),
            local_workers: Vec::new(),
            num_nodes: config.num_nodes,
            updates: 0,
            query_mode: config.query_mode,
            query_threads: config.query_threads(),
            cached_epoch: None,
            query_staleness: config.query_staleness,
            checkpoint_every: config.checkpoint_every,
            last_checkpoint_batches: 0,
            shut_down: false,
        })
    }

    /// Change the coordinator's query-thread count (answers are
    /// bit-identical at any setting; this is a performance knob).
    pub fn set_query_threads(&mut self, query_threads: usize) {
        assert!(query_threads >= 1, "query_threads must be ≥ 1");
        self.query_threads = query_threads;
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.transport.lock().num_shards()
    }

    /// The shard owning vertex `v`.
    pub fn shard_of(&self, v: u32) -> u32 {
        self.router.shard_of(v)
    }

    /// Route one stream update through the batching router: at most two
    /// shards are (eventually) contacted, and neither needs to know about
    /// the other.
    pub fn update(&mut self, u: u32, v: u32, is_delete: bool) -> Result<(), GzError> {
        assert!(u != v, "self-loop");
        assert!((u as u64) < self.num_nodes && (v as u64) < self.num_nodes, "vertex out of range");
        {
            let mut transport = self.transport.lock();
            self.router.route_update(u, v, is_delete, &mut |shard, batch| {
                transport.send_batch(shard, batch)
            })?;
        }
        self.updates += 1;
        if let Some(every) = self.checkpoint_every {
            if self.router.batches_emitted() - self.last_checkpoint_batches >= every {
                self.checkpoint_shards()?;
            }
        }
        Ok(())
    }

    /// Flush, then persist every shard's owned state to its checkpoint
    /// path, pruning the transport's replay log (DESIGN.md §14). Returns
    /// the per-shard sequence numbers the checkpoints cover. Runs
    /// automatically every `ShardConfig::checkpoint_every` routed batches.
    pub fn checkpoint_shards(&mut self) -> Result<Vec<u64>, GzError> {
        self.flush()?;
        let seqs = self.transport.lock().checkpoint_shards()?;
        self.last_checkpoint_batches = self.router.batches_emitted();
        Ok(seqs)
    }

    /// Flush, then persist every shard's owned state to `paths[i]` (one
    /// path per shard), regardless of any cadence-configured destination.
    /// `gz serve` cuts its versioned checkpoint rounds through this.
    pub fn checkpoint_shards_to(
        &mut self,
        paths: &[std::path::PathBuf],
    ) -> Result<Vec<u64>, GzError> {
        self.flush()?;
        let seqs = self.transport.lock().checkpoint_shards_to(paths)?;
        self.last_checkpoint_batches = self.router.batches_emitted();
        Ok(seqs)
    }

    /// Restore every shard's owned state from `paths[i]`. Must run before
    /// any updates are ingested: the router's batch counters restart at
    /// zero either way, so resuming into a half-ingested system would
    /// desynchronize checkpoint sequence numbers.
    pub fn resume_shards_from(
        &mut self,
        paths: &[std::path::PathBuf],
    ) -> Result<Vec<u64>, GzError> {
        self.transport.lock().resume_shards_from(paths)
    }

    /// Recovery counters (checkpoints, replays, reconnects), if the
    /// transport tracks them ([`transport::RecoveringTransport`] does;
    /// plain transports return `None`).
    pub fn recovery_stats(&self) -> Option<Arc<gz_gutters::IoStats>> {
        self.transport.lock().recovery_stats()
    }

    /// Ingest a whole stream of `(u, v, is_delete)` updates.
    pub fn ingest(
        &mut self,
        updates: impl IntoIterator<Item = (u32, u32, bool)>,
    ) -> Result<(), GzError> {
        for (u, v, d) in updates {
            self.update(u, v, d)?;
        }
        Ok(())
    }

    /// Drain the router and make every batch visible in the shards'
    /// sketches (the distributed `cleanup()`).
    pub fn flush(&mut self) -> Result<(), GzError> {
        let mut transport = self.transport.lock();
        self.router.flush(&mut |shard, batch| transport.send_batch(shard, batch))?;
        transport.flush()
    }

    /// Gather every node's serialized sketch at the coordinator, indexed by
    /// node id. Bit-identical to a single-node system's
    /// [`crate::GraphZeppelin::snapshot_serialized`] on the same stream.
    pub fn gather_serialized(&mut self) -> Result<Vec<Vec<u8>>, GzError> {
        self.flush()?;
        let gathered = self.transport.lock().gather()?;
        let mut all: Vec<Option<Vec<u8>>> = vec![None; self.num_nodes as usize];
        for entry in gathered {
            let slot = all.get_mut(entry.node as usize).ok_or_else(|| {
                GzError::Protocol(format!("gathered sketch for out-of-range node {}", entry.node))
            })?;
            if slot.replace(entry.bytes).is_some() {
                return Err(GzError::Protocol(format!(
                    "node {} gathered from two shards",
                    entry.node
                )));
            }
        }
        all.into_iter()
            .enumerate()
            .map(|(node, bytes)| {
                bytes.ok_or_else(|| {
                    GzError::Protocol(format!("no shard gathered a sketch for node {node}"))
                })
            })
            .collect()
    }

    /// Gather and deserialize all shards' sketches.
    fn gather(&mut self) -> Result<Vec<Option<CubeNodeSketch>>, GzError> {
        let params = Arc::clone(&self.params);
        Ok(self
            .gather_serialized()?
            .into_iter()
            .map(|bytes| Some(params.deserialize_node_sketch(&bytes)))
            .collect())
    }

    /// Query a spanning forest in the configured [`QueryMode`]; both modes
    /// return bit-identical labels and forests.
    pub fn spanning_forest(&mut self) -> Result<BoruvkaOutcome, GzError> {
        match self.query_mode {
            QueryMode::Snapshot => self.spanning_forest_snapshot(),
            QueryMode::Streaming => self.spanning_forest_streaming(),
        }
    }

    /// Snapshot-mode query: gather every node's full sketch stack at the
    /// coordinator, then run ordinary Boruvka over the materialization.
    pub fn spanning_forest_snapshot(&mut self) -> Result<BoruvkaOutcome, GzError> {
        let sketches = self.gather()?;
        boruvka_spanning_forest_parallel(
            sketches,
            self.num_nodes,
            self.params.rounds(),
            self.query_threads,
        )
    }

    /// Streaming-mode query: each Borůvka round gathers only that round's
    /// sketch slices from the shards (`GatherRound` frames, `rounds`-fold
    /// smaller than a full gather), so the coordinator never materializes
    /// the whole universe. Bit-identical to
    /// [`Self::spanning_forest_snapshot`].
    ///
    /// With `ShardConfig::query_staleness = Some(n)` the query answers from
    /// the last sealed epoch while it is at most `n` updates stale,
    /// resealing only when the budget is blown — the sharded form of
    /// [`crate::GraphZeppelin::spanning_forest_streaming`]'s knob.
    pub fn spanning_forest_streaming(&mut self) -> Result<BoruvkaOutcome, GzError> {
        let Some(max_lag) = self.query_staleness else {
            self.flush()?;
            let params = Arc::clone(&self.params);
            let mut source = GatherRoundSource {
                transport: &self.transport,
                params: &params,
                num_nodes: self.num_nodes,
                epochs: None,
                resident: 0,
            };
            return boruvka_rounds_parallel(
                &mut source,
                self.num_nodes,
                params.rounds(),
                self.query_threads,
            );
        };
        let fresh_enough = matches!(&self.cached_epoch, Some((_, sealed_at)) if self.updates - sealed_at <= max_lag);
        if !fresh_enough {
            let epoch = self.begin_epoch()?;
            self.cached_epoch = Some((epoch, self.updates));
        }
        let (epoch, _) = self.cached_epoch.as_ref().expect("epoch sealed above");
        epoch.spanning_forest()
    }

    /// Flush, then seal one epoch on every shard and hand back a query
    /// handle pinned to it (DESIGN.md §11). The handle answers
    /// [`ShardedEpoch::spanning_forest`] from the sealed state — bit-
    /// identical to a stop-the-world query at the seal — while this system
    /// keeps ingesting; dropping it releases every shard's captures.
    pub fn begin_epoch(&mut self) -> Result<ShardedEpoch, GzError> {
        self.flush()?;
        let epoch_ids = self.transport.lock().seal_epoch()?;
        Ok(ShardedEpoch {
            transport: Arc::clone(&self.transport),
            params: Arc::clone(&self.params),
            num_nodes: self.num_nodes,
            query_threads: self.query_threads,
            epoch_ids,
        })
    }

    /// Component labels.
    pub fn connected_components(&mut self) -> Result<Vec<u32>, GzError> {
        Ok(self.spanning_forest()?.labels)
    }

    /// Updates routed so far.
    pub fn updates_ingested(&self) -> u64 {
        self.updates
    }

    /// Node-keyed batches shipped to shards so far (the inter-shard message
    /// count — the quantity batching minimizes).
    pub fn batches_shipped(&self) -> u64 {
        self.router.batches_emitted()
    }

    /// Shut down: stop the shards and join any local worker threads.
    /// Surfaces worker errors, unlike the best-effort drop.
    pub fn shutdown(mut self) -> Result<(), GzError> {
        self.shutdown_inner()?;
        for handle in std::mem::take(&mut self.local_workers) {
            handle.join().expect("shard worker panicked")?;
        }
        Ok(())
    }

    fn shutdown_inner(&mut self) -> Result<(), GzError> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        // Release the cached epoch while the shards still serve — its Drop
        // sends ReleaseEpoch, which must precede Shutdown on the links.
        self.cached_epoch = None;
        self.transport.lock().shutdown()
    }
}

impl Drop for ShardedGraphZeppelin {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
        for handle in std::mem::take(&mut self.local_workers) {
            let _ = handle.join();
        }
    }
}

/// A query handle pinned to one sealed epoch across every shard
/// ([`ShardedGraphZeppelin::begin_epoch`]). The handle shares the
/// coordinator's transport mutex, so its gathers interleave with ingestion
/// batches at message granularity — e.g. a `std::thread::scope` can run
/// [`Self::spanning_forest`] on one thread while the owning system ingests
/// on another. Dropping the handle sends a best-effort `ReleaseEpoch` to
/// every shard so their copy-on-write captures are reclaimed.
pub struct ShardedEpoch {
    transport: Arc<parking_lot::Mutex<Box<dyn ShardTransport + Send>>>,
    params: Arc<SketchParams>,
    num_nodes: u64,
    query_threads: usize,
    epoch_ids: Vec<u64>,
}

impl ShardedEpoch {
    /// The per-shard epoch ids this handle is pinned to, indexed by shard.
    pub fn epoch_ids(&self) -> &[u64] {
        &self.epoch_ids
    }

    /// Change the handle's query-thread count (answers are bit-identical
    /// at any setting).
    pub fn set_query_threads(&mut self, query_threads: usize) {
        assert!(query_threads >= 1, "query_threads must be ≥ 1");
        self.query_threads = query_threads;
    }

    /// Query a spanning forest of the graph as it stood at the seal —
    /// bit-identical to a stop-the-world streaming query at that instant,
    /// no matter how much the shards have ingested since (pinned by the
    /// epoch equivalence suite).
    pub fn spanning_forest(&self) -> Result<BoruvkaOutcome, GzError> {
        let mut source = GatherRoundSource {
            transport: &self.transport,
            params: &self.params,
            num_nodes: self.num_nodes,
            epochs: Some(&self.epoch_ids),
            resident: 0,
        };
        boruvka_rounds_parallel(
            &mut source,
            self.num_nodes,
            self.params.rounds(),
            self.query_threads,
        )
    }
}

impl Drop for ShardedEpoch {
    fn drop(&mut self) {
        // Best-effort: a shard that is already gone (or a link that is
        // already shut down) must not turn reclamation into a panic.
        let _ = self.transport.lock().release_epoch(&self.epoch_ids);
    }
}

/// Round-slice source over the shard transport: Borůvka round `r` gathers
/// only round `r`'s column data from every shard, validates that each node
/// arrived exactly once, and folds the slices straight into the engine's
/// accumulators. Resident bytes per round are one round of the universe —
/// the gathered frames — instead of the full `V × sketch` materialization.
///
/// The transport is locked per gather, not for the query's lifetime, so an
/// epoch-pinned source (`epochs = Some`) shares the links with concurrent
/// ingestion.
struct GatherRoundSource<'a> {
    transport: &'a parking_lot::Mutex<Box<dyn ShardTransport + Send>>,
    params: &'a SketchParams,
    num_nodes: u64,
    epochs: Option<&'a [u64]>,
    resident: usize,
}

impl SketchSource for GatherRoundSource<'_> {
    type Sampler = CubeRoundSketch;

    fn num_rounds(&self) -> usize {
        self.params.rounds()
    }

    fn resident_bytes(&self) -> usize {
        self.resident
    }

    fn stream_round(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        sink: &mut dyn FnMut(u32, &Self::Sampler),
    ) -> Result<(), GzError> {
        let entries = self.transport.lock().gather_round(round as u32, self.epochs)?;
        self.resident = entries.iter().map(|e| e.bytes.len()).sum();
        let expect_bytes = self.params.round_serialized_bytes(round);
        let mut seen = vec![false; self.num_nodes as usize];
        for e in &entries {
            validate_round_entry(&mut seen, e, round, expect_bytes)?;
            if live(e.node) {
                sink(e.node, &decode_round_entry(self.params, round, e));
            }
        }
        require_all_gathered(&seen)
    }

    /// Parallel gather: `GatherRound` frames go to every shard up front and
    /// each reply is folded *as it arrives* — shard `i`'s slices
    /// deserialize and fold (fanned out across the pool's workers) while
    /// shards `j > i` are still serializing or transmitting theirs, instead
    /// of collecting the whole round before any folding starts.
    fn stream_round_into(
        &mut self,
        round: usize,
        live: &(dyn Fn(u32) -> bool + Sync),
        pool: &WorkerPool,
        sinks: &[parking_lot::Mutex<crate::boruvka::RoundSink<'_, Self::Sampler>>],
    ) -> Result<(), GzError> {
        let expect_bytes = self.params.round_serialized_bytes(round);
        let params = self.params;
        let mut seen = vec![false; self.num_nodes as usize];
        let mut resident = 0usize;
        self.transport.lock().gather_round_each(round as u32, self.epochs, &mut |entries| {
            for e in &entries {
                validate_round_entry(&mut seen, e, round, expect_bytes)?;
            }
            resident += entries.iter().map(|e| e.bytes.len()).sum::<usize>();
            // Fold this reply across the pool: contiguous entry chunks, one
            // per worker, into that worker's sink.
            pool.run(&|w| {
                let range = gz_gutters::worker_pool::partition(entries.len(), pool.threads(), w);
                if range.is_empty() {
                    return;
                }
                let mut sink = sinks[w].lock();
                for e in &entries[range] {
                    if live(e.node) {
                        sink.fold(e.node, &decode_round_entry(params, round, e));
                    }
                }
            });
            Ok(())
        })?;
        self.resident = resident;
        require_all_gathered(&seen)
    }
}

/// Shared validation for gathered round entries: each in-range node arrives
/// exactly once, with a valid representation tag — `0` followed by exactly
/// one round's dense bytes, or `1` followed by a well-formed sparse
/// neighbor-set (wire protocol v5).
fn validate_round_entry(
    seen: &mut [bool],
    e: &gz_stream::wire::SketchEntry,
    round: usize,
    expect_bytes: usize,
) -> Result<(), GzError> {
    let slot = seen.get_mut(e.node as usize).ok_or_else(|| {
        GzError::Protocol(format!("gathered round slice for out-of-range node {}", e.node))
    })?;
    if std::mem::replace(slot, true) {
        return Err(GzError::Protocol(format!("node {} gathered from two shards", e.node)));
    }
    match e.bytes.first() {
        Some(0) => {
            if e.bytes.len() != 1 + expect_bytes {
                return Err(GzError::Protocol(format!(
                    "round {round} dense slice for node {} is {} bytes, want {}",
                    e.node,
                    e.bytes.len() - 1,
                    expect_bytes
                )));
            }
        }
        Some(1) => {
            if SparseSet::decode_wire(&e.bytes[1..]).is_none() {
                return Err(GzError::Protocol(format!(
                    "round {round} sparse set for node {} is malformed",
                    e.node
                )));
            }
        }
        tag => {
            return Err(GzError::Protocol(format!(
                "round {round} entry for node {} has bad representation tag {tag:?}",
                e.node
            )));
        }
    }
    Ok(())
}

/// Decode a *validated* v5 round entry into its round slice: tag 0 carries
/// the dense serialization; tag 1 carries a sparse neighbor-set the
/// coordinator replays through the batch kernel — bit-identical to the
/// dense slice the shard would hold had the node been promoted.
fn decode_round_entry(
    params: &SketchParams,
    round: usize,
    e: &gz_stream::wire::SketchEntry,
) -> CubeRoundSketch {
    match e.bytes[0] {
        0 => params.deserialize_round(round, &e.bytes[1..]),
        1 => {
            let set = SparseSet::decode_wire(&e.bytes[1..]).expect("entry validated");
            set.synthesize_round(e.node, params, round)
        }
        tag => unreachable!("entry validated, got tag {tag}"),
    }
}

/// Every node of the universe must have been gathered by some shard.
fn require_all_gathered(seen: &[bool]) -> Result<(), GzError> {
    if let Some(node) = seen.iter().position(|s| !*s) {
        return Err(GzError::Protocol(format!("no shard gathered a round slice for node {node}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GzConfig;
    use crate::system::GraphZeppelin;

    fn demo_updates(n: u32, count: usize, seed: u64) -> Vec<(u32, u32, bool)> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut present = std::collections::HashSet::new();
        let mut out = Vec::new();
        while out.len() < count {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if present.remove(&key) {
                out.push((a, b, true));
            } else {
                present.insert(key);
                out.push((a, b, false));
            }
        }
        out
    }

    fn single_node_labels(n: u64, seed: u64, updates: &[(u32, u32, bool)]) -> Vec<u32> {
        let mut config = GzConfig::in_ram(n);
        config.seed = seed;
        let mut single = GraphZeppelin::new(config).unwrap();
        for &(u, v, d) in updates {
            single.update(u, v, d);
        }
        single.connected_components().unwrap().labels().to_vec()
    }

    #[test]
    fn sharded_matches_single_node_system() {
        let n = 64u32;
        let updates = demo_updates(n, 500, 1);
        let seed = 99;

        let mut sharded = ShardedGraphZeppelin::new(n as u64, 4, seed).unwrap();
        sharded.ingest(updates.iter().copied()).unwrap();
        assert_eq!(
            sharded.connected_components().unwrap(),
            single_node_labels(n as u64, seed, &updates)
        );
    }

    #[test]
    fn checkpoint_cadence_fires_midstream_and_a_fresh_system_resumes_the_state() {
        let dir = gz_testutil::TempDir::new("gz-cadence");
        let n = 32u64;
        let updates = demo_updates(32, 240, 5);
        let mut config = ShardConfig::in_ram(n, 2);
        config.checkpoint_dir = Some(dir.path().to_path_buf());
        config.checkpoint_every = Some(8);
        // Tiny gutters so batches (the cadence's unit) actually flow
        // mid-stream instead of pooling until the final flush.
        config.router_capacity = GutterCapacity::Updates(2);

        let mut sharded = ShardedGraphZeppelin::in_process(config.clone()).unwrap();
        let file0 = dir.path().join(shard_checkpoint_file_name(0, 2, config.seed));
        let mut fired_midstream = false;
        for &(u, v, d) in &updates {
            sharded.update(u, v, d).unwrap();
            fired_midstream |= file0.exists();
        }
        assert!(fired_midstream, "the cadence must checkpoint during ingest, not only at the end");
        // Checkpointing is transparent: answers match the single-node system.
        assert_eq!(
            sharded.connected_components().unwrap(),
            single_node_labels(n, config.seed, &updates)
        );
        let want = sharded.gather_serialized().unwrap();
        let seqs = sharded.checkpoint_shards().unwrap();
        assert_eq!(seqs.iter().sum::<u64>(), sharded.batches_shipped());
        sharded.shutdown().unwrap();

        // A fresh local-socket deployment over the same checkpoint dir
        // auto-resumes every shard (the thread-level `--resume` path) and
        // reports the exact pre-shutdown state.
        let mut resumed = ShardedGraphZeppelin::local_socket(config).unwrap();
        assert_eq!(resumed.gather_serialized().unwrap(), want);
        resumed.shutdown().unwrap();
    }

    #[test]
    fn clean_shutdown_cuts_a_final_checkpoint_without_a_cadence() {
        // No `checkpoint_every`, no explicit `checkpoint_shards()` call:
        // the only checkpoint is the one the workers write on the clean
        // `Shutdown` frame. Before that fix, everything since the last
        // cadence checkpoint (here: the entire stream) was silently
        // dropped on clean exit.
        let dir = gz_testutil::TempDir::new("gz-final-ckpt");
        let n = 32u64;
        let updates = demo_updates(32, 200, 11);
        let mut config = ShardConfig::in_ram(n, 2);
        config.checkpoint_dir = Some(dir.path().to_path_buf());

        let mut sharded = ShardedGraphZeppelin::local_socket(config.clone()).unwrap();
        sharded.ingest(updates.iter().copied()).unwrap();
        let want = sharded.gather_serialized().unwrap();
        let files: Vec<_> = (0..2)
            .map(|i| dir.path().join(shard_checkpoint_file_name(i, 2, config.seed)))
            .collect();
        assert!(files.iter().all(|f| !f.exists()), "no checkpoint may exist before shutdown");
        sharded.shutdown().unwrap();
        assert!(files.iter().all(|f| f.exists()), "clean shutdown must leave a checkpoint");

        let mut resumed = ShardedGraphZeppelin::local_socket(config).unwrap();
        assert_eq!(resumed.gather_serialized().unwrap(), want);
        resumed.shutdown().unwrap();
    }

    #[test]
    fn targeted_checkpoint_round_trips_through_a_fresh_system() {
        // The serve daemon's versioned-round path: checkpoint to explicit
        // paths, restore a brand-new system from them, and the restored
        // system both matches bit-for-bit and keeps answering correctly
        // for the rest of the stream.
        let dir = gz_testutil::TempDir::new("gz-targeted-ckpt");
        let n = 48u64;
        let updates = demo_updates(48, 400, 21);
        let (first, rest) = updates.split_at(250);
        let config = ShardConfig::in_ram(n, 3);

        let mut sharded = ShardedGraphZeppelin::in_process(config.clone()).unwrap();
        sharded.ingest(first.iter().copied()).unwrap();
        let paths: Vec<_> = (0..3).map(|i| dir.path().join(format!("round-1-{i}.gzs2"))).collect();
        let seqs = sharded.checkpoint_shards_to(&paths).unwrap();
        assert_eq!(seqs.iter().sum::<u64>(), sharded.batches_shipped());
        let want = sharded.gather_serialized().unwrap();

        let mut restored = ShardedGraphZeppelin::in_process(config.clone()).unwrap();
        let resumed_seqs = restored.resume_shards_from(&paths).unwrap();
        assert_eq!(resumed_seqs, seqs);
        assert_eq!(restored.gather_serialized().unwrap(), want);
        restored.ingest(rest.iter().copied()).unwrap();
        assert_eq!(
            restored.connected_components().unwrap(),
            single_node_labels(n, config.seed, &updates)
        );

        // Mismatched path count is refused before touching anything.
        assert!(sharded.checkpoint_shards_to(&paths[..2]).is_err());
        assert!(restored.resume_shards_from(&paths[..1]).is_err());
    }

    #[test]
    fn sharded_sketch_state_is_bit_identical_to_single_node() {
        let n = 48u64;
        let updates = demo_updates(n as u32, 400, 2);
        let seed = 0x5EED_1E55; // ShardConfig::in_ram default

        let mut sharded = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, 3)).unwrap();
        sharded.ingest(updates.iter().copied()).unwrap();
        let gathered = sharded.gather_serialized().unwrap();

        let mut single = GraphZeppelin::new(GzConfig::in_ram(n)).unwrap();
        assert_eq!(single.config().seed, seed, "defaults must stay aligned");
        for &(u, v, d) in &updates {
            single.update(u, v, d);
        }
        assert_eq!(gathered, single.snapshot_serialized(), "gathered state must be bit-identical");
    }

    #[test]
    fn local_socket_transport_matches_in_process() {
        let n = 40u64;
        let updates = demo_updates(n as u32, 300, 3);

        let mut in_proc = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, 3)).unwrap();
        in_proc.ingest(updates.iter().copied()).unwrap();
        let a = in_proc.gather_serialized().unwrap();

        let mut socket = ShardedGraphZeppelin::local_socket(ShardConfig::in_ram(n, 3)).unwrap();
        socket.ingest(updates.iter().copied()).unwrap();
        let b = socket.gather_serialized().unwrap();

        assert_eq!(a, b);
        socket.shutdown().unwrap();
    }

    #[test]
    fn shard_count_does_not_change_answers() {
        let n = 40u32;
        let updates = demo_updates(n, 300, 3);
        let mut labels = Vec::new();
        for shards in [1u32, 2, 7] {
            let mut sys = ShardedGraphZeppelin::new(n as u64, shards, 5).unwrap();
            sys.ingest(updates.iter().copied()).unwrap();
            labels.push(sys.connected_components().unwrap());
        }
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
    }

    #[test]
    fn batching_ships_fewer_messages_than_updates() {
        let n = 32u32;
        let updates = demo_updates(n, 2000, 7);
        let mut sys = ShardedGraphZeppelin::new(n as u64, 4, 5).unwrap();
        sys.ingest(updates.iter().copied()).unwrap();
        sys.flush().unwrap();
        let shipped = sys.batches_shipped();
        assert!(shipped > 0);
        assert!(
            shipped < updates.len() as u64,
            "batching must ship fewer messages ({shipped}) than updates ({})",
            updates.len()
        );
    }

    #[test]
    fn queries_are_repeatable_and_ingestion_continues() {
        let mut sys = ShardedGraphZeppelin::new(16, 2, 1).unwrap();
        sys.update(0, 1, false).unwrap();
        let a = sys.connected_components().unwrap();
        let b = sys.connected_components().unwrap();
        assert_eq!(a, b);
        sys.update(1, 2, false).unwrap();
        let c = sys.connected_components().unwrap();
        assert_eq!(c[0], c[2]);
    }

    #[test]
    fn each_update_touches_at_most_two_shards() {
        let sys = ShardedGraphZeppelin::new(100, 5, 1).unwrap();
        for (u, v) in [(0u32, 1u32), (5, 10), (99, 3)] {
            let touched: std::collections::HashSet<u32> =
                [sys.shard_of(u), sys.shard_of(v)].into_iter().collect();
            assert!(touched.len() <= 2);
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ShardedGraphZeppelin::new(1, 2, 0).is_err());
        assert!(ShardedGraphZeppelin::new(10, 0, 0).is_err());
        let mut bad = ShardConfig::in_ram(10, 2);
        bad.workers_per_shard = 0;
        assert!(ShardedGraphZeppelin::in_process(bad).is_err());
    }

    #[test]
    fn params_digest_separates_configs() {
        let base = ShardConfig::in_ram(64, 4);
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        let mut other_shards = base.clone();
        other_shards.num_shards = 5;
        assert_eq!(base.params_digest(), base.clone().params_digest());
        assert_ne!(base.params_digest(), other_seed.params_digest());
        assert_ne!(base.params_digest(), other_shards.params_digest());
    }

    #[test]
    fn streaming_query_bit_identical_to_snapshot_across_transports() {
        let n = 40u64;
        let updates = demo_updates(n as u32, 300, 11);
        type Maker = fn(ShardConfig) -> Result<ShardedGraphZeppelin, GzError>;
        let makers: [Maker; 2] =
            [ShardedGraphZeppelin::in_process, ShardedGraphZeppelin::local_socket];
        for make in makers {
            let mut sys = make(ShardConfig::in_ram(n, 3)).unwrap();
            sys.ingest(updates.iter().copied()).unwrap();
            let snap = sys.spanning_forest_snapshot().unwrap();
            let stream = sys.spanning_forest_streaming().unwrap();
            assert_eq!(snap.labels, stream.labels);
            assert_eq!(snap.forest, stream.forest);
            assert_eq!(snap.rounds_used, stream.rounds_used);
            // A round frame is `rounds`-fold smaller than the full gather.
            assert!(stream.peak_sketch_bytes < snap.peak_sketch_bytes);
            sys.shutdown().unwrap();
        }
    }

    #[test]
    fn streaming_query_mode_is_routable_from_config() {
        let n = 24u64;
        let updates = demo_updates(n as u32, 100, 13);
        let mut config = ShardConfig::in_ram(n, 2);
        config.query_mode = QueryMode::Streaming;
        let mut streaming = ShardedGraphZeppelin::in_process(config).unwrap();
        streaming.ingest(updates.iter().copied()).unwrap();
        let mut snapshot = ShardedGraphZeppelin::in_process(ShardConfig::in_ram(n, 2)).unwrap();
        snapshot.ingest(updates.iter().copied()).unwrap();
        assert_eq!(
            streaming.connected_components().unwrap(),
            snapshot.connected_components().unwrap()
        );
    }

    #[test]
    fn sharded_epoch_pins_the_sealed_answer_across_transports() {
        let n = 32u64;
        let updates = demo_updates(n as u32, 200, 17);
        let more = demo_updates(n as u32, 100, 18);
        type Maker = fn(ShardConfig) -> Result<ShardedGraphZeppelin, GzError>;
        let makers: [Maker; 2] =
            [ShardedGraphZeppelin::in_process, ShardedGraphZeppelin::local_socket];
        for make in makers {
            let mut sys = make(ShardConfig::in_ram(n, 3)).unwrap();
            sys.ingest(updates.iter().copied()).unwrap();
            let epoch = sys.begin_epoch().unwrap();
            // Stop-the-world reference taken right after the seal.
            let reference = sys.spanning_forest_streaming().unwrap();
            sys.ingest(more.iter().copied()).unwrap();
            sys.flush().unwrap();
            // The epoch still answers as of the seal, and repeatably so.
            for _ in 0..2 {
                let pinned = epoch.spanning_forest().unwrap();
                assert_eq!(pinned.labels, reference.labels);
                assert_eq!(pinned.forest, reference.forest);
                assert_eq!(pinned.rounds_used, reference.rounds_used);
            }
            drop(epoch); // releases every shard's captures over the links
                         // The system is still fully usable after the release.
            sys.connected_components().unwrap();
            sys.shutdown().unwrap();
        }
    }

    #[test]
    fn sharded_staleness_knob_reuses_then_reseals() {
        let n = 24u64;
        let mut config = ShardConfig::in_ram(n, 2);
        config.query_mode = QueryMode::Streaming;
        config.query_staleness = Some(10);
        let mut sys = ShardedGraphZeppelin::in_process(config).unwrap();
        sys.update(0, 1, false).unwrap();
        let first = sys.connected_components().unwrap();
        // Within budget: the cached epoch answers, blind to the new edge.
        sys.update(1, 2, false).unwrap();
        let stale = sys.connected_components().unwrap();
        assert_eq!(stale, first);
        // Blow the budget: the reseal sees everything routed so far.
        for i in 3..14u32 {
            sys.update(2, i, false).unwrap();
        }
        let fresh = sys.connected_components().unwrap();
        assert_eq!(fresh[0], fresh[2]);
        assert_eq!(fresh[0], fresh[13]);
    }

    #[test]
    fn hybrid_shards_match_dense_shards_bitwise() {
        let n = 48u64;
        let updates = demo_updates(n as u32, 400, 21);
        let dense_cfg = ShardConfig::in_ram(n, 3);
        let mut hybrid_cfg = ShardConfig::in_ram(n, 3);
        hybrid_cfg.sketch_threshold = 4;
        let mut dense = ShardedGraphZeppelin::in_process(dense_cfg).unwrap();
        let mut hybrid = ShardedGraphZeppelin::in_process(hybrid_cfg).unwrap();
        dense.ingest(updates.iter().copied()).unwrap();
        hybrid.ingest(updates.iter().copied()).unwrap();
        // Full gathers densify by replay: bit-identical serialized state.
        assert_eq!(dense.gather_serialized().unwrap(), hybrid.gather_serialized().unwrap());
        // Streaming gathers ship tagged frames (sparse sets for
        // sub-threshold nodes); answers must still be bit-identical.
        let a = dense.spanning_forest_streaming().unwrap();
        let b = hybrid.spanning_forest_streaming().unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.forest, b.forest);
        assert_eq!(a.rounds_used, b.rounds_used);
    }

    #[test]
    fn hybrid_sharded_epoch_pins_across_promotions() {
        let n = 32u64;
        let mut config = ShardConfig::in_ram(n, 2);
        config.sketch_threshold = 3;
        let mut sys = ShardedGraphZeppelin::in_process(config).unwrap();
        // Everything sparse at the seal.
        for i in 1..4u32 {
            sys.update(0, i, false).unwrap();
        }
        let epoch = sys.begin_epoch().unwrap();
        let reference = sys.spanning_forest_streaming().unwrap();
        // Post-seal churn pushes node 0 over τ — the pinned answer must
        // still serve the sealed sparse sets.
        for i in 4..12u32 {
            sys.update(0, i, false).unwrap();
        }
        sys.flush().unwrap();
        let pinned = epoch.spanning_forest().unwrap();
        assert_eq!(pinned.labels, reference.labels);
        assert_eq!(pinned.forest, reference.forest);
    }

    #[test]
    fn validate_round_entry_rejects_bad_frames() {
        use gz_stream::wire::SketchEntry;
        let check = |bytes: Vec<u8>| {
            let mut seen = vec![false; 4];
            validate_round_entry(&mut seen, &SketchEntry { node: 1, bytes }, 0, 8)
        };
        assert!(check(vec![]).is_err(), "empty entry");
        assert!(check(vec![7, 0, 0]).is_err(), "unknown tag");
        assert!(check(vec![0; 8]).is_err(), "dense payload one byte short");
        assert!(check(vec![0; 9]).is_ok(), "dense tag + 8 payload bytes");
        assert!(check(vec![1, 2, 0, 0, 0, 5, 0, 0, 0]).is_err(), "sparse count over-claims");
        assert!(
            check(vec![1, 1, 0, 0, 0, 5, 0, 0, 0]).is_ok(),
            "well-formed single-neighbor sparse set"
        );
        assert!(
            check(vec![1, 2, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0]).is_err(),
            "duplicate neighbors are malformed"
        );
    }

    #[test]
    fn more_shards_than_nodes_still_answers() {
        // Shards with empty residue classes simply gather nothing.
        let mut sys = ShardedGraphZeppelin::new(3, 7, 1).unwrap();
        sys.update(0, 1, false).unwrap();
        let labels = sys.connected_components().unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }
}
