//! The per-shard ingestion pipeline.
//!
//! A shard is no longer a bare store: like the single-node system it runs a
//! work queue drained by a [`WorkerPool`] into a pluggable [`SketchStore`]
//! (RAM or disk), so a shard machine gets the same batch-level parallelism
//! and storage flexibility as a stand-alone deployment. The store covers
//! only the shard's residue class — sketch memory is
//! `owned_nodes × node_sketch_bytes`, not `V × node_sketch_bytes`.

use crate::checkpoint::{load_shard_checkpoint, save_shard_checkpoint, ShardCheckpointHeader};
use crate::config::StoreBackend;
use crate::error::GzError;
use crate::ingest::WorkerPool;
use crate::node_sketch::SketchParams;
use crate::sharding::ShardConfig;
use crate::store::{disk::DiskStore, ram::RamStore, EpochOverlay, NodeSet, SketchStore};
use gz_gutters::{Batch, WorkQueue};
use gz_stream::wire::SketchEntry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shard: queue → Graph Workers → owned-nodes sketch store.
pub struct ShardPipeline {
    index: u32,
    num_shards: u32,
    seed: u64,
    columns: u32,
    params: Arc<SketchParams>,
    store: Arc<SketchStore>,
    queue: Arc<WorkQueue>,
    workers: Option<WorkerPool>,
    /// Batches accepted by [`Self::enqueue`] — the shard's sequence number.
    /// The link is ordered, so "batches received" is an exact cut: a
    /// checkpoint taken now covers precisely these batches, and a
    /// coordinator replaying after a crash resumes strictly after this
    /// count (DESIGN.md §14).
    batches_enqueued: AtomicU64,
    /// Where [`Self::save_checkpoint`] persists the owned state, if
    /// checkpointing is configured.
    checkpoint_path: Mutex<Option<PathBuf>>,
    /// Epochs sealed on this shard and not yet released, keyed by the
    /// store-assigned epoch id (DESIGN.md §11). Holding the overlay `Arc`
    /// here is what keeps the epoch's registry entry alive between the
    /// coordinator's `SealEpoch` and `ReleaseEpoch`.
    epochs: Mutex<HashMap<u64, Arc<EpochOverlay>>>,
}

impl ShardPipeline {
    /// Build shard `index` of `config.num_shards`.
    pub fn new(config: &ShardConfig, index: u32) -> Result<Self, GzError> {
        config.validate()?;
        if index >= config.num_shards {
            return Err(GzError::InvalidConfig(format!(
                "shard index {index} out of range for {} shards",
                config.num_shards
            )));
        }
        let params = Arc::new(config.params());
        let owned = NodeSet::strided(config.num_nodes, index, config.num_shards);
        let store = match &config.store {
            StoreBackend::Ram => Arc::new(SketchStore::Ram(RamStore::for_nodes_with_threshold(
                Arc::clone(&params),
                config.locking,
                owned,
                config.sketch_threshold,
            ))),
            StoreBackend::Disk { dir, block_bytes, cache_groups } => {
                let path = dir.join(format!(
                    "gz_shard{index}_sketches_{}_{}.bin",
                    std::process::id(),
                    config.seed
                ));
                Arc::new(SketchStore::Disk(DiskStore::for_nodes_with_options(
                    Arc::clone(&params),
                    owned,
                    path,
                    *block_bytes,
                    *cache_groups,
                    config.sketch_threshold,
                    config.io,
                )?))
            }
        };
        let queue = Arc::new(WorkQueue::for_workers(config.workers_per_shard));
        let workers =
            WorkerPool::spawn(config.workers_per_shard, 1, Arc::clone(&queue), Arc::clone(&store));
        let checkpoint_path = config
            .checkpoint_dir
            .as_ref()
            .map(|dir| dir.join(shard_checkpoint_file_name(index, config.num_shards, config.seed)));
        Ok(ShardPipeline {
            index,
            num_shards: config.num_shards,
            seed: config.seed,
            columns: config.num_columns,
            params,
            store,
            queue,
            workers: Some(workers),
            batches_enqueued: AtomicU64::new(0),
            checkpoint_path: Mutex::new(checkpoint_path),
            epochs: Mutex::new(HashMap::new()),
        })
    }

    /// This shard's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// True if this shard owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: u32) -> bool {
        v % self.num_shards == self.index
    }

    /// Shared sketch parameters.
    pub fn params(&self) -> &Arc<SketchParams> {
        &self.params
    }

    /// Enqueue a node-keyed batch for the Graph Workers; `node` must be
    /// owned by this shard.
    pub fn enqueue(&self, node: u32, records: Vec<u32>) -> Result<(), GzError> {
        if !self.owns(node) {
            return Err(GzError::Protocol(format!(
                "batch for node {node} routed to shard {}/{} (owner is {})",
                self.index,
                self.num_shards,
                node % self.num_shards
            )));
        }
        self.queue.push(Batch { node, others: records });
        self.batches_enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Batches accepted so far — the sequence number a checkpoint of the
    /// current state covers (after a flush).
    pub fn seq(&self) -> u64 {
        self.batches_enqueued.load(Ordering::Relaxed)
    }

    /// Where this shard persists checkpoints (if configured).
    pub fn checkpoint_path(&self) -> Option<PathBuf> {
        self.checkpoint_path.lock().clone()
    }

    /// Point this shard's checkpoints at an explicit file.
    pub fn set_checkpoint_path(&self, path: PathBuf) {
        *self.checkpoint_path.lock() = Some(path);
    }

    /// Flush, then atomically persist the owned sketch state (densified —
    /// hybrid sparse nodes are serialized through the same snapshot path
    /// the full-system checkpoint uses) to the configured checkpoint path.
    /// Returns the batch sequence number the checkpoint covers.
    pub fn save_checkpoint(&self) -> Result<u64, GzError> {
        let path = self.checkpoint_path().ok_or_else(|| {
            GzError::InvalidConfig(format!(
                "shard {} asked to checkpoint but no checkpoint path is configured",
                self.index
            ))
        })?;
        self.flush();
        // `seq` is read *after* the flush: enqueue happens on the serve
        // thread that also called us, so no new batches can slip in between
        // — the snapshot covers exactly `seq` batches.
        let seq = self.seq();
        let sketches = self.store.snapshot_owned();
        let header = ShardCheckpointHeader {
            num_nodes: self.params.num_nodes,
            seed: self.seed,
            rounds: self.params.rounds() as u32,
            columns: self.columns,
            shard_index: self.index,
            num_shards: self.num_shards,
            seq,
            owned_count: sketches.len() as u64,
        };
        save_shard_checkpoint(&path, &header, &self.params, &sketches)?;
        Ok(seq)
    }

    /// Replace this shard's sketch state with a checkpoint's (validated
    /// against this shard's parameters and topology) and adopt its sequence
    /// number. Future checkpoints overwrite the same file. Returns the
    /// sequence number the restored state covers — what the worker reports
    /// in `ResyncFrom`.
    pub fn resume_from(&self, path: &Path) -> Result<u64, GzError> {
        let expect = ShardCheckpointHeader {
            num_nodes: self.params.num_nodes,
            seed: self.seed,
            rounds: self.params.rounds() as u32,
            columns: self.columns,
            shard_index: self.index,
            num_shards: self.num_shards,
            seq: 0, // ignored by the match — the file tells us
            owned_count: self.store.node_set().len() as u64,
        };
        let (sketches, seq) = load_shard_checkpoint(path, &self.params, &expect)?;
        self.flush();
        self.store.load_all(sketches);
        self.batches_enqueued.store(seq, Ordering::Relaxed);
        self.set_checkpoint_path(path.to_path_buf());
        Ok(seq)
    }

    /// Block until every enqueued batch has been applied to the sketches.
    pub fn flush(&self) {
        self.queue.wait_idle();
    }

    /// Flush, then serialize every owned node's sketch — the payload of a
    /// `Sketches` wire reply. Serialization is deterministic, which is what
    /// makes the sharded system's gathered state *bit-identical* to a
    /// single-node system fed the same stream.
    pub fn gather_serialized(&self) -> Vec<SketchEntry> {
        self.flush();
        self.store
            .snapshot_owned()
            .into_iter()
            .map(|(node, sketch)| {
                let mut bytes = Vec::with_capacity(self.params.node_sketch_serialized_bytes());
                self.params.serialize_node_sketch(&sketch, &mut bytes);
                SketchEntry { node, bytes }
            })
            .collect()
    }

    /// Flush, then serialize only round `round`'s slice of every owned
    /// node's sketch — the payload of a `RoundSketches` wire reply. A
    /// disk-backed shard serves this from one contiguous column read per
    /// node group instead of faulting whole groups through its cache.
    ///
    /// Entries are tagged (wire protocol v5): promoted nodes ship `0` plus
    /// the dense round slice; sub-threshold nodes ship `1` plus their exact
    /// neighbor-set — typically far smaller than the slice — and the
    /// coordinator replays it, so a sparse shard never densifies to answer.
    pub fn gather_round_serialized(&self, round: usize) -> Result<Vec<SketchEntry>, GzError> {
        if round >= self.params.rounds() {
            return Err(GzError::Protocol(format!(
                "GatherRound for round {round}, but sketches have {} rounds",
                self.params.rounds()
            )));
        }
        self.flush();
        let mut entries = Vec::with_capacity(self.store.node_set().len());
        for (node, set) in self.store.sparse_sets(&|_| true) {
            let mut bytes = vec![1u8];
            set.encode_wire(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        }
        self.store.stream_round_dense(round, &|_| true, &mut |node, sketch| {
            let mut bytes = Vec::with_capacity(1 + self.params.round_serialized_bytes(round));
            bytes.push(0u8);
            sketch.serialize_into(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        })?;
        Ok(entries)
    }

    /// Flush, then seal the store's open generation (DESIGN.md §11): every
    /// batch enqueued before this call is in the sealed state, and batches
    /// applied afterwards copy-on-write around it. Returns the epoch id the
    /// coordinator quotes in epoch-pinned `GatherRound` requests.
    pub fn seal_epoch(&self) -> Result<u64, GzError> {
        self.flush();
        let (id, overlay) = self.store.begin_epoch()?;
        self.epochs.lock().insert(id, overlay);
        Ok(id)
    }

    /// Serialize round `round` as it stood when `epoch` was sealed — the
    /// payload of an epoch-pinned `RoundSketches` reply. Unlike
    /// [`Self::gather_round_serialized`] this does **not** flush: the whole
    /// point is to answer from the sealed snapshot while ingestion keeps
    /// running.
    pub fn gather_round_serialized_at(
        &self,
        round: usize,
        epoch: u64,
    ) -> Result<Vec<SketchEntry>, GzError> {
        if round >= self.params.rounds() {
            return Err(GzError::Protocol(format!(
                "GatherRound for round {round}, but sketches have {} rounds",
                self.params.rounds()
            )));
        }
        let overlay =
            self.epochs.lock().get(&epoch).cloned().ok_or_else(|| {
                GzError::Protocol(format!("GatherRound for unknown epoch {epoch}"))
            })?;
        let mut entries = Vec::with_capacity(self.store.node_set().len());
        for (node, set) in self.store.sparse_sets_at(&|_| true, &overlay) {
            let mut bytes = vec![1u8];
            set.encode_wire(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        }
        self.store.stream_round_dense_at(round, &|_| true, &overlay, &mut |node, sketch| {
            let mut bytes = Vec::with_capacity(1 + self.params.round_serialized_bytes(round));
            bytes.push(0u8);
            sketch.serialize_into(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        })?;
        Ok(entries)
    }

    /// Drop this shard's handle on `epoch`, letting the store reclaim its
    /// copy-on-write captures. Releasing an unknown id is not an error —
    /// release is best-effort on the coordinator side, and a retried
    /// release must stay idempotent.
    pub fn release_epoch(&self, epoch: u64) {
        self.epochs.lock().remove(&epoch);
    }

    /// Sketch payload bytes held by this shard (owned nodes only).
    pub fn sketch_bytes(&self) -> usize {
        self.store.sketch_bytes()
    }

    /// Representation census of this shard's store (sparse vs promoted
    /// nodes — the hybrid-representation accounting).
    pub fn rep_stats(&self) -> crate::store::RepStats {
        self.store.rep_stats()
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        if let Some(workers) = self.workers.take() {
            workers.join();
        }
    }
}

impl Drop for ShardPipeline {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Canonical checkpoint file name for shard `index` of `num_shards` —
/// deliberately free of the process id, so a *respawned* worker (a new
/// process) resolves the same file its predecessor wrote.
pub fn shard_checkpoint_file_name(index: u32, num_shards: u32, seed: u64) -> String {
    format!("gz_shard{index}of{num_shards}_{seed:x}.ckpt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::encode_other;

    #[test]
    fn pipeline_applies_batches_to_owned_nodes() {
        let config = ShardConfig::in_ram(16, 4);
        let shard = ShardPipeline::new(&config, 1).unwrap();
        shard.enqueue(5, vec![encode_other(2, false)]).unwrap();
        shard.enqueue(9, vec![encode_other(5, false)]).unwrap();
        let entries = shard.gather_serialized();
        // Shard 1 of 4 over 16 nodes owns {1, 5, 9, 13}.
        assert_eq!(entries.iter().map(|e| e.node).collect::<Vec<u32>>(), vec![1, 5, 9, 13]);
        // Touched nodes' sketches are nonzero; untouched remain all-zero.
        let by_node: std::collections::HashMap<u32, &SketchEntry> =
            entries.iter().map(|e| (e.node, e)).collect();
        assert!(by_node[&5].bytes.iter().any(|&b| b != 0));
        assert!(by_node[&13].bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn rejects_misrouted_batches_and_bad_indices() {
        let config = ShardConfig::in_ram(16, 4);
        let shard = ShardPipeline::new(&config, 1).unwrap();
        assert!(matches!(
            shard.enqueue(2, vec![encode_other(3, false)]),
            Err(GzError::Protocol(_))
        ));
        assert!(ShardPipeline::new(&config, 4).is_err());
    }

    #[test]
    fn footprint_is_owned_nodes_only() {
        // The satellite fix: a shard must NOT allocate sketch stacks for the
        // full vertex range. Four shards over 64 nodes must together use
        // exactly one system's worth of sketch memory (16 nodes each).
        let config = ShardConfig::in_ram(64, 4);
        let params = config.params();
        let per_node = params.node_sketch_bytes();
        let shards: Vec<ShardPipeline> =
            (0..4).map(|i| ShardPipeline::new(&config, i).unwrap()).collect();
        for shard in &shards {
            assert_eq!(shard.sketch_bytes(), per_node * 16);
        }
        let total: usize = shards.iter().map(|s| s.sketch_bytes()).sum();
        assert_eq!(total, per_node * 64, "shards together hold one universe");
    }

    #[test]
    fn checkpoint_resume_round_trips_state_and_seq() {
        let dir = gz_testutil::TempDir::new("gz-shard-ckpt");
        let mut config = ShardConfig::in_ram(16, 2);
        config.checkpoint_dir = Some(dir.path().to_path_buf());
        let shard = ShardPipeline::new(&config, 0).unwrap();
        shard.enqueue(4, vec![encode_other(1, false)]).unwrap();
        shard.enqueue(6, vec![encode_other(3, false)]).unwrap();
        assert_eq!(shard.seq(), 2);
        let before = shard.gather_serialized();
        assert_eq!(shard.save_checkpoint().unwrap(), 2);
        let path = shard.checkpoint_path().unwrap();
        drop(shard);

        // A fresh pipeline (as a respawned worker would build) resumes the
        // state bit-identically and adopts the sequence number.
        let respawn = ShardPipeline::new(&config, 0).unwrap();
        assert_eq!(respawn.seq(), 0);
        assert_eq!(respawn.resume_from(&path).unwrap(), 2);
        assert_eq!(respawn.seq(), 2);
        assert_eq!(respawn.gather_serialized(), before);

        // Streaming continues from the restored state.
        respawn.enqueue(4, vec![encode_other(1, true)]).unwrap();
        assert_eq!(respawn.seq(), 3);
    }

    #[test]
    fn hybrid_checkpoint_resume_is_bit_identical_to_uninterrupted() {
        // A hybrid shard (τ > 0) checkpoints densified state; resuming and
        // continuing the stream must gather bit-identically to a shard that
        // ingested the whole stream without interruption.
        let dir = gz_testutil::TempDir::new("gz-shard-ckpt-hybrid");
        let mut config = ShardConfig::in_ram(16, 2);
        config.sketch_threshold = 2;
        config.checkpoint_dir = Some(dir.path().to_path_buf());

        let first = [(4u32, 1u32), (6, 3), (4, 3)];
        let second = [(8u32, 5u32), (4, 7), (10, 1)];

        let uninterrupted = ShardPipeline::new(&config, 0).unwrap();
        for &(n, o) in first.iter().chain(&second) {
            uninterrupted.enqueue(n, vec![encode_other(o, false)]).unwrap();
        }
        let want = uninterrupted.gather_serialized();

        let shard = ShardPipeline::new(&config, 0).unwrap();
        for &(n, o) in &first {
            shard.enqueue(n, vec![encode_other(o, false)]).unwrap();
        }
        shard.save_checkpoint().unwrap();
        let path = shard.checkpoint_path().unwrap();
        drop(shard);

        let respawn = ShardPipeline::new(&config, 0).unwrap();
        respawn.resume_from(&path).unwrap();
        for &(n, o) in &second {
            respawn.enqueue(n, vec![encode_other(o, false)]).unwrap();
        }
        assert_eq!(respawn.gather_serialized(), want);
    }

    #[test]
    fn checkpoint_without_a_path_is_refused() {
        let config = ShardConfig::in_ram(16, 2);
        let shard = ShardPipeline::new(&config, 0).unwrap();
        assert!(matches!(shard.save_checkpoint(), Err(GzError::InvalidConfig(_))));
    }

    #[test]
    fn disk_backed_shard_pipeline_works() {
        let dir = gz_testutil::TempDir::new("gz-shard-disk");
        let mut config = ShardConfig::in_ram(16, 2);
        config.store = StoreBackend::Disk {
            dir: dir.path().to_path_buf(),
            block_bytes: 4096,
            cache_groups: 2,
        };
        let shard = ShardPipeline::new(&config, 0).unwrap();
        shard.enqueue(4, vec![encode_other(1, false)]).unwrap();
        let entries = shard.gather_serialized();
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().find(|e| e.node == 4).unwrap().bytes.iter().any(|&b| b != 0));
    }
}
