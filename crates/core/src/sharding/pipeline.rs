//! The per-shard ingestion pipeline.
//!
//! A shard is no longer a bare store: like the single-node system it runs a
//! work queue drained by a [`WorkerPool`] into a pluggable [`SketchStore`]
//! (RAM or disk), so a shard machine gets the same batch-level parallelism
//! and storage flexibility as a stand-alone deployment. The store covers
//! only the shard's residue class — sketch memory is
//! `owned_nodes × node_sketch_bytes`, not `V × node_sketch_bytes`.

use crate::config::StoreBackend;
use crate::error::GzError;
use crate::ingest::WorkerPool;
use crate::node_sketch::SketchParams;
use crate::sharding::ShardConfig;
use crate::store::{disk::DiskStore, ram::RamStore, EpochOverlay, NodeSet, SketchStore};
use gz_gutters::{Batch, WorkQueue};
use gz_stream::wire::SketchEntry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One shard: queue → Graph Workers → owned-nodes sketch store.
pub struct ShardPipeline {
    index: u32,
    num_shards: u32,
    params: Arc<SketchParams>,
    store: Arc<SketchStore>,
    queue: Arc<WorkQueue>,
    workers: Option<WorkerPool>,
    /// Epochs sealed on this shard and not yet released, keyed by the
    /// store-assigned epoch id (DESIGN.md §11). Holding the overlay `Arc`
    /// here is what keeps the epoch's registry entry alive between the
    /// coordinator's `SealEpoch` and `ReleaseEpoch`.
    epochs: Mutex<HashMap<u64, Arc<EpochOverlay>>>,
}

impl ShardPipeline {
    /// Build shard `index` of `config.num_shards`.
    pub fn new(config: &ShardConfig, index: u32) -> Result<Self, GzError> {
        config.validate()?;
        if index >= config.num_shards {
            return Err(GzError::InvalidConfig(format!(
                "shard index {index} out of range for {} shards",
                config.num_shards
            )));
        }
        let params = Arc::new(config.params());
        let owned = NodeSet::strided(config.num_nodes, index, config.num_shards);
        let store = match &config.store {
            StoreBackend::Ram => Arc::new(SketchStore::Ram(RamStore::for_nodes_with_threshold(
                Arc::clone(&params),
                config.locking,
                owned,
                config.sketch_threshold,
            ))),
            StoreBackend::Disk { dir, block_bytes, cache_groups } => {
                let path = dir.join(format!(
                    "gz_shard{index}_sketches_{}_{}.bin",
                    std::process::id(),
                    config.seed
                ));
                Arc::new(SketchStore::Disk(DiskStore::for_nodes_with_options(
                    Arc::clone(&params),
                    owned,
                    path,
                    *block_bytes,
                    *cache_groups,
                    config.sketch_threshold,
                    config.io,
                )?))
            }
        };
        let queue = Arc::new(WorkQueue::for_workers(config.workers_per_shard));
        let workers =
            WorkerPool::spawn(config.workers_per_shard, 1, Arc::clone(&queue), Arc::clone(&store));
        Ok(ShardPipeline {
            index,
            num_shards: config.num_shards,
            params,
            store,
            queue,
            workers: Some(workers),
            epochs: Mutex::new(HashMap::new()),
        })
    }

    /// This shard's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// True if this shard owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: u32) -> bool {
        v % self.num_shards == self.index
    }

    /// Shared sketch parameters.
    pub fn params(&self) -> &Arc<SketchParams> {
        &self.params
    }

    /// Enqueue a node-keyed batch for the Graph Workers; `node` must be
    /// owned by this shard.
    pub fn enqueue(&self, node: u32, records: Vec<u32>) -> Result<(), GzError> {
        if !self.owns(node) {
            return Err(GzError::Protocol(format!(
                "batch for node {node} routed to shard {}/{} (owner is {})",
                self.index,
                self.num_shards,
                node % self.num_shards
            )));
        }
        self.queue.push(Batch { node, others: records });
        Ok(())
    }

    /// Block until every enqueued batch has been applied to the sketches.
    pub fn flush(&self) {
        self.queue.wait_idle();
    }

    /// Flush, then serialize every owned node's sketch — the payload of a
    /// `Sketches` wire reply. Serialization is deterministic, which is what
    /// makes the sharded system's gathered state *bit-identical* to a
    /// single-node system fed the same stream.
    pub fn gather_serialized(&self) -> Vec<SketchEntry> {
        self.flush();
        self.store
            .snapshot_owned()
            .into_iter()
            .map(|(node, sketch)| {
                let mut bytes = Vec::with_capacity(self.params.node_sketch_serialized_bytes());
                self.params.serialize_node_sketch(&sketch, &mut bytes);
                SketchEntry { node, bytes }
            })
            .collect()
    }

    /// Flush, then serialize only round `round`'s slice of every owned
    /// node's sketch — the payload of a `RoundSketches` wire reply. A
    /// disk-backed shard serves this from one contiguous column read per
    /// node group instead of faulting whole groups through its cache.
    ///
    /// Entries are tagged (wire protocol v5): promoted nodes ship `0` plus
    /// the dense round slice; sub-threshold nodes ship `1` plus their exact
    /// neighbor-set — typically far smaller than the slice — and the
    /// coordinator replays it, so a sparse shard never densifies to answer.
    pub fn gather_round_serialized(&self, round: usize) -> Result<Vec<SketchEntry>, GzError> {
        if round >= self.params.rounds() {
            return Err(GzError::Protocol(format!(
                "GatherRound for round {round}, but sketches have {} rounds",
                self.params.rounds()
            )));
        }
        self.flush();
        let mut entries = Vec::with_capacity(self.store.node_set().len());
        for (node, set) in self.store.sparse_sets(&|_| true) {
            let mut bytes = vec![1u8];
            set.encode_wire(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        }
        self.store.stream_round_dense(round, &|_| true, &mut |node, sketch| {
            let mut bytes = Vec::with_capacity(1 + self.params.round_serialized_bytes(round));
            bytes.push(0u8);
            sketch.serialize_into(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        })?;
        Ok(entries)
    }

    /// Flush, then seal the store's open generation (DESIGN.md §11): every
    /// batch enqueued before this call is in the sealed state, and batches
    /// applied afterwards copy-on-write around it. Returns the epoch id the
    /// coordinator quotes in epoch-pinned `GatherRound` requests.
    pub fn seal_epoch(&self) -> Result<u64, GzError> {
        self.flush();
        let (id, overlay) = self.store.begin_epoch()?;
        self.epochs.lock().insert(id, overlay);
        Ok(id)
    }

    /// Serialize round `round` as it stood when `epoch` was sealed — the
    /// payload of an epoch-pinned `RoundSketches` reply. Unlike
    /// [`Self::gather_round_serialized`] this does **not** flush: the whole
    /// point is to answer from the sealed snapshot while ingestion keeps
    /// running.
    pub fn gather_round_serialized_at(
        &self,
        round: usize,
        epoch: u64,
    ) -> Result<Vec<SketchEntry>, GzError> {
        if round >= self.params.rounds() {
            return Err(GzError::Protocol(format!(
                "GatherRound for round {round}, but sketches have {} rounds",
                self.params.rounds()
            )));
        }
        let overlay =
            self.epochs.lock().get(&epoch).cloned().ok_or_else(|| {
                GzError::Protocol(format!("GatherRound for unknown epoch {epoch}"))
            })?;
        let mut entries = Vec::with_capacity(self.store.node_set().len());
        for (node, set) in self.store.sparse_sets_at(&|_| true, &overlay) {
            let mut bytes = vec![1u8];
            set.encode_wire(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        }
        self.store.stream_round_dense_at(round, &|_| true, &overlay, &mut |node, sketch| {
            let mut bytes = Vec::with_capacity(1 + self.params.round_serialized_bytes(round));
            bytes.push(0u8);
            sketch.serialize_into(&mut bytes);
            entries.push(SketchEntry { node, bytes });
        })?;
        Ok(entries)
    }

    /// Drop this shard's handle on `epoch`, letting the store reclaim its
    /// copy-on-write captures. Releasing an unknown id is not an error —
    /// release is best-effort on the coordinator side, and a retried
    /// release must stay idempotent.
    pub fn release_epoch(&self, epoch: u64) {
        self.epochs.lock().remove(&epoch);
    }

    /// Sketch payload bytes held by this shard (owned nodes only).
    pub fn sketch_bytes(&self) -> usize {
        self.store.sketch_bytes()
    }

    /// Representation census of this shard's store (sparse vs promoted
    /// nodes — the hybrid-representation accounting).
    pub fn rep_stats(&self) -> crate::store::RepStats {
        self.store.rep_stats()
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        if let Some(workers) = self.workers.take() {
            workers.join();
        }
    }
}

impl Drop for ShardPipeline {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::encode_other;

    #[test]
    fn pipeline_applies_batches_to_owned_nodes() {
        let config = ShardConfig::in_ram(16, 4);
        let shard = ShardPipeline::new(&config, 1).unwrap();
        shard.enqueue(5, vec![encode_other(2, false)]).unwrap();
        shard.enqueue(9, vec![encode_other(5, false)]).unwrap();
        let entries = shard.gather_serialized();
        // Shard 1 of 4 over 16 nodes owns {1, 5, 9, 13}.
        assert_eq!(entries.iter().map(|e| e.node).collect::<Vec<u32>>(), vec![1, 5, 9, 13]);
        // Touched nodes' sketches are nonzero; untouched remain all-zero.
        let by_node: std::collections::HashMap<u32, &SketchEntry> =
            entries.iter().map(|e| (e.node, e)).collect();
        assert!(by_node[&5].bytes.iter().any(|&b| b != 0));
        assert!(by_node[&13].bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn rejects_misrouted_batches_and_bad_indices() {
        let config = ShardConfig::in_ram(16, 4);
        let shard = ShardPipeline::new(&config, 1).unwrap();
        assert!(matches!(
            shard.enqueue(2, vec![encode_other(3, false)]),
            Err(GzError::Protocol(_))
        ));
        assert!(ShardPipeline::new(&config, 4).is_err());
    }

    #[test]
    fn footprint_is_owned_nodes_only() {
        // The satellite fix: a shard must NOT allocate sketch stacks for the
        // full vertex range. Four shards over 64 nodes must together use
        // exactly one system's worth of sketch memory (16 nodes each).
        let config = ShardConfig::in_ram(64, 4);
        let params = config.params();
        let per_node = params.node_sketch_bytes();
        let shards: Vec<ShardPipeline> =
            (0..4).map(|i| ShardPipeline::new(&config, i).unwrap()).collect();
        for shard in &shards {
            assert_eq!(shard.sketch_bytes(), per_node * 16);
        }
        let total: usize = shards.iter().map(|s| s.sketch_bytes()).sum();
        assert_eq!(total, per_node * 64, "shards together hold one universe");
    }

    #[test]
    fn disk_backed_shard_pipeline_works() {
        let dir = gz_testutil::TempDir::new("gz-shard-disk");
        let mut config = ShardConfig::in_ram(16, 2);
        config.store = StoreBackend::Disk {
            dir: dir.path().to_path_buf(),
            block_bytes: 4096,
            cache_groups: 2,
        };
        let shard = ShardPipeline::new(&config, 0).unwrap();
        shard.enqueue(4, vec![encode_other(1, false)]).unwrap();
        let entries = shard.gather_serialized();
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().find(|e| e.node == 4).unwrap().bytes.iter().any(|&b| b != 0));
    }
}
