//! The shard router: inter-shard batching at the coordinator.
//!
//! The old sharded path forwarded every stream update to its destination
//! shard individually — exactly the per-update routing that *Exploring the
//! Landscape of Distributed Graph Sketching* shows erases the distributed
//! win (a message per update costs more than the sketch work it carries).
//! The router instead reuses the gutter machinery from `gz_gutters`: one
//! [`BufferingSystem`] per destination shard accumulates records per graph
//! node and emits node-keyed [`Batch`]es, which the transport ships as
//! single `Batch{node, records}` frames.
//!
//! Each shard's lane indexes its gutters by *local* node index
//! (`node / num_shards`, dense within the shard's residue class) so the
//! router's memory is one gutter per graph node **total**, not per shard —
//! the same owned-nodes-only discipline the shard stores follow.

use crate::config::GutterCapacity;
use crate::error::GzError;
use crate::store::NodeSet;
use gz_gutters::{Batch, BufferingSystem, LeafGutters, WorkQueue};
use std::collections::VecDeque;
use std::sync::Arc;

/// The coordinator's per-shard recovery buffer (DESIGN.md §14): every batch
/// shipped to a shard since its last durable checkpoint, indexed by the
/// shard's batch sequence number. Because XOR updates commute and the link
/// is ordered, replaying `log.iter_from(seq)` into a worker restored at
/// `seq` reproduces the dead worker's state exactly; entries at or before
/// `seq` must never be replayed (the restored state already absorbed them —
/// XOR-ing them again would cancel them out).
#[derive(Default)]
pub struct ReplayLog {
    /// Batches `first_seq..first_seq + entries.len()`, in ship order.
    entries: VecDeque<Batch>,
    /// Sequence number of the first retained entry (= batches already
    /// covered by the shard's last acknowledged checkpoint).
    first_seq: u64,
}

impl ReplayLog {
    /// An empty log starting at sequence 0 (a fresh worker).
    pub fn new() -> Self {
        ReplayLog::default()
    }

    /// Record a shipped batch; returns its sequence number (the count of
    /// batches shipped *after* this one is appended).
    pub fn append(&mut self, batch: Batch) -> u64 {
        self.entries.push_back(batch);
        self.first_seq + self.entries.len() as u64
    }

    /// Sequence number the next appended batch will complete.
    pub fn next_seq(&self) -> u64 {
        self.first_seq + self.entries.len() as u64
    }

    /// Drop every entry covered by a checkpoint at `seq` (from a
    /// `CheckpointAck`). A stale ack — below the current floor — is a
    /// no-op; an ack beyond what was shipped is a protocol violation the
    /// caller detects via [`Self::covers`].
    pub fn prune_through(&mut self, seq: u64) {
        while self.first_seq < seq {
            if self.entries.pop_front().is_none() {
                break;
            }
            self.first_seq += 1;
        }
    }

    /// Whether a worker restored at `seq` can be caught up from this log:
    /// the log must retain every batch after `seq`, and `seq` must not
    /// exceed what was ever shipped.
    pub fn covers(&self, seq: u64) -> bool {
        seq >= self.first_seq && seq <= self.next_seq()
    }

    /// The batches a worker restored at `seq` is missing, in ship order.
    /// Call only when [`Self::covers`] holds.
    pub fn iter_from(&self, seq: u64) -> impl Iterator<Item = &Batch> {
        debug_assert!(self.covers(seq));
        self.entries.iter().skip((seq - self.first_seq) as usize)
    }

    /// Retained entries (bounded by the checkpoint cadence).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-destination-shard buffering lane: leaf gutters (local node indexing)
/// plus the staging queue they emit into. The queue is drained inline after
/// every insert, so it stays near-empty; it exists because the gutter
/// machinery speaks `WorkQueue`, and reusing it keeps the batching code
/// identical to the single-node ingest path.
struct Lane {
    gutters: LeafGutters,
    queue: Arc<WorkQueue>,
    owned: NodeSet,
}

/// Routes stream updates to destination shards in node-keyed batches.
pub struct ShardRouter {
    lanes: Vec<Lane>,
    num_shards: u32,
    batches_emitted: u64,
}

impl ShardRouter {
    /// A router for `num_shards` shards over a `num_nodes` universe, with
    /// per-node gutters holding `capacity` records (resolved against
    /// `node_sketch_bytes`, the paper's gutter-sizing rule).
    pub fn new(
        num_nodes: u64,
        num_shards: u32,
        capacity: GutterCapacity,
        node_sketch_bytes: usize,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let cap = capacity.resolve(node_sketch_bytes);
        let lanes = (0..num_shards)
            .map(|s| {
                let owned = NodeSet::strided(num_nodes, s, num_shards);
                // Small queue: inserts emit at most one batch before the
                // inline drain, and flushes drain per node.
                let queue = Arc::new(WorkQueue::with_capacity(8));
                let gutters = LeafGutters::new(owned.len(), cap, Arc::clone(&queue));
                Lane { gutters, queue, owned }
            })
            .collect();
        ShardRouter { lanes, num_shards, batches_emitted: 0 }
    }

    /// The shard owning vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: u32) -> u32 {
        v % self.num_shards
    }

    /// Number of shards routed to.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Buffer one encoded record bound for `dst`; full gutters emit through
    /// `send(shard, batch)`.
    pub fn insert(
        &mut self,
        dst: u32,
        record: u32,
        send: &mut impl FnMut(u32, Batch) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        let shard = self.shard_of(dst);
        let lane = &mut self.lanes[shard as usize];
        lane.gutters.insert(lane.owned.slot(dst) as u32, record);
        self.drain(shard, send)
    }

    /// Route one stream update `(u, v, is_delete)`: both endpoint records
    /// are buffered toward their owners (at most two shards involved).
    pub fn route_update(
        &mut self,
        u: u32,
        v: u32,
        is_delete: bool,
        send: &mut impl FnMut(u32, Batch) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        self.insert(u, crate::node_sketch::encode_other(v, is_delete), send)?;
        self.insert(v, crate::node_sketch::encode_other(u, is_delete), send)
    }

    /// Emit every buffered record (the start of query processing). Gutters
    /// are flushed node-by-node with interleaved drains, so the staging
    /// queues never grow past one batch.
    pub fn flush(
        &mut self,
        send: &mut impl FnMut(u32, Batch) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        for shard in 0..self.num_shards {
            for local in 0..self.lanes[shard as usize].gutters.num_nodes() as u32 {
                self.lanes[shard as usize].gutters.flush_node(local);
                self.drain(shard, send)?;
            }
        }
        Ok(())
    }

    /// Records buffered and not yet emitted.
    pub fn buffered_len(&self) -> usize {
        self.lanes.iter().map(|l| l.gutters.buffered_len()).sum()
    }

    /// Batches emitted to transports so far.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted
    }

    /// Forward everything a lane's gutters emitted, translating the lane's
    /// local node indices back to graph node ids.
    fn drain(
        &mut self,
        shard: u32,
        send: &mut impl FnMut(u32, Batch) -> Result<(), GzError>,
    ) -> Result<(), GzError> {
        let lane = &mut self.lanes[shard as usize];
        let mut result = Ok(());
        let mut emitted = 0u64;
        lane.queue.drain_with(|batch| {
            emitted += 1;
            if result.is_ok() {
                let node = lane.owned.node(batch.node as usize);
                result = send(shard, Batch { node, others: batch.others });
            }
        });
        self.batches_emitted += emitted;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_sketch::{decode_other, encode_other};
    use std::collections::HashMap;

    /// Collects emitted batches per shard, checking the routing contract.
    fn collect(
        num_nodes: u64,
        num_shards: u32,
        cap: usize,
        updates: &[(u32, u32, bool)],
    ) -> HashMap<u32, Vec<Batch>> {
        let mut router = ShardRouter::new(num_nodes, num_shards, GutterCapacity::Updates(cap), 0);
        let mut out: HashMap<u32, Vec<Batch>> = HashMap::new();
        let mut send = |shard: u32, batch: Batch| {
            out.entry(shard).or_default().push(batch);
            Ok(())
        };
        for &(u, v, d) in updates {
            router.route_update(u, v, d, &mut send).unwrap();
        }
        router.flush(&mut send).unwrap();
        assert_eq!(router.buffered_len(), 0);
        out
    }

    #[test]
    fn batches_are_node_keyed_and_owner_routed() {
        let updates: Vec<(u32, u32, bool)> =
            (0..50).map(|i| (i % 10, (i + 3) % 10, false)).filter(|&(a, b, _)| a != b).collect();
        let per_shard = collect(10, 3, 4, &updates);
        for (&shard, batches) in &per_shard {
            for b in batches {
                assert_eq!(b.node % 3, shard, "batch for node {} on shard {shard}", b.node);
                assert!(!b.others.is_empty());
                assert!(b.others.len() <= 4, "batches bounded by gutter capacity");
            }
        }
    }

    #[test]
    fn every_record_is_delivered_exactly_once() {
        let updates: Vec<(u32, u32, bool)> =
            (0..200u32).map(|i| (i % 16, (i * 7 + 1) % 16, i % 3 == 0)).collect();
        let valid: Vec<_> = updates.into_iter().filter(|&(a, b, _)| a != b).collect();
        let per_shard = collect(16, 4, 5, &valid);

        // Reconstruct the delivered multiset of (dst, other, is_delete).
        let mut delivered: Vec<(u32, u32, bool)> = Vec::new();
        for batches in per_shard.values() {
            for b in batches {
                for &rec in &b.others {
                    let (other, d) = decode_other(rec);
                    delivered.push((b.node, other, d));
                }
            }
        }
        let mut expected: Vec<(u32, u32, bool)> =
            valid.iter().flat_map(|&(u, v, d)| [(u, v, d), (v, u, d)]).collect();
        delivered.sort_unstable();
        expected.sort_unstable();
        assert_eq!(delivered, expected);
    }

    #[test]
    fn batching_reduces_messages() {
        let updates: Vec<(u32, u32, bool)> =
            (0..300u32).map(|i| (i % 8, (i + 1) % 8, false)).filter(|&(a, b, _)| a != b).collect();
        let batched = collect(8, 2, 50, &updates);
        let unbatched = collect(8, 2, 1, &updates);
        let count = |m: &HashMap<u32, Vec<Batch>>| m.values().map(Vec::len).sum::<usize>();
        assert!(
            count(&batched) * 10 <= count(&unbatched),
            "batched {} vs unbatched {}",
            count(&batched),
            count(&unbatched)
        );
    }

    #[test]
    fn send_errors_propagate() {
        let mut router = ShardRouter::new(8, 2, GutterCapacity::Updates(1), 0);
        let mut send = |_s: u32, _b: Batch| Err(GzError::Protocol("link down".into()));
        let err = router.insert(3, encode_other(1, false), &mut send);
        assert!(matches!(err, Err(GzError::Protocol(_))));
    }

    #[test]
    fn single_shard_router_degenerates_to_leaf_gutters() {
        let updates: Vec<(u32, u32, bool)> = vec![(0, 1, false), (1, 2, false), (2, 0, false)];
        let per_shard = collect(4, 1, 100, &updates);
        assert_eq!(per_shard.len(), 1);
        assert!(per_shard.contains_key(&0));
    }

    fn batch(node: u32, rec: u32) -> Batch {
        Batch { node, others: vec![rec] }
    }

    #[test]
    fn replay_log_appends_prunes_and_replays_the_exact_tail() {
        let mut log = ReplayLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append(batch(0, 10)), 1);
        assert_eq!(log.append(batch(2, 20)), 2);
        assert_eq!(log.append(batch(4, 30)), 3);
        assert_eq!(log.next_seq(), 3);

        // A worker restored from a checkpoint at seq 1 needs batches 2..3.
        assert!(log.covers(1));
        let tail: Vec<u32> = log.iter_from(1).map(|b| b.node).collect();
        assert_eq!(tail, vec![2, 4]);
        // A live worker that absorbed everything needs nothing.
        assert!(log.iter_from(3).next().is_none());

        // CheckpointAck at 2 prunes entries 1..=2 and keeps 3.
        log.prune_through(2);
        assert_eq!(log.len(), 1);
        assert!(log.covers(2) && log.covers(3));
        assert!(!log.covers(1), "pruned history is unrecoverable");
        let tail: Vec<u32> = log.iter_from(2).map(|b| b.node).collect();
        assert_eq!(tail, vec![4]);

        // Stale and over-eager acks are tolerated without panicking.
        log.prune_through(1);
        assert_eq!(log.len(), 1);
        log.prune_through(100);
        assert!(log.is_empty());
        assert_eq!(log.next_seq(), 3, "pruning never rewinds the sequence");
        assert!(!log.covers(100), "an ack beyond shipped batches is detectable");
    }
}
