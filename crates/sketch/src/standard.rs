//! The state-of-the-art *general* ℓ0-sampler (paper Figure 3, after
//! Cormode–Firmani) — the baseline CubeSketch is measured against.
//!
//! Each bucket holds three accumulators over the integers / a prime field:
//!
//! - `a = Σ wᵢ·idxᵢ` — weighted index sum,
//! - `b = Σ wᵢ` — weight sum,
//! - `c = Σ wᵢ·r^{idxᵢ} mod p` — polynomial fingerprint.
//!
//! A bucket with a single surviving coordinate has `a/b` equal to that
//! coordinate and the fingerprint certifies it (`c ≡ b·r^{a/b}`). Updates
//! must evaluate `r^{idx} mod p` — `O(log n)` modular multiplications — per
//! column, which is precisely the overhead the paper's Figure 4 measures and
//! CubeSketch eliminates. Once `n² > 2^61` the fingerprint needs the 128-bit
//! field and slows down again (the Figure 4 cliff at `n = 10^10`).
//!
//! Unlike CubeSketch this sampler handles vectors over Z (signed updates),
//! which is what `StreamingCC` — the prior-art system in `graph-zeppelin` —
//! feeds it: `+1` into the lower endpoint's vector, `−1` into the higher's.

use crate::geometry::{needs_wide_field, SketchGeometry};
use crate::modular::{FingerprintField, P61, P89};
use crate::{L0Sampler, SampleResult};
use gz_hash::{Hasher64, SplitMix64, Xxh64Hasher};
use std::sync::Arc;

/// Shared parameters for a family of mergeable standard ℓ0-sketches.
#[derive(Debug, Clone)]
pub struct StandardFamily<F: FingerprintField, H: Hasher64 = Xxh64Hasher> {
    geometry: SketchGeometry,
    seed: u64,
    /// Per-column membership hash (depth = trailing zeros, as in CubeSketch).
    h1: Vec<H>,
    /// Per-column fingerprint base `r`.
    r: Vec<F::Residue>,
}

impl<F: FingerprintField, H: Hasher64> StandardFamily<F, H> {
    /// Create the family identified by `(geometry, seed)`.
    pub fn new(geometry: SketchGeometry, seed: u64) -> Arc<Self> {
        let cols = geometry.num_columns as u64;
        let h1 = (0..cols).map(|c| H::with_seed(SplitMix64::derive(seed, 3 * c))).collect();
        let r = (0..cols)
            .map(|c| {
                // Draw r ∈ [2, p): any 64-bit sample reduced into the field;
                // avoid 0/1 which produce degenerate fingerprints.
                let raw = SplitMix64::derive(seed, 3 * c + 1) | 2;
                F::from_u64(raw)
            })
            .collect();
        Arc::new(StandardFamily { geometry, seed, h1, r })
    }

    /// Convenience constructor with default columns.
    pub fn for_vector(vector_len: u64, seed: u64) -> Arc<Self> {
        Self::new(SketchGeometry::for_vector(vector_len), seed)
    }

    /// The family's geometry.
    pub fn geometry(&self) -> SketchGeometry {
        self.geometry
    }

    /// A fresh all-zero sketch of this family.
    pub fn new_sketch(self: &Arc<Self>) -> StandardSketch<F, H> {
        StandardSketch::new(Arc::clone(self))
    }

    fn compatible(&self, other: &Self) -> bool {
        self.geometry == other.geometry && self.seed == other.seed
    }
}

/// One standard ℓ0-sketch (bucket payload).
///
/// `a` is kept as `i128` in both field widths for implementation simplicity;
/// the *size model* ([`SketchGeometry::standard_sketch_bytes`]) counts three
/// field words per bucket exactly as the paper does, and that model — not
/// Rust struct layout — is what Figure 5 reports.
#[derive(Debug, Clone)]
pub struct StandardSketch<F: FingerprintField, H: Hasher64 = Xxh64Hasher> {
    family: Arc<StandardFamily<F, H>>,
    a: Box<[i128]>,
    b: Box<[i64]>,
    c: Box<[F::Residue]>,
}

impl<F: FingerprintField, H: Hasher64> StandardSketch<F, H> {
    /// A fresh all-zero sketch.
    pub fn new(family: Arc<StandardFamily<F, H>>) -> Self {
        let n = family.geometry.num_buckets();
        StandardSketch {
            family,
            a: vec![0i128; n].into_boxed_slice(),
            b: vec![0i64; n].into_boxed_slice(),
            c: vec![F::ZERO; n].into_boxed_slice(),
        }
    }

    /// Apply a weighted update `f[idx] += delta` (paper Figure 3,
    /// `update_sketch`).
    pub fn update(&mut self, idx: u64, delta: i32) {
        let geom = &self.family.geometry;
        debug_assert!(idx < geom.vector_len, "index {idx} out of range");
        debug_assert!(delta == 1 || delta == -1, "stream weights are ±1");
        let enc = idx + 1; // membership hashing shared with CubeSketch
        let rows = geom.num_rows as usize;
        for col in 0..geom.num_columns as usize {
            let h = self.family.h1[col].hash64(enc);
            let depth = (1 + h.trailing_zeros() as usize).min(rows);
            // The expensive part: r^idx mod p, O(log n) modular multiplies.
            let fp = F::pow(self.family.r[col], idx);
            let signed_fp = if delta >= 0 { fp } else { F::sub(F::ZERO, fp) };
            let da = idx as i128 * delta as i128;
            let base = col * rows;
            for rix in base..base + depth {
                self.a[rix] += da;
                self.b[rix] += delta as i64;
                self.c[rix] = F::add(self.c[rix], signed_fp);
            }
        }
    }

    /// Recover a nonzero coordinate (paper Figure 3, `query_sketch`).
    pub fn query(&self) -> SampleResult {
        let geom = &self.family.geometry;
        let rows = geom.num_rows as usize;
        let mut all_empty = true;
        for col in 0..geom.num_columns as usize {
            let base = col * rows;
            for rix in (base..base + rows).rev() {
                let (a, b, c) = (self.a[rix], self.b[rix], self.c[rix]);
                if a == 0 && b == 0 && c == F::ZERO {
                    continue;
                }
                all_empty = false;
                if b == 0 {
                    continue;
                }
                let q = a / b as i128;
                if q < 0 || a != q * b as i128 || q as u64 >= geom.vector_len {
                    continue;
                }
                // Fingerprint check: c ≟ b · r^q (mod p).
                let expect = F::mul(F::from_i64(b), F::pow(self.family.r[col], q as u64));
                if c == expect {
                    return SampleResult::Index(q as u64);
                }
            }
        }
        if all_empty {
            SampleResult::Zero
        } else {
            SampleResult::Fail
        }
    }

    /// Merge another sketch of the same family (linearity over Z).
    ///
    /// # Panics
    /// Panics if the families are incompatible.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.family.compatible(&other.family),
            "cannot merge sketches from different families"
        );
        for (x, y) in self.a.iter_mut().zip(other.a.iter()) {
            *x += *y;
        }
        for (x, y) in self.b.iter_mut().zip(other.b.iter()) {
            *x += *y;
        }
        for (x, y) in self.c.iter_mut().zip(other.c.iter()) {
            *x = F::add(*x, *y);
        }
    }

    /// Reset every bucket to zero.
    pub fn clear(&mut self) {
        self.a.fill(0);
        self.b.fill(0);
        for c in self.c.iter_mut() {
            *c = F::ZERO;
        }
    }

    /// True if every bucket is identically zero.
    pub fn is_empty(&self) -> bool {
        self.a.iter().all(|&x| x == 0)
            && self.b.iter().all(|&x| x == 0)
            && self.c.iter().all(|&x| x == F::ZERO)
    }

    /// Size in bytes under the paper's accounting (3 field words / bucket).
    pub fn model_bytes(&self) -> usize {
        self.family.geometry.num_buckets() * 3 * F::WORD_BYTES
    }
}

impl<F: FingerprintField, H: Hasher64> L0Sampler for StandardSketch<F, H> {
    fn update_signed(&mut self, idx: u64, delta: i32) {
        self.update(idx, delta);
    }

    fn sample(&self) -> SampleResult {
        self.query()
    }

    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn clear(&mut self) {
        StandardSketch::clear(self);
    }

    fn payload_bytes(&self) -> usize {
        self.model_bytes()
    }
}

/// Field-width-dispatching standard sketch: picks the 64-bit path while
/// `n² < 2^61` and the 128-bit path beyond, mirroring the paper's
/// "128-bit integers are required when V ≥ 10^5".
pub enum AnyStandardSketch<H: Hasher64 = Xxh64Hasher> {
    /// 64-bit fingerprint field (`p = 2^61 − 1`).
    Narrow(StandardSketch<P61, H>),
    /// 128-bit fingerprint field (`p = 2^89 − 1`).
    Wide(StandardSketch<P89, H>),
}

impl<H: Hasher64> Clone for AnyStandardSketch<H> {
    fn clone(&self) -> Self {
        match self {
            AnyStandardSketch::Narrow(s) => AnyStandardSketch::Narrow(s.clone()),
            AnyStandardSketch::Wide(s) => AnyStandardSketch::Wide(s.clone()),
        }
    }
}

/// Family handle matching [`AnyStandardSketch`].
pub enum AnyStandardFamily<H: Hasher64 = Xxh64Hasher> {
    /// 64-bit path family.
    Narrow(Arc<StandardFamily<P61, H>>),
    /// 128-bit path family.
    Wide(Arc<StandardFamily<P89, H>>),
}

impl<H: Hasher64> AnyStandardFamily<H> {
    /// Build a family for `vector_len`, choosing the field width the paper's
    /// soundness argument requires.
    pub fn for_vector(vector_len: u64, seed: u64) -> Self {
        if needs_wide_field(vector_len) {
            AnyStandardFamily::Wide(StandardFamily::for_vector(vector_len, seed))
        } else {
            AnyStandardFamily::Narrow(StandardFamily::for_vector(vector_len, seed))
        }
    }

    /// True if this family uses 128-bit arithmetic.
    pub fn is_wide(&self) -> bool {
        matches!(self, AnyStandardFamily::Wide(_))
    }

    /// A fresh sketch of this family.
    pub fn new_sketch(&self) -> AnyStandardSketch<H> {
        match self {
            AnyStandardFamily::Narrow(f) => AnyStandardSketch::Narrow(f.new_sketch()),
            AnyStandardFamily::Wide(f) => AnyStandardSketch::Wide(f.new_sketch()),
        }
    }
}

impl<H: Hasher64> L0Sampler for AnyStandardSketch<H> {
    fn update_signed(&mut self, idx: u64, delta: i32) {
        match self {
            AnyStandardSketch::Narrow(s) => s.update(idx, delta),
            AnyStandardSketch::Wide(s) => s.update(idx, delta),
        }
    }

    fn sample(&self) -> SampleResult {
        match self {
            AnyStandardSketch::Narrow(s) => s.query(),
            AnyStandardSketch::Wide(s) => s.query(),
        }
    }

    fn merge_from(&mut self, other: &Self) {
        match (self, other) {
            (AnyStandardSketch::Narrow(a), AnyStandardSketch::Narrow(b)) => a.merge(b),
            (AnyStandardSketch::Wide(a), AnyStandardSketch::Wide(b)) => a.merge(b),
            _ => panic!("cannot merge sketches with different field widths"),
        }
    }

    fn clear(&mut self) {
        match self {
            AnyStandardSketch::Narrow(s) => s.clear(),
            AnyStandardSketch::Wide(s) => s.clear(),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            AnyStandardSketch::Narrow(s) => s.model_bytes(),
            AnyStandardSketch::Wide(s) => s.model_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family61(n: u64, seed: u64) -> Arc<StandardFamily<P61>> {
        StandardFamily::for_vector(n, seed)
    }

    #[test]
    fn empty_reports_zero() {
        let s = family61(1000, 1).new_sketch();
        assert_eq!(s.query(), SampleResult::Zero);
    }

    #[test]
    fn single_insert_recovered() {
        for idx in [0u64, 1, 999] {
            let mut s = family61(1000, 2).new_sketch();
            s.update(idx, 1);
            assert_eq!(s.query(), SampleResult::Index(idx), "idx={idx}");
        }
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut s = family61(1000, 3).new_sketch();
        s.update(42, 1);
        s.update(42, -1);
        assert!(s.is_empty());
        assert_eq!(s.query(), SampleResult::Zero);
    }

    #[test]
    fn negative_single_entry_recovered() {
        // A lone −1 entry: a = −idx, b = −1, a/b = idx; the fingerprint must
        // certify through the signed weight.
        let mut s = family61(1000, 4).new_sketch();
        s.update(321, -1);
        assert_eq!(s.query(), SampleResult::Index(321));
    }

    #[test]
    fn recovers_member_of_support() {
        let mut s = family61(10_000, 5).new_sketch();
        let support = [7u64, 77, 777, 7777];
        for &i in &support {
            s.update(i, 1);
        }
        match s.query() {
            SampleResult::Index(i) => assert!(support.contains(&i)),
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn mixed_signs_cancel_correctly() {
        // f = +1 at 10, +1 at 20, then −1 at 10: support is exactly {20}.
        let mut s = family61(100, 6).new_sketch();
        s.update(10, 1);
        s.update(20, 1);
        s.update(10, -1);
        assert_eq!(s.query(), SampleResult::Index(20));
    }

    #[test]
    fn merge_is_linear() {
        let f = family61(5000, 7);
        let (mut a, mut b) = (f.new_sketch(), f.new_sketch());
        a.update(100, 1);
        a.update(200, 1);
        b.update(100, -1); // cancels across the merge
        b.update(300, 1);
        a.merge(&b);
        match a.query() {
            SampleResult::Index(i) => assert!(i == 200 || i == 300),
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn wide_field_single_insert() {
        let f: Arc<StandardFamily<P89>> = StandardFamily::for_vector(1 << 40, 8);
        let mut s = f.new_sketch();
        let idx = (1u64 << 39) + 12345;
        s.update(idx, 1);
        assert_eq!(s.query(), SampleResult::Index(idx));
    }

    #[test]
    fn any_dispatch_picks_field_by_length() {
        let narrow = AnyStandardFamily::<Xxh64Hasher>::for_vector(1_000_000, 9);
        assert!(!narrow.is_wide());
        let wide = AnyStandardFamily::<Xxh64Hasher>::for_vector(100_000_000_000, 9);
        assert!(wide.is_wide());

        let mut s = wide.new_sketch();
        s.update_signed(99_999_999_999, 1);
        assert_eq!(s.sample(), SampleResult::Index(99_999_999_999));
    }

    #[test]
    fn model_bytes_match_geometry() {
        let f = family61(1_000_000, 10);
        let s = f.new_sketch();
        assert_eq!(s.model_bytes(), f.geometry().standard_sketch_bytes());
        let fw: Arc<StandardFamily<P89>> = StandardFamily::for_vector(1 << 40, 10);
        let sw = fw.new_sketch();
        assert_eq!(sw.model_bytes(), fw.geometry().standard_sketch_bytes());
    }

    #[test]
    #[should_panic(expected = "different field widths")]
    fn any_merge_rejects_mixed_width() {
        let a = AnyStandardFamily::<Xxh64Hasher>::for_vector(1000, 1);
        let b = AnyStandardFamily::<Xxh64Hasher>::for_vector(100_000_000_000, 1);
        let mut sa = a.new_sketch();
        let sb = b.new_sketch();
        sa.merge_from(&sb);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness over arbitrary ±1 update sequences: a returned index is
        /// always a coordinate with nonzero net weight.
        #[test]
        fn sample_is_sound(
            seed in any::<u64>(),
            updates in proptest::collection::vec((0u64..2000, proptest::bool::ANY), 0..80)
        ) {
            let f: Arc<StandardFamily<P61>> = StandardFamily::for_vector(2000, seed);
            let mut s = f.new_sketch();
            let mut weights: HashMap<u64, i64> = HashMap::new();
            for &(idx, positive) in &updates {
                let d = if positive { 1 } else { -1 };
                s.update(idx, d);
                let w = weights.entry(idx).or_insert(0);
                *w += d as i64;
                if *w == 0 {
                    weights.remove(&idx);
                }
            }
            match s.query() {
                SampleResult::Index(i) => prop_assert!(weights.contains_key(&i)),
                SampleResult::Zero => prop_assert!(weights.is_empty()),
                SampleResult::Fail => prop_assert!(!weights.is_empty()),
            }
        }

        /// Linearity: S(x) + S(y) behaves as S(x + y).
        #[test]
        fn merge_linearity(
            seed in any::<u64>(),
            xs in proptest::collection::vec((0u64..500, proptest::bool::ANY), 0..40),
            ys in proptest::collection::vec((0u64..500, proptest::bool::ANY), 0..40)
        ) {
            let f: Arc<StandardFamily<P61>> = StandardFamily::for_vector(500, seed);
            let (mut a, mut b, mut direct) = (f.new_sketch(), f.new_sketch(), f.new_sketch());
            for &(i, pos) in &xs {
                let d = if pos { 1 } else { -1 };
                a.update(i, d);
                direct.update(i, d);
            }
            for &(i, pos) in &ys {
                let d = if pos { 1 } else { -1 };
                b.update(i, d);
                direct.update(i, d);
            }
            a.merge(&b);
            prop_assert_eq!(&a.a, &direct.a);
            prop_assert_eq!(&a.b, &direct.b);
            prop_assert_eq!(&a.c, &direct.c);
        }
    }
}
