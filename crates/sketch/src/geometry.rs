//! Sketch dimensions and the Figure 5 size model.
//!
//! Both samplers share the same bucket matrix shape (paper §3): `log(n)` rows
//! (subsampling levels — row `i` holds coordinates whose membership hash has
//! `i` trailing zero bits) by `q·log(1/δ)` columns (independent repetitions;
//! the paper and the production system fix 7 columns). What differs is the
//! *bucket payload*: CubeSketch stores `(α: u64, γ: u32)` = 12 bytes, the
//! general sampler stores three field words = 24 bytes (64-bit path) or 48
//! bytes (128-bit path). That 2×/4× gap is exactly the paper's Figure 5.

/// Number of columns used by the paper's implementation (§5.1: `log(1/δ)=7`).
pub const DEFAULT_COLUMNS: u32 = 7;

/// Shape of a sketch's bucket matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchGeometry {
    /// Length `n` of the sketched vector.
    pub vector_len: u64,
    /// Subsampling depth: `max(1, ⌈log2 n⌉)` rows.
    pub num_rows: u32,
    /// Independent repetitions: `q·log(1/δ)` columns.
    pub num_columns: u32,
}

impl SketchGeometry {
    /// Geometry for a vector of length `n` with the default column count.
    pub fn for_vector(vector_len: u64) -> Self {
        Self::with_columns(vector_len, DEFAULT_COLUMNS)
    }

    /// Geometry with an explicit column count (used by reliability ablations).
    pub fn with_columns(vector_len: u64, num_columns: u32) -> Self {
        assert!(vector_len > 0, "cannot sketch an empty vector");
        assert!(num_columns > 0, "need at least one column");
        let num_rows = log2_ceil(vector_len).max(1);
        SketchGeometry { vector_len, num_rows, num_columns }
    }

    /// Total number of buckets.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.num_rows as usize * self.num_columns as usize
    }

    /// Flat index of bucket `(row, col)`; buckets are column-major so one
    /// update's writes (rows 0..depth of a column) are contiguous.
    #[inline]
    pub fn bucket_at(&self, row: u32, col: u32) -> usize {
        debug_assert!(row < self.num_rows && col < self.num_columns);
        col as usize * self.num_rows as usize + row as usize
    }

    /// CubeSketch payload size in bytes: 12 bytes per bucket (α: u64 +
    /// γ: u32), as counted in paper §5.1 ("12B buckets").
    pub fn cube_sketch_bytes(&self) -> usize {
        self.num_buckets() * cube_bucket_bytes()
    }

    /// Standard-ℓ0 payload size in bytes: three field words per bucket.
    /// 64-bit words while the checksum prime fits a machine word
    /// (`n² < 2^61`), 128-bit words beyond — the paper's "128-bit integers
    /// are necessary when V ≥ 10^5" (n ≳ 10^10).
    pub fn standard_sketch_bytes(&self) -> usize {
        self.num_buckets() * standard_bucket_bytes(self.vector_len)
    }
}

/// Bytes per CubeSketch bucket (α + γ).
pub const fn cube_bucket_bytes() -> usize {
    8 + 4
}

/// Bytes per standard-ℓ0 bucket for a given vector length: 3 words of 8 or
/// 16 bytes.
pub fn standard_bucket_bytes(vector_len: u64) -> usize {
    3 * if needs_wide_field(vector_len) { 16 } else { 8 }
}

/// True when the general sampler's checksum prime must exceed 64 bits:
/// soundness needs `p > n²` so collisions are `≤ 1/n²`-rare, and the largest
/// convenient sub-64-bit prime is the Mersenne `2^61 − 1`.
pub fn needs_wide_field(vector_len: u64) -> bool {
    (vector_len as u128).saturating_mul(vector_len as u128) >= (1u128 << 61) - 1
}

/// `⌈log2(n)⌉` for `n ≥ 1` (0 for n = 1).
pub fn log2_ceil(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1 << 40), 40);
        assert_eq!(log2_ceil((1 << 40) + 1), 41);
    }

    #[test]
    fn geometry_shape() {
        let g = SketchGeometry::for_vector(1_000_000);
        assert_eq!(g.num_columns, 7);
        assert_eq!(g.num_rows, 20);
        assert_eq!(g.num_buckets(), 140);
    }

    #[test]
    fn bucket_at_column_major() {
        let g = SketchGeometry::with_columns(1 << 10, 3);
        assert_eq!(g.num_rows, 10);
        assert_eq!(g.bucket_at(0, 0), 0);
        assert_eq!(g.bucket_at(9, 0), 9);
        assert_eq!(g.bucket_at(0, 1), 10);
        assert_eq!(g.bucket_at(5, 2), 25);
    }

    #[test]
    fn field_width_threshold_matches_paper() {
        // Paper §3: 64-bit arithmetic suffices up to vectors of length 10^9,
        // 128-bit needed at 10^10 (the Figure 4 catastrophic slowdown).
        assert!(!needs_wide_field(1_000_000_000));
        assert!(needs_wide_field(10_000_000_000));
    }

    #[test]
    fn figure5_size_ratio() {
        // CubeSketch vs standard: 2× smaller in the 64-bit regime, 4× in the
        // 128-bit regime (paper Figure 5's "Size Reduction" column).
        let small = SketchGeometry::for_vector(1_000_000);
        let ratio_small = small.standard_sketch_bytes() as f64 / small.cube_sketch_bytes() as f64;
        assert!((ratio_small - 2.0).abs() < 0.01, "ratio {ratio_small}");

        let large = SketchGeometry::for_vector(1_000_000_000_000);
        let ratio_large = large.standard_sketch_bytes() as f64 / large.cube_sketch_bytes() as f64;
        assert!((ratio_large - 4.0).abs() < 0.01, "ratio {ratio_large}");
    }

    #[test]
    fn sizes_grow_with_vector_len() {
        let mut prev = 0;
        for exp in 3..13u32 {
            let g = SketchGeometry::for_vector(10u64.pow(exp));
            let sz = g.cube_sketch_bytes();
            assert!(sz >= prev);
            prev = sz;
        }
    }

    #[test]
    #[should_panic(expected = "empty vector")]
    fn zero_length_rejected() {
        let _ = SketchGeometry::for_vector(0);
    }
}
