//! ℓ0-sampling sketches: CubeSketch and the general-purpose baseline.
//!
//! This crate is the core data-structure layer of the GraphZeppelin
//! reproduction (paper §3):
//!
//! - [`cube`] — **CubeSketch**, the paper's new ℓ0-sampler for vectors over
//!   Z_2. Each bucket is an `(α, γ)` pair maintained with XOR; updates cost
//!   `O(log 1/δ)` XORs on average and queries recover a nonzero coordinate
//!   with probability `≥ 1 − δ` (paper Theorem 1, Figure 6).
//! - [`standard`] — the state-of-the-art *general* ℓ0-sampler the paper
//!   compares against (Cormode–Firmani; paper Figure 3), whose update cost is
//!   dominated by modular exponentiation, including the 128-bit arithmetic
//!   required once vectors are long enough that the checksum prime must
//!   exceed `n²` (paper §3: `V ≥ 10^5`, i.e. `n ≳ 10^10`).
//! - [`modular`] — Mersenne-prime fields `2^61 − 1` (64-bit path) and
//!   `2^89 − 1` (128-bit path) backing the standard sampler's checksums.
//! - [`geometry`] — shared sketch dimensions and the closed-form size model
//!   that regenerates the paper's Figure 5.
//!
//! Both samplers implement the [`L0Sampler`] interface so the Boruvka layer
//! (`graph-zeppelin`) and the benchmark harness can swap them.

pub mod cube;
pub mod geometry;
pub mod modular;
pub mod standard;

pub use cube::{cancel_duplicates, CubeSketch, CubeSketchFamily};
pub use geometry::SketchGeometry;
pub use standard::{StandardFamily, StandardSketch};

/// Result of querying an ℓ0-sampler (paper Definition 1 plus the empty case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleResult {
    /// A nonzero coordinate of the sketched vector.
    Index(u64),
    /// The sketch is certain (w.h.p.) the vector is zero: every bucket is
    /// empty. Boruvka interprets this as "no edge crosses this cut".
    Zero,
    /// The vector is nonzero but no bucket was recoverable — the δ-probability
    /// failure event.
    Fail,
}

impl SampleResult {
    /// The sampled index, if any.
    pub fn index(self) -> Option<u64> {
        match self {
            SampleResult::Index(i) => Some(i),
            _ => None,
        }
    }

    /// True if the query failed (vector nonzero but unrecoverable).
    pub fn is_fail(self) -> bool {
        matches!(self, SampleResult::Fail)
    }
}

/// Common interface over ℓ0-sampling sketches of a fixed-length vector.
///
/// `toggle`-style updates treat the vector over Z_2 (CubeSketch's native
/// domain); signed updates treat it over Z (the general sampler's domain).
/// CubeSketch implements signed updates by ignoring the sign — exactly the
/// paper's observation that characteristic-vector arithmetic collapses mod 2.
pub trait L0Sampler {
    /// Apply an update of weight `delta` (±1) to coordinate `idx`.
    fn update_signed(&mut self, idx: u64, delta: i32);

    /// Sample a nonzero coordinate of the accumulated vector.
    fn sample(&self) -> SampleResult;

    /// Merge another sketch of the same family into this one (linearity:
    /// `S(x) + S(y) = S(x + y)`).
    fn merge_from(&mut self, other: &Self);

    /// Reset to the sketch of the zero vector (reused as scratch space by
    /// the ingestion pipeline's delta-sketch locking discipline).
    fn clear(&mut self);

    /// In-memory size in bytes of the bucket payload (the Figure 5 metric).
    fn payload_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_result_accessors() {
        assert_eq!(SampleResult::Index(7).index(), Some(7));
        assert_eq!(SampleResult::Zero.index(), None);
        assert!(SampleResult::Fail.is_fail());
        assert!(!SampleResult::Index(0).is_fail());
    }
}
