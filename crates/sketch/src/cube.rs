//! CubeSketch: the paper's ℓ0-sampler for vectors over Z_2 (§3.1, Figure 6).
//!
//! Every bucket holds two XOR-accumulators: `α`, the XOR of the (offset)
//! binary representations of all coordinates currently "in" the bucket, and
//! `γ`, the XOR of their checksums. A coordinate `e` belongs to bucket row
//! `i` of column `j` iff the column hash `h_j(e)` has at least `i` trailing
//! zero bits — so row 0 holds everything and each deeper row holds an
//! (expected) half of the previous one. A bucket with exactly one surviving
//! coordinate reports it directly: `α` *is* its encoding and the checksum
//! certifies single support (Lemma 3).
//!
//! Three implementation choices relative to the pseudocode, all documented
//! in DESIGN.md (§2 and §9):
//!
//! - `α` accumulates `idx + 1` rather than `idx`, so the all-zero bucket
//!   unambiguously means "empty" even when coordinate 0 is in play; queries
//!   subtract the offset.
//! - Hash functions live in a shared [`CubeSketchFamily`], not in each
//!   sketch: sketches are only mergeable when built from identical hash
//!   functions (the paper shares them across all node sketches of a round),
//!   and sharing keeps per-sketch memory at exactly the bucket payload.
//! - One 64-bit hash per column serves both roles: the *depth* is its
//!   trailing-zero count and the *checksum* its high 32 bits, halving hash
//!   invocations on the update hot path relative to separate `h1`/`h2`
//!   draws. Update, query, and serialization all derive from the same call,
//!   so linearity and single-support certification are unaffected.
//!
//! The ingestion hot path enters through [`CubeSketch::update_batch`]
//! (paper Figure 8, `update_sketch_batch`): a self-cancellation pre-pass
//! drops coordinate pairs before any hashing (toggles over Z_2 — gutters
//! routinely deliver insert/delete pairs for the same edge), then a
//! column-major kernel hashes each survivor once per column and applies the
//! XORs in contiguous row order via a suffix-XOR sweep.

use crate::geometry::SketchGeometry;
use crate::{L0Sampler, SampleResult};
use gz_hash::{Hasher64, SplitMix64, Xxh64Hasher};
use std::sync::Arc;

/// Hard ceiling on sketch rows (`⌈log2 n⌉ ≤ 64` for `n: u64`); sizes the
/// batch kernel's stack-resident per-depth accumulators.
const MAX_ROWS: usize = 64;

/// Batches smaller than this skip the column-major kernel: the suffix-XOR
/// sweep touches every row of every column (`rows × columns` writes), which
/// only pays for itself once several updates share that fixed cost.
const KERNEL_MIN_BATCH: usize = 4;

/// Cancel coordinate pairs within a batch of Z_2 toggles, in place.
///
/// Over Z_2 an even number of toggles of the same coordinate is a no-op, so
/// duplicate pairs can be dropped *before any hashing* — the batch kernel's
/// pre-pass. Sorts `indices` and keeps one copy of each value that occurs an
/// odd number of times; the surviving order is ascending (irrelevant to the
/// sketch, whose updates commute).
pub fn cancel_duplicates(indices: &mut Vec<u64>) {
    if indices.len() < 2 {
        return;
    }
    indices.sort_unstable();
    let mut write = 0;
    let mut read = 0;
    while read < indices.len() {
        let value = indices[read];
        let mut run = 1;
        while read + run < indices.len() && indices[read + run] == value {
            run += 1;
        }
        if run % 2 == 1 {
            indices[write] = value;
            write += 1;
        }
        read += run;
    }
    indices.truncate(write);
}

/// Shared parameters (geometry + hash functions) for a family of mergeable
/// CubeSketches.
#[derive(Debug, Clone)]
pub struct CubeSketchFamily<H: Hasher64 = Xxh64Hasher> {
    geometry: SketchGeometry,
    seed: u64,
    /// One hash per column: depth = trailing zeros of its value, checksum =
    /// its high 32 bits.
    hash: Vec<H>,
}

impl<H: Hasher64> CubeSketchFamily<H> {
    /// Create the family identified by `(geometry, seed)`.
    pub fn new(geometry: SketchGeometry, seed: u64) -> Arc<Self> {
        let cols = geometry.num_columns as u64;
        let hash = (0..cols).map(|c| H::with_seed(SplitMix64::derive(seed, c))).collect();
        Arc::new(CubeSketchFamily { geometry, seed, hash })
    }

    /// Depth and checksum of encoded coordinate `enc` in column `col`, from
    /// a single 64-bit hash: row `i` membership needs `i` trailing zero bits
    /// (so depth = `1 + tz`, clamped to the row count) and the checksum is
    /// the high word. The two draw fully disjoint bits while `rows ≤ 32`
    /// (`n ≤ 2^32`); for longer vectors a row-`i` bucket with `i > 32`
    /// constrains the low `i − 32` checksum bits of its members, so the
    /// effective checksum entropy in those deepest rows is `64 − i` bits —
    /// e.g. still ≥ 25 bits at `n = 2^39` (`V ≈ 10^6`) — a bounded, rare-row
    /// weakening of the Lemma 3 certificate accepted in exchange for
    /// halving hash invocations (DESIGN.md §9).
    #[inline]
    fn depth_and_checksum(&self, col: usize, enc: u64) -> (usize, u32) {
        let h = self.hash[col].hash64(enc);
        let depth = (1 + h.trailing_zeros() as usize).min(self.geometry.num_rows as usize);
        (depth, (h >> 32) as u32)
    }

    /// The checksum a single surviving coordinate must certify with (query
    /// side of the same single-hash derivation).
    #[inline]
    fn checksum(&self, col: usize, enc: u64) -> u32 {
        (self.hash[col].hash64(enc) >> 32) as u32
    }

    /// Convenience: family for a vector of length `n` with default columns.
    pub fn for_vector(vector_len: u64, seed: u64) -> Arc<Self> {
        Self::new(SketchGeometry::for_vector(vector_len), seed)
    }

    /// The family's geometry.
    #[inline]
    pub fn geometry(&self) -> SketchGeometry {
        self.geometry
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fresh all-zero sketch of this family.
    pub fn new_sketch(self: &Arc<Self>) -> CubeSketch<H> {
        CubeSketch::new(Arc::clone(self))
    }

    /// True if two families are interoperable (same geometry and seed).
    pub fn compatible(&self, other: &Self) -> bool {
        self.geometry == other.geometry && self.seed == other.seed
    }
}

/// A CubeSketch: the bucket payload of one sketched vector.
///
/// Buckets are stored structure-of-arrays (`α`s then `γ`s) so the in-memory
/// footprint is the paper's 12 bytes per bucket and column updates touch
/// contiguous words.
///
/// ```
/// use gz_sketch::cube::CubeSketchFamily;
/// use gz_sketch::SampleResult;
///
/// // A family fixes the geometry and hash functions; sketches from one
/// // family are mergeable (linearity).
/// let family = CubeSketchFamily::<gz_hash::Xxh64Hasher>::for_vector(1_000, 42);
/// let mut a = family.new_sketch();
/// let mut b = family.new_sketch();
///
/// a.update(7);          // toggle coordinate 7 on
/// b.update(7);          // ...and the same coordinate in the other sketch
/// b.update(123);
///
/// a.merge(&b);          // S(x) + S(y) = S(x XOR y): coordinate 7 cancels
/// assert_eq!(a.query(), SampleResult::Index(123));
/// ```
#[derive(Debug, Clone)]
pub struct CubeSketch<H: Hasher64 = Xxh64Hasher> {
    family: Arc<CubeSketchFamily<H>>,
    alpha: Box<[u64]>,
    gamma: Box<[u32]>,
}

impl<H: Hasher64> CubeSketch<H> {
    /// A fresh all-zero sketch.
    pub fn new(family: Arc<CubeSketchFamily<H>>) -> Self {
        let n = family.geometry.num_buckets();
        CubeSketch {
            family,
            alpha: vec![0u64; n].into_boxed_slice(),
            gamma: vec![0u32; n].into_boxed_slice(),
        }
    }

    /// The family this sketch belongs to.
    pub fn family(&self) -> &Arc<CubeSketchFamily<H>> {
        &self.family
    }

    /// Toggle coordinate `idx` of the underlying Z_2 vector
    /// (paper Figure 6, `update_sketch`).
    #[inline]
    pub fn update(&mut self, idx: u64) {
        let geom = &self.family.geometry;
        debug_assert!(idx < geom.vector_len, "index {idx} out of range");
        let enc = idx + 1; // offset encoding: 0 is reserved for "empty"
        let rows = geom.num_rows as usize;
        for col in 0..geom.num_columns as usize {
            let (depth, checksum) = self.family.depth_and_checksum(col, enc);
            let base = col * rows;
            for r in base..base + depth {
                self.alpha[r] ^= enc;
                self.gamma[r] ^= checksum;
            }
        }
    }

    /// Apply a batch of coordinate toggles (the Graph Worker path, paper
    /// Figure 8 `update_sketch_batch`): self-cancellation pre-pass, then the
    /// column-major kernel. Bit-identical to per-update singles.
    pub fn update_batch(&mut self, indices: &[u64]) {
        let mut survivors = indices.to_vec();
        cancel_duplicates(&mut survivors);
        self.update_batch_prepared(&survivors);
    }

    /// The column-major batch kernel, without the cancellation pre-pass —
    /// callers that share one prepared (decoded + cancelled) index batch
    /// across many sketches (every round of a node stack) enter here.
    ///
    /// Per column, every index is hashed exactly once and its `(α, γ)`
    /// contribution is bucketed at its exact depth; a suffix-XOR sweep then
    /// applies the accumulated deltas to the column's rows in one contiguous
    /// descending pass (row `r` receives every contribution of depth
    /// `> r`). Correct for arbitrary batches — duplicate pairs cancel inside
    /// the accumulators — the pre-pass only saves their hashing cost.
    pub fn update_batch_prepared(&mut self, indices: &[u64]) {
        if indices.len() < KERNEL_MIN_BATCH {
            for &idx in indices {
                self.update(idx);
            }
            return;
        }
        let geom = &self.family.geometry;
        let rows = geom.num_rows as usize;
        debug_assert!(rows <= MAX_ROWS);
        // Per-depth XOR accumulators, stack-resident (rows ≤ 64). Index d
        // holds the XOR of contributions whose exact depth is d + 1.
        let mut acc_alpha = [0u64; MAX_ROWS];
        let mut acc_gamma = [0u32; MAX_ROWS];
        for col in 0..geom.num_columns as usize {
            for &idx in indices {
                debug_assert!(idx < geom.vector_len, "index {idx} out of range");
                let enc = idx + 1;
                let (depth, checksum) = self.family.depth_and_checksum(col, enc);
                acc_alpha[depth - 1] ^= enc;
                acc_gamma[depth - 1] ^= checksum;
            }
            // Suffix-XOR sweep: walking rows deepest-first, the running XOR
            // at row r is exactly the combined delta of all indices with
            // depth > r. Writes are contiguous within the column (buckets
            // are column-major), and the accumulators are re-zeroed in the
            // same pass for the next column.
            let base = col * rows;
            let (mut run_alpha, mut run_gamma) = (0u64, 0u32);
            for r in (0..rows).rev() {
                run_alpha ^= acc_alpha[r];
                run_gamma ^= acc_gamma[r];
                acc_alpha[r] = 0;
                acc_gamma[r] = 0;
                self.alpha[base + r] ^= run_alpha;
                self.gamma[base + r] ^= run_gamma;
            }
        }
    }

    /// Recover a nonzero coordinate (paper Figure 6, `query_sketch`).
    ///
    /// Scans each column from its deepest (sparsest) row upward: deep buckets
    /// are the likeliest to have single support when the vector is dense.
    pub fn query(&self) -> SampleResult {
        let geom = &self.family.geometry;
        let rows = geom.num_rows as usize;
        let mut all_empty = true;
        for col in 0..geom.num_columns as usize {
            let base = col * rows;
            for r in (base..base + rows).rev() {
                let (a, g) = (self.alpha[r], self.gamma[r]);
                if a == 0 && g == 0 {
                    continue; // empty (or an undetectable double-cancellation)
                }
                all_empty = false;
                if a != 0 && self.family.checksum(col, a) == g && a - 1 < geom.vector_len {
                    return SampleResult::Index(a - 1);
                }
            }
        }
        if all_empty {
            SampleResult::Zero
        } else {
            SampleResult::Fail
        }
    }

    /// True if every bucket is empty — w.h.p. the vector is zero.
    pub fn is_empty(&self) -> bool {
        self.alpha.iter().all(|&a| a == 0) && self.gamma.iter().all(|&g| g == 0)
    }

    /// Merge (XOR) another sketch of the same family into this one.
    ///
    /// This is sketch linearity (Definition 1): the result sketches the sum
    /// (XOR) of the two vectors.
    ///
    /// # Panics
    /// Panics if the sketches come from incompatible families.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.family.compatible(&other.family),
            "cannot merge sketches from different families"
        );
        for (a, b) in self.alpha.iter_mut().zip(other.alpha.iter()) {
            *a ^= *b;
        }
        for (a, b) in self.gamma.iter_mut().zip(other.gamma.iter()) {
            *a ^= *b;
        }
    }

    /// Reset to the all-zero sketch (reused as the scratch "delta sketch" in
    /// the ingestion pipeline's lock-minimizing path, paper §5.1).
    pub fn clear(&mut self) {
        self.alpha.fill(0);
        self.gamma.fill(0);
    }

    /// Payload size in bytes (α and γ arrays only), the Figure 5 metric.
    pub fn payload_bytes(&self) -> usize {
        self.alpha.len() * 8 + self.gamma.len() * 4
    }

    /// Serialize the payload to `out` (little-endian α words, then γ words).
    /// Used by the file-backed sketch store.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.payload_bytes());
        for &a in self.alpha.iter() {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &g in self.gamma.iter() {
            out.extend_from_slice(&g.to_le_bytes());
        }
    }

    /// Deserialize a payload previously produced by [`Self::serialize_into`].
    ///
    /// # Panics
    /// Panics if `bytes` has the wrong length for the family's geometry.
    pub fn deserialize(family: Arc<CubeSketchFamily<H>>, bytes: &[u8]) -> Self {
        let n = family.geometry.num_buckets();
        assert_eq!(bytes.len(), n * 12, "payload size mismatch");
        // Bulk-decode via `chunks_exact`: the bounds checks hoist out of the
        // loops, which matters on the disk-store query path where every
        // group fault deserializes a whole node group.
        let (alpha_bytes, gamma_bytes) = bytes.split_at(n * 8);
        let alpha: Box<[u64]> = alpha_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect();
        let gamma: Box<[u32]> = gamma_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
            .collect();
        CubeSketch { family, alpha, gamma }
    }

    /// Exact serialized size for a geometry.
    pub fn serialized_size(geometry: SketchGeometry) -> usize {
        geometry.num_buckets() * 12
    }
}

impl<H: Hasher64> L0Sampler for CubeSketch<H> {
    #[inline]
    fn update_signed(&mut self, idx: u64, _delta: i32) {
        // Over Z_2 insertion and deletion are the same toggle.
        self.update(idx);
    }

    fn sample(&self) -> SampleResult {
        self.query()
    }

    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn clear(&mut self) {
        CubeSketch::clear(self);
    }

    fn payload_bytes(&self) -> usize {
        CubeSketch::payload_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_hash::PairwiseHash;

    fn family(n: u64, seed: u64) -> Arc<CubeSketchFamily> {
        CubeSketchFamily::for_vector(n, seed)
    }

    #[test]
    fn empty_sketch_reports_zero() {
        let s = family(1000, 1).new_sketch();
        assert_eq!(s.query(), SampleResult::Zero);
        assert!(s.is_empty());
    }

    #[test]
    fn single_update_recovered() {
        for idx in [0u64, 1, 500, 999] {
            let mut s = family(1000, 2).new_sketch();
            s.update(idx);
            assert_eq!(s.query(), SampleResult::Index(idx), "idx={idx}");
        }
    }

    #[test]
    fn toggle_twice_cancels() {
        let mut s = family(1000, 3).new_sketch();
        s.update(123);
        s.update(123);
        assert!(s.is_empty());
        assert_eq!(s.query(), SampleResult::Zero);
    }

    #[test]
    fn recovers_some_member_of_support() {
        let mut s = family(10_000, 4).new_sketch();
        let support: Vec<u64> = vec![3, 77, 1024, 9999, 5000];
        for &i in &support {
            s.update(i);
        }
        match s.query() {
            SampleResult::Index(i) => assert!(support.contains(&i), "got {i}"),
            other => panic!("expected a sample, got {other:?}"),
        }
    }

    #[test]
    fn dense_support_still_sampleable_usually() {
        // Half of all coordinates set — the graph-stream regime. A single
        // sketch fails with probability ≤ δ; across 50 seeds the failure
        // count must be small.
        let n = 1 << 12;
        let mut failures = 0;
        for seed in 0..50u64 {
            let mut s = family(n, seed).new_sketch();
            for i in (0..n).step_by(2) {
                s.update(i);
            }
            match s.query() {
                SampleResult::Index(i) => assert_eq!(i % 2, 0, "sampled a zero coordinate"),
                SampleResult::Fail => failures += 1,
                SampleResult::Zero => panic!("nonzero vector reported zero"),
            }
        }
        assert!(failures <= 5, "{failures}/50 failures is too many");
    }

    #[test]
    fn linearity_merge_equals_sketch_of_symmetric_difference() {
        let f = family(5000, 7);
        let (mut a, mut b) = (f.new_sketch(), f.new_sketch());
        let xs = [1u64, 2, 3, 100];
        let ys = [3u64, 100, 4000]; // overlap {3, 100} cancels
        for &x in &xs {
            a.update(x);
        }
        for &y in &ys {
            b.update(y);
        }
        a.merge(&b);

        let mut direct = f.new_sketch();
        for &i in &[1u64, 2, 4000] {
            direct.update(i);
        }
        assert_eq!(a.alpha, direct.alpha);
        assert_eq!(a.gamma, direct.gamma);
    }

    #[test]
    #[should_panic(expected = "different families")]
    fn merge_rejects_different_seeds() {
        let mut a = family(100, 1).new_sketch();
        let b = family(100, 2).new_sketch();
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut s = family(100, 9).new_sketch();
        s.update(42);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn serialization_round_trip() {
        let f = family(4096, 11);
        let mut s = f.new_sketch();
        for i in [0u64, 1, 4095, 2048] {
            s.update(i);
        }
        let mut bytes = Vec::new();
        s.serialize_into(&mut bytes);
        assert_eq!(bytes.len(), CubeSketch::<Xxh64Hasher>::serialized_size(f.geometry()));
        let t = CubeSketch::deserialize(Arc::clone(&f), &bytes);
        assert_eq!(s.alpha, t.alpha);
        assert_eq!(s.gamma, t.gamma);
        assert_eq!(t.query(), s.query());
    }

    #[test]
    fn works_with_pairwise_hasher() {
        // Theory-mode ablation: the 2-universal family must work identically.
        let f: Arc<CubeSketchFamily<PairwiseHash>> = CubeSketchFamily::for_vector(1000, 5);
        let mut s = f.new_sketch();
        s.update(777);
        assert_eq!(s.query(), SampleResult::Index(777));
    }

    #[test]
    fn payload_matches_geometry_model() {
        let f = family(1_000_000, 13);
        let s = f.new_sketch();
        assert_eq!(s.payload_bytes(), f.geometry().cube_sketch_bytes());
    }

    #[test]
    fn batch_equals_singles() {
        let f = family(10_000, 17);
        let mut a = f.new_sketch();
        let mut b = f.new_sketch();
        let updates: Vec<u64> = (0..200).map(|i| (i * 37) % 10_000).collect();
        a.update_batch(&updates);
        for &u in &updates {
            b.update(u);
        }
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.gamma, b.gamma);
    }

    #[test]
    fn prepared_kernel_equals_singles_with_duplicates() {
        // The column-major kernel is correct even without the pre-pass:
        // duplicate contributions cancel inside its accumulators.
        let f = family(10_000, 19);
        let mut a = f.new_sketch();
        let mut b = f.new_sketch();
        let updates: Vec<u64> = (0..150).map(|i| (i * 13) % 50).collect(); // heavy dups
        a.update_batch_prepared(&updates);
        for &u in &updates {
            b.update(u);
        }
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.gamma, b.gamma);
    }

    #[test]
    fn tiny_batches_take_the_singles_path_identically() {
        let f = family(1000, 23);
        for len in 0..KERNEL_MIN_BATCH + 2 {
            let updates: Vec<u64> = (0..len as u64).map(|i| i * 7 % 1000).collect();
            let mut a = f.new_sketch();
            let mut b = f.new_sketch();
            a.update_batch(&updates);
            for &u in &updates {
                b.update(u);
            }
            assert_eq!(a.alpha, b.alpha, "len={len}");
            assert_eq!(a.gamma, b.gamma, "len={len}");
        }
    }

    #[test]
    fn cancel_duplicates_drops_even_runs() {
        let mut v = vec![5u64, 1, 5, 2, 1, 1, 9, 9, 9, 9];
        cancel_duplicates(&mut v);
        assert_eq!(v, vec![1, 2]); // 5×2 and 9×4 vanish; 1×3 keeps one
        let mut empty: Vec<u64> = Vec::new();
        cancel_duplicates(&mut empty);
        assert!(empty.is_empty());
        let mut single = vec![42u64];
        cancel_duplicates(&mut single);
        assert_eq!(single, vec![42]);
    }

    #[test]
    fn insert_delete_pairs_cancel_before_hashing() {
        // The gutter regime: a batch full of insert/delete pairs for the
        // same edges must leave the sketch exactly as if only the odd
        // survivors were applied.
        let f = family(5000, 29);
        let mut batched = f.new_sketch();
        let mut reference = f.new_sketch();
        let mut batch = Vec::new();
        for i in 0..40u64 {
            batch.push(i); // insert
            batch.push(i); // delete (same toggle over Z_2)
        }
        batch.push(4999);
        batched.update_batch(&batch);
        reference.update(4999);
        assert_eq!(batched.alpha, reference.alpha);
        assert_eq!(batched.gamma, reference.gamma);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Soundness: whatever the sketch returns is a genuinely nonzero
        /// coordinate of the toggled vector.
        #[test]
        fn sample_is_sound(
            seed in any::<u64>(),
            updates in proptest::collection::vec(0u64..5000, 0..120)
        ) {
            let f = CubeSketchFamily::<Xxh64Hasher>::for_vector(5000, seed);
            let mut s = f.new_sketch();
            let mut support = HashSet::new();
            for &u in &updates {
                s.update(u);
                if !support.remove(&u) {
                    support.insert(u);
                }
            }
            match s.query() {
                SampleResult::Index(i) => prop_assert!(support.contains(&i)),
                SampleResult::Zero => prop_assert!(support.is_empty()),
                SampleResult::Fail => prop_assert!(!support.is_empty()),
            }
        }

        /// Linearity: merging sketches equals sketching the XOR of vectors.
        #[test]
        fn linearity(
            seed in any::<u64>(),
            xs in proptest::collection::vec(0u64..2000, 0..60),
            ys in proptest::collection::vec(0u64..2000, 0..60)
        ) {
            let f = CubeSketchFamily::<Xxh64Hasher>::for_vector(2000, seed);
            let (mut a, mut b, mut c) = (f.new_sketch(), f.new_sketch(), f.new_sketch());
            for &x in &xs { a.update(x); c.update(x); }
            for &y in &ys { b.update(y); c.update(y); }
            a.merge(&b);
            let mut abytes = Vec::new();
            let mut cbytes = Vec::new();
            a.serialize_into(&mut abytes);
            c.serialize_into(&mut cbytes);
            prop_assert_eq!(abytes, cbytes);
        }

        /// Set-level linearity, the invariant the equivalence suite builds
        /// on: `merge(S(A), S(B))` is bit-identical to `S(A △ B)`, and a
        /// query on the merged sketch answers from the symmetric difference.
        #[test]
        fn merge_equals_symmetric_difference(
            seed in any::<u64>(),
            raw_a in proptest::collection::vec(0u64..4000, 0..80),
            raw_b in proptest::collection::vec(0u64..4000, 0..80)
        ) {
            let a_set: HashSet<u64> = raw_a.iter().copied().collect();
            let b_set: HashSet<u64> = raw_b.iter().copied().collect();
            let sym: HashSet<u64> = a_set.symmetric_difference(&b_set).copied().collect();

            let f = CubeSketchFamily::<Xxh64Hasher>::for_vector(4000, seed);
            let (mut sa, mut sb, mut sd) = (f.new_sketch(), f.new_sketch(), f.new_sketch());
            for &x in &a_set {
                sa.update(x);
            }
            for &y in &b_set {
                sb.update(y);
            }
            for &z in &sym {
                sd.update(z);
            }
            sa.merge(&sb);

            let (mut merged, mut direct) = (Vec::new(), Vec::new());
            sa.serialize_into(&mut merged);
            sd.serialize_into(&mut direct);
            prop_assert_eq!(merged, direct, "merge(S(A), S(B)) != S(A symdiff B)");

            match sa.query() {
                SampleResult::Index(i) => prop_assert!(sym.contains(&i)),
                SampleResult::Zero => prop_assert!(sym.is_empty()),
                SampleResult::Fail => prop_assert!(!sym.is_empty()),
            }
        }

        /// Second-toggle-deletes at the sketch level: toggling every
        /// coordinate of a set twice returns the sketch to the zero state.
        #[test]
        fn double_toggle_cancels(
            seed in any::<u64>(),
            updates in proptest::collection::vec(0u64..2500, 0..60)
        ) {
            let f = CubeSketchFamily::<Xxh64Hasher>::for_vector(2500, seed);
            let mut s = f.new_sketch();
            for &u in &updates {
                s.update(u);
            }
            for &u in &updates {
                s.update(u);
            }
            prop_assert!(s.is_empty(), "every coordinate toggled twice must cancel");
            prop_assert_eq!(s.query(), SampleResult::Zero);
        }

        /// The batch kernel (pre-pass + column-major application) is
        /// bit-identical to per-update singles on arbitrary batches,
        /// including dup-heavy ones exercising the cancellation pre-pass.
        #[test]
        fn batch_kernel_equals_singles(
            seed in any::<u64>(),
            updates in proptest::collection::vec(0u64..64, 0..200)
        ) {
            // Domain 64 over up to 200 updates: expect many duplicate runs.
            let f = CubeSketchFamily::<Xxh64Hasher>::for_vector(64, seed);
            let mut batched = f.new_sketch();
            let mut prepared = f.new_sketch();
            let mut singles = f.new_sketch();
            batched.update_batch(&updates);
            prepared.update_batch_prepared(&updates);
            for &u in &updates {
                singles.update(u);
            }
            let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
            batched.serialize_into(&mut a);
            prepared.serialize_into(&mut b);
            singles.serialize_into(&mut c);
            prop_assert_eq!(&a, &c, "update_batch != singles");
            prop_assert_eq!(&b, &c, "update_batch_prepared != singles");
        }

        /// The cancellation pre-pass preserves the Z_2 toggle multiset's
        /// parity: survivors are exactly the odd-multiplicity values.
        #[test]
        fn cancel_duplicates_keeps_odd_multiplicities(
            updates in proptest::collection::vec(0u64..100, 0..150)
        ) {
            let mut counts = std::collections::HashMap::new();
            for &u in &updates {
                *counts.entry(u).or_insert(0u32) += 1;
            }
            let mut expected: Vec<u64> = counts
                .iter()
                .filter(|(_, &c)| c % 2 == 1)
                .map(|(&v, _)| v)
                .collect();
            expected.sort_unstable();
            let mut got = updates.clone();
            cancel_duplicates(&mut got);
            prop_assert_eq!(got, expected);
        }

        /// Updates commute: any permutation of updates yields the same sketch.
        #[test]
        fn updates_commute(
            seed in any::<u64>(),
            mut updates in proptest::collection::vec(0u64..3000, 2..50)
        ) {
            let f = CubeSketchFamily::<Xxh64Hasher>::for_vector(3000, seed);
            let mut a = f.new_sketch();
            for &u in &updates { a.update(u); }
            updates.reverse();
            let mut b = f.new_sketch();
            for &u in &updates { b.update(u); }
            let mut ab = Vec::new();
            let mut bb = Vec::new();
            a.serialize_into(&mut ab);
            b.serialize_into(&mut bb);
            prop_assert_eq!(ab, bb);
        }
    }
}
