//! Mersenne-prime fields backing the standard ℓ0-sampler's checksums.
//!
//! The general-purpose sampler (paper Figure 3) certifies single-support
//! buckets with the polynomial fingerprint `c = Σ wᵢ·r^{idxᵢ} mod p`; the
//! prime must exceed `n²` for the fingerprint collision probability to be
//! `O(1/n)`-small over all buckets. This module provides two fields:
//!
//! - [`P61`]: `p = 2^61 − 1`, all arithmetic in one 64-bit word (products via
//!   `u128`). Valid while `n² < p`, i.e. `n ≲ 1.5·10^9`.
//! - [`P89`]: `p = 2^89 − 1`, arithmetic on 128-bit residues whose products
//!   need 178 bits — computed by 64-bit limb decomposition. Valid while
//!   `n² < p`, i.e. `n ≲ 2.5·10^13` (covers the paper's 10^12 table rows).
//!
//! The cost gap between these two paths is the paper's Figure 4 "catastrophic
//! slowdown at vector length 10^10".

/// A prime field with enough structure for the ℓ0 fingerprint: add, subtract,
/// multiply, and exponentiation by a vector index.
pub trait FingerprintField: Copy + Clone + Send + Sync + 'static {
    /// Residue representation.
    type Residue: Copy + Clone + Eq + std::fmt::Debug + Send + Sync;

    /// The zero residue.
    const ZERO: Self::Residue;

    /// Number of bytes a residue occupies in the size model (8 or 16).
    const WORD_BYTES: usize;

    /// The field modulus as u128 (for tests and range checks).
    fn modulus() -> u128;

    /// Canonical residue of a u64.
    fn from_u64(x: u64) -> Self::Residue;

    /// Canonical residue of an i64 (negative values wrap mod p).
    fn from_i64(x: i64) -> Self::Residue;

    /// Addition mod p.
    fn add(a: Self::Residue, b: Self::Residue) -> Self::Residue;

    /// Subtraction mod p.
    fn sub(a: Self::Residue, b: Self::Residue) -> Self::Residue;

    /// Multiplication mod p.
    fn mul(a: Self::Residue, b: Self::Residue) -> Self::Residue;

    /// `base^exp mod p` by square-and-multiply — the `O(log n)` multiply
    /// chain that dominates the standard sampler's update cost.
    fn pow(base: Self::Residue, mut exp: u64) -> Self::Residue {
        let mut result = Self::from_u64(1);
        let mut b = base;
        while exp > 0 {
            if exp & 1 == 1 {
                result = Self::mul(result, b);
            }
            b = Self::mul(b, b);
            exp >>= 1;
        }
        result
    }
}

/// The Mersenne prime 2^61 − 1 (64-bit path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P61;

/// 2^61 − 1.
pub const MOD_P61: u64 = (1u64 << 61) - 1;

#[inline]
fn reduce61(z: u128) -> u64 {
    let lo = (z as u64) & MOD_P61;
    let mid = ((z >> 61) as u64) & MOD_P61;
    let hi = (z >> 122) as u64;
    let mut r = lo + mid + hi;
    if r >= MOD_P61 {
        r -= MOD_P61;
    }
    if r >= MOD_P61 {
        r -= MOD_P61;
    }
    r
}

impl FingerprintField for P61 {
    type Residue = u64;
    const ZERO: u64 = 0;
    const WORD_BYTES: usize = 8;

    fn modulus() -> u128 {
        MOD_P61 as u128
    }

    #[inline]
    fn from_u64(x: u64) -> u64 {
        x % MOD_P61
    }

    #[inline]
    fn from_i64(x: i64) -> u64 {
        if x >= 0 {
            (x as u64) % MOD_P61
        } else {
            let m = ((-(x as i128)) as u64) % MOD_P61;
            if m == 0 {
                0
            } else {
                MOD_P61 - m
            }
        }
    }

    #[inline]
    fn add(a: u64, b: u64) -> u64 {
        let s = a + b; // both < 2^61, no overflow
        if s >= MOD_P61 {
            s - MOD_P61
        } else {
            s
        }
    }

    #[inline]
    fn sub(a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + MOD_P61 - b
        }
    }

    #[inline]
    fn mul(a: u64, b: u64) -> u64 {
        reduce61((a as u128) * (b as u128))
    }
}

/// The Mersenne prime 2^89 − 1 (128-bit path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P89;

/// 2^89 − 1.
pub const MOD_P89: u128 = (1u128 << 89) - 1;

/// Fold a value of up to 128 bits into `[0, 2^89 − 1)` using `2^89 ≡ 1`.
#[inline]
fn reduce89(z: u128) -> u128 {
    let mut r = (z & MOD_P89) + (z >> 89);
    if r >= MOD_P89 {
        r -= MOD_P89;
    }
    if r >= MOD_P89 {
        r -= MOD_P89;
    }
    r
}

/// Multiply two residues `< 2^89` modulo `2^89 − 1` via 64-bit limbs.
///
/// With `a = a1·2^64 + a0` and `b = b1·2^64 + b0` (`a1, b1 < 2^25`):
/// `a·b = a1·b1·2^128 + (a1·b0 + a0·b1)·2^64 + a0·b0`, and
/// `2^128 ≡ 2^39`, `m·2^64 ≡ (m >> 25) + (m & (2^25−1))·2^64 (mod p)`.
#[inline]
fn mulmod89(a: u128, b: u128) -> u128 {
    debug_assert!(a < MOD_P89 && b < MOD_P89);
    let (a1, a0) = ((a >> 64) as u64, a as u64);
    let (b1, b0) = ((b >> 64) as u64, b as u64);

    let p00 = (a0 as u128) * (b0 as u128); // < 2^128
    let pmid = (a0 as u128) * (b1 as u128) + (a1 as u128) * (b0 as u128); // < 2^91
    let p11 = (a1 as u128) * (b1 as u128); // < 2^50

    // mid · 2^64 mod p: split mid into (hi: >=2^25 part, lo: low 25 bits).
    let mid = reduce89(pmid); // < 2^89
    let mid_shifted = (mid >> 25) + ((mid & ((1u128 << 25) - 1)) << 64); // < 2^89 + 2^64

    let r = reduce89(p00) + reduce89(mid_shifted) + reduce89(p11 << 39);
    reduce89(r)
}

impl FingerprintField for P89 {
    type Residue = u128;
    const ZERO: u128 = 0;
    const WORD_BYTES: usize = 16;

    fn modulus() -> u128 {
        MOD_P89
    }

    #[inline]
    fn from_u64(x: u64) -> u128 {
        x as u128 // always < 2^89
    }

    #[inline]
    fn from_i64(x: i64) -> u128 {
        if x >= 0 {
            x as u128
        } else {
            MOD_P89 - ((-(x as i128)) as u128 % MOD_P89)
        }
    }

    #[inline]
    fn add(a: u128, b: u128) -> u128 {
        let s = a + b;
        if s >= MOD_P89 {
            s - MOD_P89
        } else {
            s
        }
    }

    #[inline]
    fn sub(a: u128, b: u128) -> u128 {
        if a >= b {
            a - b
        } else {
            a + MOD_P89 - b
        }
    }

    #[inline]
    fn mul(a: u128, b: u128) -> u128 {
        mulmod89(a, b)
    }
}

/// Division-free is *our* optimization; the paper's baseline performs
/// "modular exponentiation … dominated by division operations" on integers
/// wider than a machine word. This field models that implementation: same
/// prime `2^89 − 1`, but products are reduced by binary double-and-add
/// (the classic software path when `a·b` overflows the widest native
/// integer). Used only by the `ablations` benchmark to quantify how
/// conservative Figure 4's measured speedups are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P89Division;

impl FingerprintField for P89Division {
    type Residue = u128;
    const ZERO: u128 = 0;
    const WORD_BYTES: usize = 16;

    fn modulus() -> u128 {
        MOD_P89
    }

    #[inline]
    fn from_u64(x: u64) -> u128 {
        x as u128
    }

    #[inline]
    fn from_i64(x: i64) -> u128 {
        P89::from_i64(x)
    }

    #[inline]
    fn add(a: u128, b: u128) -> u128 {
        P89::add(a, b)
    }

    #[inline]
    fn sub(a: u128, b: u128) -> u128 {
        P89::sub(a, b)
    }

    /// Schoolbook double-and-add: one shift-compare-subtract per operand
    /// bit, the behaviour of big-integer modmul without a fused reduction.
    fn mul(a: u128, b: u128) -> u128 {
        let mut acc = 0u128;
        let mut base = a % MOD_P89;
        let mut e = b;
        while e > 0 {
            if e & 1 == 1 {
                acc = (acc + base) % MOD_P89;
            }
            base = (base << 1) % MOD_P89;
            e >>= 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn division_field_agrees_with_fast_field() {
        let a = (1u128 << 80) + 977;
        let b = (1u128 << 88) - 3;
        assert_eq!(P89Division::mul(a, b), P89::mul(a, b));
        assert_eq!(P89Division::pow(a, 1_000_003), P89::pow(a, 1_000_003));
        assert_eq!(P89Division::from_i64(-5), P89::from_i64(-5));
    }

    #[test]
    fn p61_basics() {
        assert_eq!(P61::add(MOD_P61 - 1, 2), 1);
        assert_eq!(P61::sub(0, 1), MOD_P61 - 1);
        assert_eq!(P61::mul(MOD_P61 - 1, MOD_P61 - 1), 1); // (-1)² = 1
        assert_eq!(P61::from_i64(-1), MOD_P61 - 1);
        assert_eq!(P61::from_i64(i64::MIN), {
            let m = (1u128 << 63) % (MOD_P61 as u128);
            (MOD_P61 as u128 - m) as u64
        });
    }

    #[test]
    fn p61_pow_fermat() {
        // Fermat: a^(p-1) ≡ 1 for a ≠ 0.
        for a in [2u64, 3, 12345, MOD_P61 - 2] {
            assert_eq!(P61::pow(a, MOD_P61 - 1), 1, "a={a}");
        }
        assert_eq!(P61::pow(7, 0), 1);
        assert_eq!(P61::pow(7, 1), 7);
        assert_eq!(P61::pow(7, 2), 49);
    }

    #[test]
    fn p89_mul_against_naive_small() {
        // Small operands where schoolbook u128 is exact.
        for &(a, b) in &[(3u128, 5u128), (1 << 60, 1 << 20), ((1 << 64) + 7, 12345)] {
            let naive = (a % MOD_P89) * (b % MOD_P89) % MOD_P89; // fits: a,b < 2^64ish
            assert_eq!(mulmod89(a % MOD_P89, b % MOD_P89), naive);
        }
    }

    #[test]
    fn p89_mul_identities() {
        let big = MOD_P89 - 1; // -1 mod p
        assert_eq!(P89::mul(big, big), 1);
        assert_eq!(P89::mul(big, 1), big);
        assert_eq!(P89::mul(0, big), 0);
    }

    #[test]
    fn p89_pow_matches_repeated_mul() {
        let base = (1u128 << 70) + 12345;
        let mut acc = 1u128;
        for e in 0..40u64 {
            assert_eq!(P89::pow(base, e), acc, "e={e}");
            acc = P89::mul(acc, base);
        }
    }

    #[test]
    fn p89_from_i64_negative() {
        assert_eq!(P89::add(P89::from_i64(-7), P89::from_u64(7)), 0);
    }

    #[test]
    fn pow_distributes_over_exponent_addition() {
        // r^(a+b) == r^a · r^b in both fields.
        let (a, b) = (123_456u64, 987_654u64);
        let r61 = P61::from_u64(0xdead_beef);
        assert_eq!(P61::pow(r61, a + b), P61::mul(P61::pow(r61, a), P61::pow(r61, b)));
        let r89 = (1u128 << 80) + 99;
        assert_eq!(P89::pow(r89, a + b), P89::mul(P89::pow(r89, a), P89::pow(r89, b)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive 256-bit-ish reference for mulmod89 using four-limb decomposition
    /// entirely through u128 additions of reduced partial products.
    fn mulmod89_reference(a: u128, b: u128) -> u128 {
        // Compute via repeated doubling (a · b by binary expansion of b):
        // slow but unquestionably correct.
        let mut acc = 0u128;
        let mut base = a % MOD_P89;
        let mut e = b;
        while e > 0 {
            if e & 1 == 1 {
                acc = (acc + base) % MOD_P89;
            }
            base = (base * 2) % MOD_P89;
            e >>= 1;
        }
        acc
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn p89_mul_matches_reference(a in any::<u128>(), b in any::<u128>()) {
            let (a, b) = (a % MOD_P89, b % MOD_P89);
            prop_assert_eq!(mulmod89(a, b), mulmod89_reference(a, b));
        }

        #[test]
        fn p61_mul_matches_u128(a in 0u64..MOD_P61, b in 0u64..MOD_P61) {
            let expect = ((a as u128) * (b as u128) % (MOD_P61 as u128)) as u64;
            prop_assert_eq!(P61::mul(a, b), expect);
        }

        #[test]
        fn p61_add_sub_inverse(a in 0u64..MOD_P61, b in 0u64..MOD_P61) {
            prop_assert_eq!(P61::sub(P61::add(a, b), b), a);
        }

        #[test]
        fn p89_add_sub_inverse(a in any::<u128>(), b in any::<u128>()) {
            let (a, b) = (a % MOD_P89, b % MOD_P89);
            prop_assert_eq!(P89::sub(P89::add(a, b), b), a);
        }
    }
}
