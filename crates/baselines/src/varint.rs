//! LEB128 varint + delta encoding for sorted neighbor lists.
//!
//! Aspen's space efficiency comes from difference-encoding sorted adjacency
//! data (its C-trees); on the paper's dense Kronecker graphs consecutive
//! neighbors differ by 1–2, so most deltas fit in one byte — which is how
//! the real system reaches ~4 bytes per (directed) edge and why the
//! [`crate::AspenLike`] stand-in reproduces Figure 11's memory behaviour.

/// Append `value` as LEB128 to `out`.
#[inline]
pub fn write_varint(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 value from `bytes` starting at `pos`; advances `pos`.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut value = 0u32;
    let mut shift = 0;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        value |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
        debug_assert!(shift < 35, "varint too long");
    }
}

/// Compress a strictly increasing list: first value absolute, then
/// `gap − 1` for each subsequent value (gaps are ≥ 1 in a strict list).
pub fn compress_sorted(values: &[u32], out: &mut Vec<u8>) {
    out.clear();
    let mut prev: Option<u32> = None;
    for &v in values {
        match prev {
            None => write_varint(v, out),
            Some(p) => {
                debug_assert!(v > p, "list must be strictly increasing");
                write_varint(v - p - 1, out);
            }
        }
        prev = Some(v);
    }
}

/// Decompress a list produced by [`compress_sorted`]; `count` values.
pub fn decompress_sorted(bytes: &[u8], count: usize, out: &mut Vec<u32>) {
    out.clear();
    let mut pos = 0;
    let mut prev = 0u32;
    for i in 0..count {
        let raw = read_varint(bytes, &mut pos);
        let v = if i == 0 { raw } else { prev + raw + 1 };
        out.push(v);
        prev = v;
    }
    debug_assert_eq!(pos, bytes.len(), "trailing bytes in compressed list");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX] {
            buf.clear();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_sizes() {
        let size = |v: u32| {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            buf.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u32::MAX), 5);
    }

    #[test]
    fn compress_round_trip() {
        let values = vec![3u32, 4, 5, 9, 1000, 1001, 1_000_000];
        let mut bytes = Vec::new();
        compress_sorted(&values, &mut bytes);
        let mut back = Vec::new();
        decompress_sorted(&bytes, values.len(), &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn dense_lists_compress_to_one_byte_per_entry() {
        // Consecutive neighbors (the dense-graph case): 1 byte each after
        // the first — the property Aspen's footprint depends on.
        let values: Vec<u32> = (500..2500).collect();
        let mut bytes = Vec::new();
        compress_sorted(&values, &mut bytes);
        assert!(bytes.len() <= values.len() + 2, "{} bytes", bytes.len());
    }

    #[test]
    fn empty_list() {
        let mut bytes = vec![1, 2, 3];
        compress_sorted(&[], &mut bytes);
        assert!(bytes.is_empty());
        let mut out = vec![9];
        decompress_sorted(&bytes, 0, &mut out);
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip_any_sorted_list(mut values in proptest::collection::vec(any::<u32>(), 0..200)) {
            values.sort_unstable();
            values.dedup();
            let mut bytes = Vec::new();
            compress_sorted(&values, &mut bytes);
            let mut back = Vec::new();
            decompress_sorted(&bytes, values.len(), &mut back);
            prop_assert_eq!(back, values);
        }
    }
}
