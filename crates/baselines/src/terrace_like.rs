//! `TerraceLike`: a skew-aware hierarchical graph container modeling Terrace.
//!
//! Terrace (Pandey et al., SIGMOD '21) stores each vertex's neighbors across
//! a hierarchy chosen by degree: a small in-place array inside the vertex
//! record, a packed-memory-array level, and B-trees for very high degree.
//! The properties the paper's comparison depends on, reproduced here:
//!
//! - a fixed **inline block per vertex** (fast for the low-degree vertices
//!   that dominate skewed sparse graphs, pure overhead on dense ones);
//! - a **sorted spill level with PMA-like slack** (capacity rounded up, so
//!   memory is ~2× the live entries — Terrace's footprint is several times
//!   Aspen's on dense graphs, Figure 11);
//! - **no batch deletes**: deletions are applied one edge at a time, which
//!   is why Terrace falls behind on deletion-heavy dynamic streams (§6.2,
//!   footnote 2 of the paper).

use crate::DynamicGraphSystem;
use std::collections::BTreeSet;

/// Inline neighbor slots per vertex (Terrace keeps ~13 in-place neighbors).
pub const INLINE_SLOTS: usize = 13;

/// Degree threshold beyond which neighbors move to the B-tree level.
pub const BTREE_THRESHOLD: usize = 1024;

/// Per-vertex hierarchical neighbor container.
#[derive(Debug, Clone)]
struct VertexBlock {
    /// In-place level: first `inline_len` slots are live, kept sorted.
    inline: [u32; INLINE_SLOTS],
    inline_len: u8,
    /// PMA-modeled middle level: sorted, with slack capacity.
    spill: Vec<u32>,
    /// High-degree level.
    tree: BTreeSet<u32>,
}

impl VertexBlock {
    fn new() -> Self {
        VertexBlock {
            inline: [0; INLINE_SLOTS],
            inline_len: 0,
            spill: Vec::new(),
            tree: BTreeSet::new(),
        }
    }

    fn degree(&self) -> usize {
        self.inline_len as usize + self.spill.len() + self.tree.len()
    }

    fn contains(&self, v: u32) -> bool {
        self.inline[..self.inline_len as usize].binary_search(&v).is_ok()
            || self.spill.binary_search(&v).is_ok()
            || self.tree.contains(&v)
    }

    /// Insert keeping levels consistent; returns true if newly added.
    fn insert(&mut self, v: u32) -> bool {
        if self.contains(v) {
            return false;
        }
        // Fill inline first; overflow cascades to spill, then to the tree.
        if (self.inline_len as usize) < INLINE_SLOTS
            && self.spill.is_empty()
            && self.tree.is_empty()
        {
            let len = self.inline_len as usize;
            let pos = self.inline[..len].binary_search(&v).unwrap_err();
            self.inline.copy_within(pos..len, pos + 1);
            self.inline[pos] = v;
            self.inline_len += 1;
            return true;
        }
        if self.spill.len() < BTREE_THRESHOLD && self.tree.is_empty() {
            let pos = self.spill.binary_search(&v).unwrap_err();
            self.spill.insert(pos, v);
            // PMA-like slack: keep capacity at roughly 2× length.
            if self.spill.capacity() < self.spill.len() * 2 {
                self.spill.reserve(self.spill.len());
            }
            return true;
        }
        // Promote the spill into the tree on first overflow.
        if !self.spill.is_empty() {
            for x in self.spill.drain(..) {
                self.tree.insert(x);
            }
            self.spill.shrink_to_fit();
        }
        self.tree.insert(v)
    }

    /// Remove; returns true if present.
    fn remove(&mut self, v: u32) -> bool {
        let len = self.inline_len as usize;
        if let Ok(pos) = self.inline[..len].binary_search(&v) {
            self.inline.copy_within(pos + 1..len, pos);
            self.inline_len -= 1;
            return true;
        }
        if let Ok(pos) = self.spill.binary_search(&v) {
            self.spill.remove(pos);
            return true;
        }
        self.tree.remove(&v)
    }

    fn neighbors_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.inline[..self.inline_len as usize]);
        out.extend_from_slice(&self.spill);
        out.extend(self.tree.iter().copied());
    }

    fn memory_bytes(&self) -> usize {
        // Inline block is always resident (vertex record), the spill costs
        // its capacity, and each B-tree element is charged node overhead
        // (std BTreeSet<u32>: ~2/3 occupancy of 11-slot leaves plus parent
        // structure — ≈ 10 bytes per element).
        std::mem::size_of::<[u32; INLINE_SLOTS]>()
            + 8 // lengths + level tags
            + self.spill.capacity() * 4
            + self.tree.len() * 10
    }
}

/// Hierarchical dynamic graph store (Terrace stand-in).
#[derive(Debug, Clone)]
pub struct TerraceLike {
    vertices: Vec<VertexBlock>,
    num_edges: u64,
}

impl TerraceLike {
    /// Empty graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        TerraceLike { vertices: vec![VertexBlock::new(); num_vertices], num_edges: 0 }
    }

    /// Insert one edge; returns true if newly added.
    pub fn insert_edge(&mut self, a: u32, b: u32) -> bool {
        if a == b || self.vertices[a as usize].contains(b) {
            return false;
        }
        self.vertices[a as usize].insert(b);
        self.vertices[b as usize].insert(a);
        self.num_edges += 1;
        true
    }

    /// Delete one edge; returns true if it was present.
    pub fn delete_edge(&mut self, a: u32, b: u32) -> bool {
        if a == b || !self.vertices[a as usize].contains(b) {
            return false;
        }
        self.vertices[a as usize].remove(b);
        self.vertices[b as usize].remove(a);
        self.num_edges -= 1;
        true
    }

    /// Neighbors of a vertex (sorted per level, concatenated).
    pub fn neighbors(&self, v: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.vertices[v as usize].neighbors_into(&mut out);
        out
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.vertices[v as usize].degree()
    }
}

impl DynamicGraphSystem for TerraceLike {
    fn name(&self) -> &'static str {
        "terrace-like"
    }

    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn batch_insert(&mut self, edges: &[(u32, u32)]) {
        for &(a, b) in edges {
            self.insert_edge(a, b);
        }
    }

    /// Terrace has no batch deletion; edges are removed one at a time
    /// (exactly how the paper drives it, §6.2 footnote 2).
    fn batch_delete(&mut self, edges: &[(u32, u32)]) {
        for &(a, b) in edges {
            self.delete_edge(a, b);
        }
    }

    fn connected_components(&self) -> Vec<u32> {
        crate::bfs_components(self.vertices.len(), |v, out| {
            self.vertices[v as usize].neighbors_into(out)
        })
    }

    fn memory_bytes(&self) -> usize {
        self.vertices.iter().map(|b| b.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AspenLike;
    use gz_graph::{connected_components_dsu, AdjacencyList};

    #[test]
    fn inline_level_handles_low_degree() {
        let mut g = TerraceLike::new(8);
        g.insert_edge(0, 3);
        g.insert_edge(0, 1);
        g.insert_edge(0, 5);
        assert_eq!(g.neighbors(0), vec![1, 3, 5]);
        assert_eq!(g.degree(0), 3);
        assert!(!g.insert_edge(0, 1), "duplicate");
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn overflow_to_spill_and_tree() {
        let n = 3000;
        let mut g = TerraceLike::new(n + 1);
        for i in 1..=n as u32 {
            g.insert_edge(0, i);
        }
        assert_eq!(g.degree(0), n);
        let nbrs = g.neighbors(0);
        let mut sorted = nbrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n);
        // Deletions must find entries at every level.
        assert!(g.delete_edge(0, 1));
        assert!(g.delete_edge(0, n as u32));
        assert_eq!(g.degree(0), n - 2);
    }

    #[test]
    fn components_match_oracle() {
        let edges = [(0u32, 1u32), (1, 2), (4, 5), (6, 7), (7, 4)];
        let mut g = TerraceLike::new(9);
        g.batch_insert(&edges);
        let oracle = AdjacencyList::from_edges(9, edges.iter().copied());
        assert_eq!(g.connected_components(), connected_components_dsu(&oracle));
    }

    #[test]
    fn interleaved_ops_match_oracle() {
        let mut g = TerraceLike::new(24);
        let mut oracle = AdjacencyList::new(24);
        for i in 0..400u32 {
            let a = (i * 5) % 24;
            let b = (i * 11 + 1) % 24;
            if a == b {
                continue;
            }
            if i % 4 == 3 {
                g.delete_edge(a, b);
                oracle.remove(gz_graph::Edge::new(a, b));
            } else {
                g.insert_edge(a, b);
                oracle.insert(gz_graph::Edge::new(a, b));
            }
        }
        assert_eq!(g.num_edges(), oracle.num_edges());
        assert_eq!(g.connected_components(), connected_components_dsu(&oracle));
    }

    #[test]
    fn terrace_uses_more_memory_than_aspen_on_dense_graphs() {
        // The Figure 11 ordering: Terrace ≫ Aspen on dense inputs.
        let n = 128u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if (a * 31 + b) % 2 == 0 {
                    edges.push((a, b));
                }
            }
        }
        let mut t = TerraceLike::new(n as usize);
        t.batch_insert(&edges);
        let mut a = AspenLike::new(n as usize);
        a.batch_insert(&edges);
        assert_eq!(t.num_edges(), a.num_edges());
        assert!(
            t.memory_bytes() > 2 * a.memory_bytes(),
            "terrace {} vs aspen {}",
            t.memory_bytes(),
            a.memory_bytes()
        );
    }
}
