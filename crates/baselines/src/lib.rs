//! Simulated comparator systems for the GraphZeppelin evaluation.
//!
//! The paper benchmarks against **Aspen** (Dhulipala et al.) and **Terrace**
//! (Pandey et al.), neither of which is available here; per the substitution
//! policy in DESIGN.md §3 we build stand-ins that reproduce the properties
//! the comparison actually depends on:
//!
//! - [`aspen_like`] — compressed sorted adjacency (delta + varint blocks,
//!   modeling Aspen's compressed purely-functional trees): ~4–6 bytes per
//!   edge on dense graphs, batch insert/delete by merge-and-recompress.
//! - [`terrace_like`] — skew-aware hierarchical container (inline neighbor
//!   slots → sorted spill with PMA-like slack → B-tree overflow, modeling
//!   Terrace): larger per-edge footprint, fast for low-degree vertices,
//!   **no batch deletes** (the paper notes Terrace lacks them).
//!
//! Both implement [`DynamicGraphSystem`], the interface the benchmark
//! harness drives all systems through (batch updates, CC queries, memory
//! accounting — Figures 11–13 and 16).

pub mod aspen_like;
pub mod terrace_like;
pub mod varint;

pub use aspen_like::AspenLike;
pub use terrace_like::TerraceLike;

/// A batch-dynamic graph system with connectivity queries and memory
/// accounting — the common denominator of the paper's comparator systems.
pub trait DynamicGraphSystem {
    /// Human-readable system name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of edges currently present.
    fn num_edges(&self) -> u64;

    /// Insert a batch of edges (duplicates and present edges ignored).
    fn batch_insert(&mut self, edges: &[(u32, u32)]);

    /// Delete a batch of edges (absent edges ignored). Systems without
    /// batch deletion (Terrace) fall back to one-at-a-time internally, as
    /// the paper does (§6.2 footnote 2).
    fn batch_delete(&mut self, edges: &[(u32, u32)]);

    /// Connected-component labels, normalized to minimum member ids.
    fn connected_components(&self) -> Vec<u32>;

    /// Estimated resident memory in bytes.
    fn memory_bytes(&self) -> usize;
}

/// BFS connected components over any neighbor function — shared by both
/// baselines (their CC query is a traversal, unlike GraphZeppelin's
/// sketch-space Boruvka).
pub(crate) fn bfs_components(
    num_vertices: usize,
    mut neighbors_of: impl FnMut(u32, &mut Vec<u32>),
) -> Vec<u32> {
    let mut label = vec![u32::MAX; num_vertices];
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs = Vec::new();
    for start in 0..num_vertices as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = start;
        queue.push_back(start);
        while let Some(x) = queue.pop_front() {
            neighbors_of(x, &mut nbrs);
            for &y in &nbrs {
                if label[y as usize] == u32::MAX {
                    label[y as usize] = start;
                    queue.push_back(y);
                }
            }
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_components_on_function_graph() {
        // 0-1-2 path, 3 isolated.
        let adj = [vec![1u32], vec![0, 2], vec![1], vec![]];
        let labels = bfs_components(4, |x, out| {
            out.clear();
            out.extend_from_slice(&adj[x as usize]);
        });
        assert_eq!(labels, vec![0, 0, 0, 3]);
    }
}
