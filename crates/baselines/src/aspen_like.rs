//! `AspenLike`: a compressed batch-dynamic graph store modeling Aspen.
//!
//! Aspen (Dhulipala, Blelloch, Shun — PLDI '19) stores adjacency in
//! compressed purely-functional trees ("C-trees") whose chunks are
//! difference-encoded; the paper reports it as the most space-efficient
//! dynamic comparator at roughly 4 bytes per edge (§3, §6.2). This stand-in
//! keeps the properties the evaluation depends on:
//!
//! - per-vertex **delta+varint compressed** sorted neighbor lists (~1 byte
//!   per neighbor on dense graphs, giving the same few-bytes-per-edge
//!   footprint);
//! - **batch** inserts and deletes by merge-and-recompress of the touched
//!   vertices (amortized like Aspen's batch updates);
//! - traversal-based CC queries whose cost grows with the edge count (which
//!   is why Figure 16a shows query time rising as the graph densifies).

use crate::varint::{compress_sorted, decompress_sorted};
use crate::DynamicGraphSystem;

/// One vertex's compressed neighbor list.
#[derive(Debug, Default, Clone)]
struct CompressedAdjacency {
    bytes: Vec<u8>,
    count: u32,
}

/// Compressed batch-dynamic graph store (Aspen stand-in).
#[derive(Debug, Clone)]
pub struct AspenLike {
    adj: Vec<CompressedAdjacency>,
    num_edges: u64,
}

impl AspenLike {
    /// Empty graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        AspenLike { adj: vec![CompressedAdjacency::default(); num_vertices], num_edges: 0 }
    }

    /// Decode a vertex's neighbors into `out`.
    fn neighbors_into(&self, v: u32, out: &mut Vec<u32>) {
        let a = &self.adj[v as usize];
        decompress_sorted(&a.bytes, a.count as usize, out);
    }

    /// Current neighbors of `v` (decompressed).
    pub fn neighbors(&self, v: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.neighbors_into(v, &mut out);
        out
    }

    /// Merge a sorted batch of additions/removals into one vertex's list.
    /// `additions` and `removals` must be sorted and deduplicated.
    fn merge_vertex(&mut self, v: u32, additions: &[u32], removals: &[u32]) -> (u64, u64) {
        let mut current = Vec::new();
        self.neighbors_into(v, &mut current);

        let mut merged = Vec::with_capacity(current.len() + additions.len());
        let mut inserted = 0u64;
        let mut removed = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        let mut k = 0usize; // removals cursor
        loop {
            let next_current = current.get(i).copied();
            let next_add = additions.get(j).copied();
            let candidate = match (next_current, next_add) {
                (None, None) => break,
                (Some(c), None) => {
                    i += 1;
                    Some((c, false))
                }
                (None, Some(a)) => {
                    j += 1;
                    Some((a, true))
                }
                (Some(c), Some(a)) => {
                    if c < a {
                        i += 1;
                        Some((c, false))
                    } else if a < c {
                        j += 1;
                        Some((a, true))
                    } else {
                        // Insert of an already-present edge: keep one copy.
                        i += 1;
                        j += 1;
                        Some((c, false))
                    }
                }
            };
            let (value, is_new) = candidate.expect("loop breaks on double None");
            // Apply removals (sorted merge against the removal list).
            while k < removals.len() && removals[k] < value {
                k += 1;
            }
            if k < removals.len() && removals[k] == value {
                if !is_new {
                    removed += 1;
                }
                continue; // dropped
            }
            if is_new {
                inserted += 1;
            }
            merged.push(value);
        }

        let a = &mut self.adj[v as usize];
        compress_sorted(&merged, &mut a.bytes);
        a.bytes.shrink_to_fit();
        a.count = merged.len() as u32;
        (inserted, removed)
    }

    /// Group a batch by endpoint and apply per-vertex merges. Each edge
    /// touches both endpoints; the edge count is derived from the lower
    /// endpoint's merge so it is counted once.
    fn apply_batch(&mut self, edges: &[(u32, u32)], is_delete: bool) {
        // Build per-vertex sorted operation lists.
        let mut by_vertex: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            by_vertex.entry(a).or_default().push(b);
            by_vertex.entry(b).or_default().push(a);
        }
        let mut keys: Vec<u32> = by_vertex.keys().copied().collect();
        keys.sort_unstable();
        // Each undirected edge is seen from both endpoints, so the summed
        // per-vertex counts are exactly twice the edge-count change.
        let mut total_ins = 0u64;
        let mut total_del = 0u64;
        for v in keys {
            let mut ops = by_vertex.remove(&v).expect("key present");
            ops.sort_unstable();
            ops.dedup();
            let (ins, del) = if is_delete {
                self.merge_vertex(v, &[], &ops)
            } else {
                self.merge_vertex(v, &ops, &[])
            };
            total_ins += ins;
            total_del += del;
        }
        debug_assert!(total_ins.is_multiple_of(2) && total_del.is_multiple_of(2));
        if is_delete {
            self.num_edges -= total_del / 2;
        } else {
            self.num_edges += total_ins / 2;
        }
    }
}

impl DynamicGraphSystem for AspenLike {
    fn name(&self) -> &'static str {
        "aspen-like"
    }

    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn batch_insert(&mut self, edges: &[(u32, u32)]) {
        self.apply_batch(edges, false);
    }

    fn batch_delete(&mut self, edges: &[(u32, u32)]) {
        self.apply_batch(edges, true);
    }

    fn connected_components(&self) -> Vec<u32> {
        crate::bfs_components(self.adj.len(), |v, out| self.neighbors_into(v, out))
    }

    fn memory_bytes(&self) -> usize {
        // Compressed payload plus per-vertex headers (pointer + count),
        // mirroring Aspen's tree-node overhead.
        self.adj.iter().map(|a| a.bytes.len()).sum::<usize>()
            + self.adj.len() * (std::mem::size_of::<Vec<u8>>() + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gz_graph::{connected_components_dsu, AdjacencyList};

    #[test]
    fn insert_and_query_neighbors() {
        let mut g = AspenLike::new(8);
        g.batch_insert(&[(0, 3), (0, 1), (3, 5)]);
        assert_eq!(g.neighbors(0), vec![1, 3]);
        assert_eq!(g.neighbors(3), vec![0, 5]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn duplicate_inserts_ignored() {
        let mut g = AspenLike::new(4);
        g.batch_insert(&[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        g.batch_insert(&[(0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn batch_delete_removes() {
        let mut g = AspenLike::new(6);
        g.batch_insert(&[(0, 1), (1, 2), (2, 3)]);
        g.batch_delete(&[(1, 2), (4, 5)]); // (4,5) absent: ignored
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), vec![0]);
        assert_eq!(g.neighbors(2), vec![3]);
    }

    #[test]
    fn components_match_oracle() {
        let edges = [(0u32, 1u32), (1, 2), (4, 5), (6, 7), (7, 4)];
        let mut g = AspenLike::new(9);
        g.batch_insert(&edges.iter().map(|&(a, b)| (a, b)).collect::<Vec<_>>());
        let oracle = AdjacencyList::from_edges(9, edges.iter().copied());
        assert_eq!(g.connected_components(), connected_components_dsu(&oracle));
    }

    #[test]
    fn dense_graph_bytes_per_edge_small() {
        // The Aspen property: a dense graph costs a few bytes per edge.
        let n = 256u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if (a + b) % 2 == 0 {
                    edges.push((a, b));
                }
            }
        }
        let mut g = AspenLike::new(n as usize);
        g.batch_insert(&edges);
        let bpe = g.memory_bytes() as f64 / g.num_edges() as f64;
        assert!(bpe < 8.0, "bytes/edge {bpe:.2}");
    }

    #[test]
    fn interleaved_inserts_deletes_consistent() {
        let mut g = AspenLike::new(32);
        let mut oracle = AdjacencyList::new(32);
        let ops: Vec<(u32, u32, bool)> = (0..300)
            .map(|i| {
                let a = (i * 7) % 32;
                let b = (i * 13 + 1) % 32;
                (a as u32, b as u32, i % 3 == 2)
            })
            .filter(|&(a, b, _)| a != b)
            .collect();
        for (a, b, del) in ops {
            let e = gz_graph::Edge::new(a, b);
            if del {
                g.batch_delete(&[(a, b)]);
                oracle.remove(e);
            } else {
                g.batch_insert(&[(a, b)]);
                oracle.insert(e);
            }
        }
        assert_eq!(g.num_edges(), oracle.num_edges());
        assert_eq!(g.connected_components(), connected_components_dsu(&oracle));
    }
}
