//! From-scratch implementation of the xxHash64 algorithm.
//!
//! GraphZeppelin computes all bucket-membership and checksum hashes with
//! xxHash (paper §5.1); this module reimplements the 64-bit variant from the
//! published specification. It is validated against the reference
//! implementation's published test vectors in the unit tests below.
//!
//! Only the one-shot API is provided: sketch updates always hash fixed-width
//! keys, so the streaming variant would be dead weight on the hot path.

use crate::Hasher64;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2)).rotate_left(31).wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[inline(always)]
fn read_u64(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().unwrap())
}

#[inline(always)]
fn read_u32(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(data[i..i + 4].try_into().unwrap())
}

/// Hash an arbitrary byte slice with xxHash64.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut i = 0usize;

    let mut h: u64 = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);

        while i + 32 <= len {
            v1 = round(v1, read_u64(data, i));
            v2 = round(v2, read_u64(data, i + 8));
            v3 = round(v3, read_u64(data, i + 16));
            v4 = round(v4, read_u64(data, i + 24));
            i += 32;
        }

        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
        h
    } else {
        seed.wrapping_add(PRIME64_5)
    };

    h = h.wrapping_add(len as u64);

    while i + 8 <= len {
        h ^= round(0, read_u64(data, i));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        i += 8;
    }
    if i + 4 <= len {
        h ^= (read_u32(data, i) as u64).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        i += 4;
    }
    while i < len {
        h ^= (data[i] as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        i += 1;
    }

    avalanche(h)
}

/// Hash a single `u64` key with xxHash64, specialized for the sketch hot path.
///
/// Equivalent to `xxh64(&key.to_le_bytes(), seed)` but with the length-8 code
/// path fully unrolled: no loops, no bounds checks.
#[inline]
pub fn xxh64_u64(key: u64, seed: u64) -> u64 {
    let mut h = seed.wrapping_add(PRIME64_5).wrapping_add(8);
    h ^= round(0, key);
    h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
    avalanche(h)
}

/// A seeded xxHash64 function over `u64` keys (the sketch hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xxh64Hasher {
    seed: u64,
}

impl Xxh64Hasher {
    /// The seed this hasher was constructed with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Hasher64 for Xxh64Hasher {
    #[inline]
    fn with_seed(seed: u64) -> Self {
        Xxh64Hasher { seed }
    }

    #[inline(always)]
    fn hash64(&self, key: u64) -> u64 {
        xxh64_u64(key, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published test vectors for xxHash64 (reference implementation).
    #[test]
    fn reference_vectors_seed0() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"The quick brown fox jumps over the lazy dog", 0), 0x0B24_2D36_1FDA_71BC);
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
        assert_ne!(xxh64_u64(42, 0), xxh64_u64(42, 1));
    }

    #[test]
    fn u64_fast_path_matches_general_path() {
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            for seed in [0u64, 1, 7, u64::MAX] {
                assert_eq!(
                    xxh64_u64(key, seed),
                    xxh64(&key.to_le_bytes(), seed),
                    "key={key} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn covers_every_tail_length() {
        // Exercise the 32-byte stripe loop plus every remainder branch
        // (8-byte, 4-byte, single-byte) by hashing all prefixes of a buffer.
        let data: Vec<u8> = (0..100u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(xxh64(&data[..len], 0)), "collision at prefix length {len}");
        }
    }

    #[test]
    fn avalanche_flips_many_bits() {
        // Single-bit input changes should flip roughly half the output bits.
        let base = xxh64_u64(0, 0);
        let mut total = 0u32;
        for bit in 0..64 {
            total += (base ^ xxh64_u64(1 << bit, 0)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "avg flipped bits {avg}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn deterministic(key in any::<u64>(), seed in any::<u64>()) {
            prop_assert_eq!(xxh64_u64(key, seed), xxh64_u64(key, seed));
        }

        #[test]
        fn fast_path_agrees(key in any::<u64>(), seed in any::<u64>()) {
            prop_assert_eq!(xxh64_u64(key, seed), xxh64(&key.to_le_bytes(), seed));
        }

        #[test]
        fn bytes_prefixes_distinct(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Not a correctness requirement of hashing in general, but for
            // 64-bit outputs on tiny inputs collisions would indicate a
            // broken tail-handling branch.
            let a = xxh64(&data, 0);
            let mut data2 = data.clone();
            data2.push(0);
            prop_assert_ne!(a, xxh64(&data2, 0));
        }
    }
}
