//! SplitMix64: seed derivation for sketch families.
//!
//! A node sketch owns `O(log V)` CubeSketches, each needing independent column
//! hash functions; GraphZeppelin derives all of them from one master seed so
//! that a whole system is reproducible from a single `u64`. SplitMix64 is the
//! standard generator for this purpose: it is a bijection on `u64` with good
//! equidistribution, so derived seeds never collide for distinct indices.

/// A tiny, fast, splittable PRNG used exclusively for deriving seeds.
///
/// This is *not* used for workload randomness (the generators in `gz-stream`
/// use `rand`); it exists so sketches can deterministically fan one master
/// seed out into per-round, per-column seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator seeded with `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit value, advancing the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Derive the `i`-th seed of the stream started at `seed` without
    /// iterating: `derive(seed, i) == SplitMix64::new(seed)` advanced `i+1`
    /// times. Used where sketches index directly into a seed family.
    #[inline]
    pub fn derive(seed: u64, i: u64) -> u64 {
        mix(seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Vectors produced by the canonical SplitMix64 reference (Vigna) with
        // seed 1234567.
        let mut g = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
        // Spot-check structural properties rather than constants: the
        // generator must be a pure function of (seed, index).
        let again: Vec<u64> = {
            let mut g = SplitMix64::new(1234567);
            (0..4).map(|_| g.next_u64()).collect()
        };
        assert_eq!(got, again);
        assert_eq!(got.len(), 4);
        assert!(got.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn derive_matches_iteration() {
        let seed = 0xFEED_FACE_CAFE_BEEF;
        let mut g = SplitMix64::new(seed);
        for i in 0..100 {
            assert_eq!(g.next_u64(), SplitMix64::derive(seed, i), "i={i}");
        }
    }

    #[test]
    fn derived_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(SplitMix64::derive(42, i)));
        }
    }

    #[test]
    fn different_master_seeds_diverge() {
        assert_ne!(SplitMix64::derive(1, 0), SplitMix64::derive(2, 0));
    }
}
