//! A genuine 2-universal (pairwise independent) hash family.
//!
//! The ℓ0-sampling analysis (paper Lemma 1–3, citing Cormode–Firmani) assumes
//! hash functions drawn from a 2-wise independent family. The production
//! system uses xxHash for speed; this module provides the family the proofs
//! actually need, `h_{a,b}(x) = (a·x + b) mod p` over the Mersenne prime
//! `p = 2^61 − 1`, so the repository can (a) run sketches in "theory mode" and
//! (b) benchmark the cost difference (an ablation in `gz-bench`).
//!
//! Pairwise independence holds on the domain `[p]`; callers hashing full
//! 64-bit keys first reduce them mod `p`, which is the standard compromise
//! (GraphZeppelin's characteristic-vector indices are < C(V,2) < 2^61 for all
//! V < 2^31, so graph workloads stay inside the exact domain).

use crate::splitmix::SplitMix64;
use crate::Hasher64;

/// The Mersenne prime 2^61 − 1.
pub const MERSENNE_P61: u64 = (1u64 << 61) - 1;

/// Reduce a 128-bit product modulo 2^61 − 1 using the Mersenne identity
/// `2^61 ≡ 1 (mod p)`: fold the high bits onto the low bits twice.
#[inline]
pub fn mod_p61(z: u128) -> u64 {
    let lo = (z as u64) & MERSENNE_P61;
    let mid = ((z >> 61) as u64) & MERSENNE_P61;
    let hi = (z >> 122) as u64;
    let mut r = lo + mid + hi;
    // r < 3p after one fold; at most two conditional subtractions needed.
    if r >= MERSENNE_P61 {
        r -= MERSENNE_P61;
    }
    if r >= MERSENNE_P61 {
        r -= MERSENNE_P61;
    }
    r
}

/// Multiply two residues mod 2^61 − 1.
#[inline]
pub fn mulmod_p61(a: u64, b: u64) -> u64 {
    mod_p61((a as u128) * (b as u128))
}

/// A hash function drawn from the 2-universal family
/// `h_{a,b}(x) = ((a·x + b) mod p)` with `p = 2^61 − 1`, `a ∈ [1, p)`,
/// `b ∈ [0, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
}

impl PairwiseHash {
    /// Draw `(a, b)` deterministically from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut g = SplitMix64::new(seed);
        // Rejection-sample into the field to keep the distribution uniform.
        let a = loop {
            let v = g.next_u64() & MERSENNE_P61;
            if v != 0 && v < MERSENNE_P61 {
                break v;
            }
        };
        let b = loop {
            let v = g.next_u64() & MERSENNE_P61;
            if v < MERSENNE_P61 {
                break v;
            }
        };
        PairwiseHash { a, b }
    }

    /// Evaluate the hash on a key already reduced into `[0, p)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        mod_p61((self.a as u128) * (x as u128) + self.b as u128)
    }

    /// The multiplier `a`.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The offset `b`.
    pub fn b(&self) -> u64 {
        self.b
    }
}

impl Hasher64 for PairwiseHash {
    fn with_seed(seed: u64) -> Self {
        PairwiseHash::from_seed(seed)
    }

    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        // Reduce the key into the field, evaluate, then spread the 61-bit
        // result across 64 bits so callers can consume high or low bits.
        let x = key % MERSENNE_P61;
        let h = self.eval(x);
        // A fixed odd multiplier is a bijection on u64; it does not affect
        // pairwise independence of the underlying family, only bit placement.
        h.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_p61_agrees_with_naive() {
        let cases: [u128; 7] = [
            0,
            1,
            MERSENNE_P61 as u128,
            (MERSENNE_P61 as u128) + 1,
            u64::MAX as u128,
            u128::MAX,
            (MERSENNE_P61 as u128) * (MERSENNE_P61 as u128),
        ];
        for z in cases {
            assert_eq!(mod_p61(z) as u128, z % (MERSENNE_P61 as u128), "z={z}");
        }
    }

    #[test]
    fn mulmod_small_values() {
        assert_eq!(mulmod_p61(3, 5), 15);
        assert_eq!(mulmod_p61(MERSENNE_P61 - 1, 2), MERSENNE_P61 - 2);
        assert_eq!(mulmod_p61(MERSENNE_P61 - 1, MERSENNE_P61 - 1), 1);
    }

    #[test]
    fn eval_is_affine() {
        let h = PairwiseHash::from_seed(99);
        // h(x+1) - h(x) == a (mod p) for all x: the function is affine.
        let d1 = (h.eval(11) + MERSENNE_P61 - h.eval(10)) % MERSENNE_P61;
        let d2 = (h.eval(1001) + MERSENNE_P61 - h.eval(1000)) % MERSENNE_P61;
        assert_eq!(d1, d2);
        assert_eq!(d1, h.a());
    }

    #[test]
    fn distinct_seeds_distinct_functions() {
        let h1 = PairwiseHash::from_seed(1);
        let h2 = PairwiseHash::from_seed(2);
        assert!(h1 != h2);
    }

    /// Empirical pairwise-independence check: over many function draws, the
    /// joint distribution of (h(x) mod 2, h(y) mod 2) for fixed x≠y should be
    /// close to uniform on 4 outcomes.
    #[test]
    fn empirical_pairwise_uniformity() {
        let (x, y) = (12345u64, 67890u64);
        let mut counts = [0u32; 4];
        let trials = 4000;
        for seed in 0..trials {
            let h = PairwiseHash::from_seed(seed);
            let bx = (h.eval(x) & 1) as usize;
            let by = (h.eval(y) & 1) as usize;
            counts[bx * 2 + by] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!((0.2..0.3).contains(&frac), "joint outcome {i} frequency {frac} not ~0.25");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn reduction_correct(z in any::<u128>()) {
            prop_assert_eq!(mod_p61(z) as u128, z % (MERSENNE_P61 as u128));
        }

        #[test]
        fn eval_in_field(seed in any::<u64>(), x in 0u64..MERSENNE_P61) {
            let h = PairwiseHash::from_seed(seed);
            prop_assert!(h.eval(x) < MERSENNE_P61);
        }

        #[test]
        fn mulmod_commutes(a in 0u64..MERSENNE_P61, b in 0u64..MERSENNE_P61) {
            prop_assert_eq!(mulmod_p61(a, b), mulmod_p61(b, a));
        }
    }
}
