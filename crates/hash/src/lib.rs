//! Hashing substrate for the GraphZeppelin reproduction.
//!
//! The paper computes all sketch hashes with xxHash ([19] in the paper); this
//! crate provides a from-scratch, spec-conformant xxHash64 implementation plus
//! the theoretically clean alternative the analysis assumes: a 2-universal
//! (pairwise independent) multiply-mod-Mersenne family. Sketches are generic
//! over [`Hasher64`] so both can be used and compared (an ablation in the
//! benchmark suite).
//!
//! Everything here is deterministic given a seed, which is what makes
//! sketch linearity usable: two sketches can only be added if they were built
//! from the same hash functions, i.e. the same seeds.

pub mod pairwise;
pub mod splitmix;
pub mod xxh64;

pub use pairwise::PairwiseHash;
pub use splitmix::SplitMix64;
pub use xxh64::{xxh64, Xxh64Hasher};

/// A seeded 64-bit hash function over 64-bit keys.
///
/// Implementations must be pure functions of `(self, key)` so that sketches
/// built from equal seeds are mergeable.
pub trait Hasher64: Clone + Send + Sync {
    /// Construct the hash function identified by `seed`.
    fn with_seed(seed: u64) -> Self;

    /// Hash a 64-bit key to a 64-bit value.
    fn hash64(&self, key: u64) -> u64;

    /// Hash a 64-bit key to a 32-bit value (used for sketch checksums).
    #[inline]
    fn hash32(&self, key: u64) -> u32 {
        // Fold the halves so that both carry entropy.
        let h = self.hash64(key);
        (h ^ (h >> 32)) as u32
    }
}

/// Map a 64-bit hash to the range `[0, n)` without division bias, using the
/// widening-multiply trick (Lemire). Uniform when `h` is uniform on `u64`.
#[inline]
pub fn hash_to_range(h: u64, n: u64) -> u64 {
    debug_assert!(n > 0, "range must be non-empty");
    (((h as u128) * (n as u128)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_to_range_bounds() {
        for n in [1u64, 2, 3, 7, 1 << 20, u64::MAX] {
            for h in [0u64, 1, u64::MAX, u64::MAX / 2, 0xdeadbeef] {
                assert!(hash_to_range(h, n) < n, "n={n} h={h}");
            }
        }
    }

    #[test]
    fn hash_to_range_is_monotone_in_h() {
        // The multiply-shift mapping preserves order of h; sanity-check, since
        // the sketch geometry relies on it spreading values across the range.
        let n = 1000;
        assert_eq!(hash_to_range(0, n), 0);
        assert_eq!(hash_to_range(u64::MAX, n), n - 1);
    }

    #[test]
    fn hash32_differs_from_low_bits() {
        let h = Xxh64Hasher::with_seed(7);
        // hash32 folds the word; it should not equal the plain truncation for
        // typical inputs (they agree only when the high word is zero).
        let k = 123456789u64;
        let full = h.hash64(k);
        if full >> 32 != 0 {
            assert_ne!(h.hash32(k), full as u32);
        }
    }
}

#[cfg(test)]
mod determinism {
    //! Sketch mergeability rests on hash determinism: two sketches built from
    //! equal seeds must see identical per-column hash streams, however and
    //! whenever the hash functions were constructed.

    use super::*;

    /// Reconstructs the per-column seed derivation the sketch layer uses:
    /// column `c` draws the seed `derive(seed, c)` from the master seed, and
    /// a single 64-bit hash per column serves both the membership depth
    /// (trailing zeros) and the checksum (high 32 bits).
    fn column_stream<H: Hasher64>(seed: u64, col: u64, keys: &[u64]) -> Vec<u64> {
        let h = H::with_seed(SplitMix64::derive(seed, col));
        keys.iter().map(|&k| h.hash64(k)).collect()
    }

    fn assert_streams_deterministic<H: Hasher64>() {
        let keys: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        for seed in [0u64, 1, 42, u64::MAX] {
            for col in [0u64, 1, 7] {
                let a = column_stream::<H>(seed, col, &keys);
                let b = column_stream::<H>(seed, col, &keys);
                assert_eq!(a, b, "column stream must be a pure function of (seed, col)");
            }
            // Adjacent columns draw distinct derived seeds.
            assert_ne!(
                column_stream::<H>(seed, 0, &keys),
                column_stream::<H>(seed, 1, &keys),
                "columns must not alias"
            );
        }
        // Distinct master seeds give distinct streams (no seed aliasing).
        assert_ne!(column_stream::<H>(1, 0, &keys), column_stream::<H>(2, 0, &keys));
    }

    #[test]
    fn xxh64_streams_deterministic() {
        assert_streams_deterministic::<Xxh64Hasher>();
    }

    #[test]
    fn pairwise_streams_deterministic() {
        assert_streams_deterministic::<PairwiseHash>();
    }

    #[test]
    fn splitmix_derive_stable_and_spread() {
        // The derivation itself is deterministic and collision-free over the
        // (seed, index) pairs a sketch family draws.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for i in 0..64u64 {
                let a = SplitMix64::derive(seed, i);
                assert_eq!(a, SplitMix64::derive(seed, i));
                seen.insert(a);
            }
        }
        assert_eq!(seen.len(), 8 * 64, "derived seeds must not collide");
    }

    #[test]
    fn xxh64_golden_values_pin_cross_run_stability() {
        // Spec vectors for xxHash64: if these move, every serialized sketch
        // in every checkpoint silently stops merging with fresh ones.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }
}
