//! Union–find with rollback (union by rank, **no** path compression).
//!
//! Used by the test suites to explore alternative Boruvka merge orders: a
//! round's merges can be applied, inspected, and undone without copying the
//! whole structure. Not used on the ingestion hot path.

/// A single undo record: which element's parent pointer changed, and whether
/// the winning root's rank was bumped.
#[derive(Debug, Clone, Copy)]
struct UndoRecord {
    child: u32,
    rank_bumped: bool,
    root: u32,
}

/// Union–find supporting `O(log n)` find and constant-time rollback of the
/// most recent unions.
#[derive(Debug, Clone)]
pub struct RollbackDsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    log: Vec<UndoRecord>,
    components: usize,
}

impl RollbackDsu {
    /// Create a rollback DSU with `n` singleton components.
    pub fn new(n: usize) -> Self {
        RollbackDsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            log: Vec::new(),
            components: n,
        }
    }

    /// Number of current components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Find the representative of `x` (no compression, so rollback stays
    /// trivial).
    pub fn find(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the components of `a` and `b`, recording an undo entry.
    /// Returns `true` if a merge happened.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        let rank_bumped = self.rank[hi as usize] == self.rank[lo as usize];
        self.parent[lo as usize] = hi;
        if rank_bumped {
            self.rank[hi as usize] += 1;
        }
        self.log.push(UndoRecord { child: lo, rank_bumped, root: hi });
        self.components -= 1;
        true
    }

    /// A checkpoint token: the number of successful unions so far.
    pub fn checkpoint(&self) -> usize {
        self.log.len()
    }

    /// Undo all unions performed after `checkpoint`.
    pub fn rollback_to(&mut self, checkpoint: usize) {
        while self.log.len() > checkpoint {
            let rec = self.log.pop().expect("log nonempty");
            self.parent[rec.child as usize] = rec.child;
            if rec.rank_bumped {
                self.rank[rec.root as usize] -= 1;
            }
            self.components += 1;
        }
    }

    /// True if `a` and `b` share a component.
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_rollback_round_trip() {
        let mut d = RollbackDsu::new(8);
        let cp0 = d.checkpoint();
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        let cp1 = d.checkpoint();
        assert!(d.union(1, 2));
        assert!(d.connected(0, 3));
        assert_eq!(d.component_count(), 5);

        d.rollback_to(cp1);
        assert!(!d.connected(0, 3));
        assert!(d.connected(0, 1));
        assert_eq!(d.component_count(), 6);

        d.rollback_to(cp0);
        assert!(!d.connected(0, 1));
        assert_eq!(d.component_count(), 8);
    }

    #[test]
    fn rollback_restores_ranks() {
        let mut d = RollbackDsu::new(4);
        let cp = d.checkpoint();
        d.union(0, 1); // rank of winner bumps to 1
        d.union(2, 3);
        d.union(0, 2);
        d.rollback_to(cp);
        // After full rollback the structure must behave exactly like new:
        // re-run the same unions and get the same partition.
        d.union(0, 1);
        d.union(2, 3);
        assert!(d.connected(0, 1));
        assert!(d.connected(2, 3));
        assert!(!d.connected(0, 2));
    }

    #[test]
    fn failed_union_not_logged() {
        let mut d = RollbackDsu::new(3);
        d.union(0, 1);
        let cp = d.checkpoint();
        assert!(!d.union(1, 0));
        assert_eq!(d.checkpoint(), cp, "no-op union must not append to log");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Partition labels normalized to the minimum member of each component,
    /// so two DSUs agree iff their labelings are equal.
    fn labels(d: &RollbackDsu, n: usize) -> Vec<u32> {
        let mut min_of_root = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = d.find(x) as usize;
            min_of_root[r] = min_of_root[r].min(x);
        }
        (0..n as u32).map(|x| min_of_root[d.find(x) as usize]).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip: apply a prefix, checkpoint, apply a suffix, roll back.
        /// The partition, component count, and checkpoint token must all
        /// match a DSU that only ever saw the prefix — and replaying the
        /// suffix afterwards must land in the same state as never having
        /// rolled back.
        #[test]
        fn union_rollback_round_trip(
            n in 1usize..40,
            prefix in proptest::collection::vec((0u32..40, 0u32..40), 0..40),
            suffix in proptest::collection::vec((0u32..40, 0u32..40), 0..40)
        ) {
            let clamp =
                |ops: &[(u32, u32)]| -> Vec<(u32, u32)> {
                    ops.iter().map(|&(a, b)| (a % n as u32, b % n as u32)).collect()
                };
            let (prefix, suffix) = (clamp(&prefix), clamp(&suffix));

            let mut d = RollbackDsu::new(n);
            for &(a, b) in &prefix {
                d.union(a, b);
            }
            let cp = d.checkpoint();
            let at_prefix = labels(&d, n);
            let count_at_prefix = d.component_count();

            for &(a, b) in &suffix {
                d.union(a, b);
            }
            let at_full = labels(&d, n);

            d.rollback_to(cp);
            prop_assert_eq!(labels(&d, n), at_prefix, "rollback must restore the partition");
            prop_assert_eq!(d.component_count(), count_at_prefix);
            prop_assert_eq!(d.checkpoint(), cp, "rollback must restore the log position");

            // Replaying the suffix reaches the same state again.
            for &(a, b) in &suffix {
                d.union(a, b);
            }
            prop_assert_eq!(labels(&d, n), at_full, "replay after rollback must agree");
        }

        /// Nested checkpoints unwind like a stack.
        #[test]
        fn nested_rollbacks_unwind(
            n in 2usize..30,
            ops in proptest::collection::vec((0u32..30, 0u32..30), 1..60)
        ) {
            let ops: Vec<(u32, u32)> =
                ops.iter().map(|&(a, b)| (a % n as u32, b % n as u32)).collect();
            let mut d = RollbackDsu::new(n);
            let mut snapshots = vec![(d.checkpoint(), labels(&d, n))];
            for &(a, b) in &ops {
                d.union(a, b);
                snapshots.push((d.checkpoint(), labels(&d, n)));
            }
            // Unwind through every snapshot in reverse order.
            for (cp, expect) in snapshots.into_iter().rev() {
                d.rollback_to(cp);
                prop_assert_eq!(labels(&d, n), expect);
            }
            prop_assert_eq!(d.component_count(), n, "fully unwound DSU is all singletons");
        }
    }
}
