//! Union–find with rollback (union by rank, **no** path compression).
//!
//! Used by the test suites to explore alternative Boruvka merge orders: a
//! round's merges can be applied, inspected, and undone without copying the
//! whole structure. Not used on the ingestion hot path.

/// A single undo record: which element's parent pointer changed, and whether
/// the winning root's rank was bumped.
#[derive(Debug, Clone, Copy)]
struct UndoRecord {
    child: u32,
    rank_bumped: bool,
    root: u32,
}

/// Union–find supporting `O(log n)` find and constant-time rollback of the
/// most recent unions.
#[derive(Debug, Clone)]
pub struct RollbackDsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    log: Vec<UndoRecord>,
    components: usize,
}

impl RollbackDsu {
    /// Create a rollback DSU with `n` singleton components.
    pub fn new(n: usize) -> Self {
        RollbackDsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            log: Vec::new(),
            components: n,
        }
    }

    /// Number of current components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Find the representative of `x` (no compression, so rollback stays
    /// trivial).
    pub fn find(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the components of `a` and `b`, recording an undo entry.
    /// Returns `true` if a merge happened.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let rank_bumped = self.rank[hi as usize] == self.rank[lo as usize];
        self.parent[lo as usize] = hi;
        if rank_bumped {
            self.rank[hi as usize] += 1;
        }
        self.log.push(UndoRecord { child: lo, rank_bumped, root: hi });
        self.components -= 1;
        true
    }

    /// A checkpoint token: the number of successful unions so far.
    pub fn checkpoint(&self) -> usize {
        self.log.len()
    }

    /// Undo all unions performed after `checkpoint`.
    pub fn rollback_to(&mut self, checkpoint: usize) {
        while self.log.len() > checkpoint {
            let rec = self.log.pop().expect("log nonempty");
            self.parent[rec.child as usize] = rec.child;
            if rec.rank_bumped {
                self.rank[rec.root as usize] -= 1;
            }
            self.components += 1;
        }
    }

    /// True if `a` and `b` share a component.
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_rollback_round_trip() {
        let mut d = RollbackDsu::new(8);
        let cp0 = d.checkpoint();
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        let cp1 = d.checkpoint();
        assert!(d.union(1, 2));
        assert!(d.connected(0, 3));
        assert_eq!(d.component_count(), 5);

        d.rollback_to(cp1);
        assert!(!d.connected(0, 3));
        assert!(d.connected(0, 1));
        assert_eq!(d.component_count(), 6);

        d.rollback_to(cp0);
        assert!(!d.connected(0, 1));
        assert_eq!(d.component_count(), 8);
    }

    #[test]
    fn rollback_restores_ranks() {
        let mut d = RollbackDsu::new(4);
        let cp = d.checkpoint();
        d.union(0, 1); // rank of winner bumps to 1
        d.union(2, 3);
        d.union(0, 2);
        d.rollback_to(cp);
        // After full rollback the structure must behave exactly like new:
        // re-run the same unions and get the same partition.
        d.union(0, 1);
        d.union(2, 3);
        assert!(d.connected(0, 1));
        assert!(d.connected(2, 3));
        assert!(!d.connected(0, 2));
    }

    #[test]
    fn failed_union_not_logged() {
        let mut d = RollbackDsu::new(3);
        d.union(0, 1);
        let cp = d.checkpoint();
        assert!(!d.union(1, 0));
        assert_eq!(d.checkpoint(), cp, "no-op union must not append to log");
    }
}
