//! Disjoint-set union (union–find) substrate.
//!
//! Boruvka's algorithm — the query phase of GraphZeppelin (paper §4.2, Fig. 9)
//! — tracks which vertices have merged into which supernode with a DSU. The
//! paper's I/O analysis charges `log*(V)` per merge (Lemma 5); this module
//! provides that structure plus a rollback variant used by tests to explore
//! merge orders.

pub mod rollback;

pub use rollback::RollbackDsu;

/// Union–find over `n` elements with union by rank and path compression.
///
/// Amortized cost per operation is `O(α(n))`; the paper's external-memory
/// accounting treats each merge as `log*(V)` I/Os, which this structure also
/// satisfies.
///
/// ```
/// let mut dsu = gz_dsu::Dsu::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(!dsu.union(1, 0), "already joined");
/// assert!(dsu.connected(0, 1));
/// assert_eq!(dsu.component_count(), 3);
/// assert_eq!(dsu.normalized_labels(), vec![0, 0, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl Dsu {
    /// Create a DSU with `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "DSU supports up to 2^32 elements");
        Dsu { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of current components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Find the representative of `x`, compressing the path.
    #[inline]
    pub fn find(&mut self, x: u32) -> u32 {
        debug_assert!((x as usize) < self.parent.len());
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression: point every node on the walk at the root.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Find without mutation (no compression) — usable through `&self`.
    #[inline]
    pub fn find_const(&self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    /// Merge the components of `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are currently in the same component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Component label for every element, normalized so labels are the
    /// minimum element id in each component. Two DSUs describe the same
    /// partition iff their normalized labelings are equal.
    pub fn normalized_labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut min_of_root = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            if x < min_of_root[r] {
                min_of_root[r] = x;
            }
        }
        (0..n as u32).map(|x| min_of_root[self.find_const(x) as usize]).collect()
    }

    /// Group elements by component: returns the list of components, each a
    /// sorted vector of member ids, ordered by smallest member.
    pub fn components(&mut self) -> Vec<Vec<u32>> {
        let labels = self.normalized_labels();
        let mut map: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
        for (x, &l) in labels.iter().enumerate() {
            map.entry(l).or_default().push(x as u32);
        }
        map.into_values().collect()
    }

    /// Iterator over current component representatives (roots).
    pub fn roots(&self) -> impl Iterator<Item = u32> + '_ {
        self.parent.iter().enumerate().filter(|(i, &p)| p == *i as u32).map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = Dsu::new(5);
        assert_eq!(d.component_count(), 5);
        for i in 0..5 {
            assert_eq!(d.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = Dsu::new(6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0), "repeat union must be a no-op");
        assert_eq!(d.component_count(), 4);
        assert!(d.connected(0, 1));
        assert!(!d.connected(0, 2));
        assert!(d.union(1, 3));
        assert!(d.connected(0, 2));
        assert_eq!(d.component_count(), 3);
    }

    #[test]
    fn chain_compresses() {
        let mut d = Dsu::new(1000);
        for i in 0..999 {
            d.union(i, i + 1);
        }
        assert_eq!(d.component_count(), 1);
        let r = d.find(0);
        for i in 0..1000 {
            assert_eq!(d.find(i), r);
        }
    }

    #[test]
    fn normalized_labels_minimum_member() {
        let mut d = Dsu::new(5);
        d.union(4, 2);
        d.union(2, 3);
        let labels = d.normalized_labels();
        assert_eq!(labels, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn components_sorted() {
        let mut d = Dsu::new(6);
        d.union(5, 0);
        d.union(1, 3);
        let comps = d.components();
        assert_eq!(comps, vec![vec![0, 5], vec![1, 3], vec![2], vec![4]]);
    }

    #[test]
    fn roots_match_component_count() {
        let mut d = Dsu::new(10);
        d.union(0, 9);
        d.union(3, 4);
        d.union(4, 5);
        assert_eq!(d.roots().count(), d.component_count());
    }

    #[test]
    fn empty_dsu() {
        let d = Dsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.component_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: naive label propagation.
    fn naive_partition(n: usize, unions: &[(u32, u32)]) -> Vec<u32> {
        let mut label: Vec<u32> = (0..n as u32).collect();
        // Iterate to fixpoint; O(n * |unions|) but fine for test sizes.
        loop {
            let mut changed = false;
            for &(a, b) in unions {
                let (la, lb) = (label[a as usize], label[b as usize]);
                let m = la.min(lb);
                for l in label.iter_mut() {
                    if *l == la.max(lb) && la != lb {
                        *l = m;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        label
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_naive(
            n in 1usize..40,
            pairs in proptest::collection::vec((0u32..40, 0u32..40), 0..60)
        ) {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let mut d = Dsu::new(n);
            for &(a, b) in &pairs {
                d.union(a, b);
            }
            prop_assert_eq!(d.normalized_labels(), naive_partition(n, &pairs));
        }

        #[test]
        fn component_count_decreases_by_successful_unions(
            n in 1usize..60,
            pairs in proptest::collection::vec((0u32..60, 0u32..60), 0..80)
        ) {
            let mut d = Dsu::new(n);
            let mut successes = 0;
            for (a, b) in pairs {
                if d.union(a % n as u32, b % n as u32) {
                    successes += 1;
                }
            }
            prop_assert_eq!(d.component_count(), n - successes);
        }
    }
}
