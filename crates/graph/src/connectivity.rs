//! Deterministic connected-components oracles.
//!
//! Every experiment that checks GraphZeppelin's answers (the §6.3 reliability
//! harness, the integration tests) needs an exact algorithm to compare
//! against. Two independent implementations are provided — a DSU scan (the
//! moral equivalent of the Kruskal pass the paper uses) and BFS — and they
//! are property-tested against each other so a bug in one cannot silently
//! validate the sketch system.

use crate::adjacency_list::AdjacencyList;
use crate::edge::{Edge, VertexId};
use gz_dsu::Dsu;

/// Connected components via a DSU over all edges.
///
/// Returns labels normalized to the minimum vertex id in each component.
pub fn connected_components_dsu(g: &AdjacencyList) -> Vec<u32> {
    let mut dsu = Dsu::new(g.num_vertices());
    for e in g.edges() {
        dsu.union(e.u(), e.v());
    }
    dsu.normalized_labels()
}

/// Connected components via BFS.
///
/// Returns labels normalized to the minimum vertex id in each component
/// (BFS from vertices in increasing order guarantees this directly).
pub fn connected_components_bfs(g: &AdjacencyList) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = start;
        queue.push_back(start);
        while let Some(x) = queue.pop_front() {
            for &y in g.neighbors(x) {
                if label[y as usize] == u32::MAX {
                    label[y as usize] = start;
                    queue.push_back(y);
                }
            }
        }
    }
    label
}

/// A deterministic spanning forest (Kruskal order: edges in canonical order).
///
/// The streaming problem's output format (paper Problem 1) is an insert-only
/// edge stream defining a spanning forest; this oracle produces one so tests
/// can validate *forests*, not just partitions.
pub fn spanning_forest(g: &AdjacencyList) -> Vec<Edge> {
    let mut dsu = Dsu::new(g.num_vertices());
    let mut forest = Vec::new();
    for e in g.edges() {
        if dsu.union(e.u(), e.v()) {
            forest.push(e);
        }
    }
    forest
}

/// Check that `forest` is a spanning forest of `g`: acyclic, uses only edges
/// of `g`, and induces exactly `g`'s connectivity partition.
pub fn is_spanning_forest(g: &AdjacencyList, forest: &[Edge]) -> bool {
    let mut dsu = Dsu::new(g.num_vertices());
    for &e in forest {
        if !g.contains(e) {
            return false; // uses a non-edge
        }
        if !dsu.union(e.u(), e.v()) {
            return false; // cycle
        }
    }
    dsu.normalized_labels() == connected_components_dsu(g)
}

/// Exact minimum spanning forest by Kruskal over integer-weighted edges.
/// Returns `(total_weight, forest)`. Ties broken by canonical edge order,
/// so the output is deterministic.
pub fn kruskal_msf(num_vertices: usize, weighted: &[(Edge, u32)]) -> (u64, Vec<Edge>) {
    let mut sorted: Vec<(u32, Edge)> = weighted.iter().map(|&(e, w)| (w, e)).collect();
    sorted.sort_unstable();
    let mut dsu = Dsu::new(num_vertices);
    let mut forest = Vec::new();
    let mut total = 0u64;
    for (w, e) in sorted {
        if dsu.union(e.u(), e.v()) {
            total += w as u64;
            forest.push(e);
        }
    }
    (total, forest)
}

/// Number of connected components implied by a normalized labeling.
pub fn count_components(labels: &[u32]) -> usize {
    let mut roots: Vec<u32> = labels.to_vec();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Verify a partition against ground truth: `labels` must induce the same
/// partition as `truth` (labels themselves may differ as long as the grouping
/// is identical after normalization).
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // Map each label to the first index at which it appears; two labelings
    // describe the same partition iff these firsts-of-class sequences agree.
    fn canon(labels: &[u32]) -> Vec<u32> {
        let mut first = std::collections::HashMap::new();
        labels.iter().enumerate().map(|(i, &l)| *first.entry(l).or_insert(i as u32)).collect()
    }
    canon(a) == canon(b)
}

/// Convenience: normalized component labels for a vertex set given an edge
/// list (used by the baselines and experiments).
pub fn components_from_edges(
    num_vertices: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> Vec<u32> {
    let mut dsu = Dsu::new(num_vertices);
    for (a, b) in edges {
        if a != b {
            dsu.union(a, b);
        }
    }
    dsu.normalized_labels()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> AdjacencyList {
        AdjacencyList::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_and_dsu_agree_on_path() {
        let g = path_graph(50);
        assert_eq!(connected_components_bfs(&g), connected_components_dsu(&g));
        assert_eq!(count_components(&connected_components_bfs(&g)), 1);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = AdjacencyList::new(4);
        let labels = connected_components_dsu(&g);
        assert_eq!(labels, vec![0, 1, 2, 3]);
        assert_eq!(count_components(&labels), 4);
    }

    #[test]
    fn spanning_forest_of_cycle_drops_one_edge() {
        let g = AdjacencyList::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 3);
        assert!(is_spanning_forest(&g, &f));
    }

    #[test]
    fn forest_validation_rejects_cycles_and_non_edges() {
        let g = AdjacencyList::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let cycle = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(0, 1)];
        assert!(!is_spanning_forest(&g, &cycle));
        let non_edge = vec![Edge::new(0, 3)];
        assert!(!is_spanning_forest(&g, &non_edge));
        let incomplete: Vec<Edge> = vec![Edge::new(0, 1)];
        assert!(!is_spanning_forest(&g, &incomplete), "must span");
    }

    #[test]
    fn kruskal_msf_picks_light_edges() {
        // Triangle with weights 0,1,5: forest must use the 0 and 1 edges.
        let weighted = vec![(Edge::new(0, 1), 0u32), (Edge::new(1, 2), 1), (Edge::new(0, 2), 5)];
        let (total, forest) = kruskal_msf(3, &weighted);
        assert_eq!(total, 1);
        assert_eq!(forest, vec![Edge::new(0, 1), Edge::new(1, 2)]);
        // Disconnected graphs yield forests per component.
        let (total2, forest2) = kruskal_msf(5, &[(Edge::new(0, 1), 2), (Edge::new(3, 4), 7)]);
        assert_eq!((total2, forest2.len()), (9, 2));
    }

    #[test]
    fn same_partition_ignores_label_values() {
        assert!(same_partition(&[0, 0, 2, 2], &[7, 7, 1, 1]));
        assert!(!same_partition(&[0, 0, 2, 2], &[0, 1, 2, 2]));
        assert!(!same_partition(&[0], &[0, 0]));
    }

    #[test]
    fn components_from_edges_matches_adjacency() {
        let edges = [(0u32, 1u32), (2, 3), (3, 4)];
        let g = AdjacencyList::from_edges(6, edges);
        assert_eq!(components_from_edges(6, edges), connected_components_dsu(&g));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bfs_equals_dsu(
            n in 1usize..60,
            pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120)
        ) {
            let edges: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .filter(|(a, b)| a != b)
                .collect();
            let g = AdjacencyList::from_edges(n, edges);
            prop_assert_eq!(connected_components_bfs(&g), connected_components_dsu(&g));
        }

        #[test]
        fn spanning_forest_always_valid(
            n in 1usize..50,
            pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..100)
        ) {
            let edges: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .filter(|(a, b)| a != b)
                .collect();
            let g = AdjacencyList::from_edges(n, edges);
            let f = spanning_forest(&g);
            prop_assert!(is_spanning_forest(&g, &f));
            // Forest size = V - #components.
            let c = count_components(&connected_components_dsu(&g));
            prop_assert_eq!(f.len(), n - c);
        }
    }
}
