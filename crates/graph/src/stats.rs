//! Graph summary statistics.
//!
//! Backs the dataset catalog (paper Figure 10) and the Figure 1 feasibility
//! computation: which `(V, E)` pairs fit in a RAM budget as an adjacency
//! list.

use crate::adjacency_list::AdjacencyList;

/// Size in bytes of an adjacency-list representation of a graph with `e`
/// undirected edges, using `bytes_per_endpoint` per stored endpoint.
///
/// An adjacency list stores each edge twice (once per endpoint); Figure 1's
/// feasibility line uses this model.
pub fn adjacency_list_bytes(e: u64, bytes_per_endpoint: u64) -> u64 {
    2 * e * bytes_per_endpoint
}

/// Does a graph with `e` edges fit in `budget_bytes` as an adjacency list
/// with 4-byte vertex ids? (The dark line in Figure 1, with 16 GiB budget.)
pub fn fits_in_ram(e: u64, budget_bytes: u64) -> bool {
    adjacency_list_bytes(e, 4) <= budget_bytes
}

/// The maximum average degree representable for `v` vertices in
/// `budget_bytes` (the Figure 1 line expressed as degree vs node count).
pub fn max_avg_degree(v: u64, budget_bytes: u64) -> f64 {
    if v == 0 {
        return 0.0;
    }
    // 2·E·4 bytes ≤ budget  ⇒  avg_degree = 2E/V ≤ budget / (4V)
    budget_bytes as f64 / (4.0 * v as f64)
}

/// Density of a graph: fraction of possible edges present.
pub fn density(v: u64, e: u64) -> f64 {
    let possible = crate::edge::edge_index_count(v);
    if possible == 0 {
        0.0
    } else {
        e as f64 / possible as f64
    }
}

/// Degree distribution summary of a built graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Compute degree statistics for a graph.
    pub fn of(g: &AdjacencyList) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats { min: 0, max: 0, mean: 0.0, isolated: 0 };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut isolated = 0usize;
        for x in 0..n as u32 {
            let d = g.degree(x);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            if d == 0 {
                isolated += 1;
            }
        }
        DegreeStats { min, max, mean: sum as f64 / n as f64, isolated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_line_examples() {
        let budget = 16u64 << 30; // 16 GiB
                                  // 1 billion edges: 8 GB of endpoints -> fits.
        assert!(fits_in_ram(1_000_000_000, budget));
        // 10 billion edges: 80 GB -> does not fit.
        assert!(!fits_in_ram(10_000_000_000, budget));
    }

    #[test]
    fn paper_dense_example_does_not_fit() {
        // Paper §1: 10M nodes, avg degree 1M => 5e12 edges needs ~10TB at
        // 2B/edge; our 4B-per-endpoint model says even more. Must not fit.
        let e = 10_000_000u64 * 1_000_000 / 2;
        assert!(!fits_in_ram(e, 16u64 << 30));
    }

    #[test]
    fn max_degree_line_is_hyperbolic() {
        let budget = 16u64 << 30;
        assert!(max_avg_degree(1 << 20, budget) > max_avg_degree(1 << 24, budget));
        let d = max_avg_degree(1 << 20, budget);
        // V * d * 4 should equal the budget.
        let implied = (1u64 << 20) as f64 * d * 4.0;
        assert!((implied - budget as f64).abs() < 1.0);
    }

    #[test]
    fn density_range() {
        assert_eq!(density(2, 1), 1.0);
        assert_eq!(density(4, 3), 0.5);
        assert_eq!(density(0, 0), 0.0);
        assert_eq!(density(1, 0), 0.0);
    }

    #[test]
    fn degree_stats_of_star() {
        let g = AdjacencyList::from_edges(5, (1..5u32).map(|i| (0, i)));
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_counts_isolated() {
        let g = AdjacencyList::from_edges(4, [(0, 1)]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.min, 0);
    }
}
