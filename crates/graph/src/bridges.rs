//! Bridge finding (2-edge-connectivity), iterative Tarjan lowlink.
//!
//! Used by the edge-connectivity extension (`graph-zeppelin`'s k-forest
//! certificates, after paper §3.1's "edge- or vertex-connectivity"
//! application of CubeSketch): a graph is 2-edge-connected iff it is
//! connected and bridge-free, and an AGM certificate preserves exactly that
//! property. Implemented iteratively so deep paths cannot overflow the
//! stack.

use crate::adjacency_list::AdjacencyList;
use crate::edge::Edge;

/// All bridges of `g` (edges whose removal disconnects their component),
/// in canonical order.
pub fn bridges(g: &AdjacencyList) -> Vec<Edge> {
    let n = g.num_vertices();
    let mut disc = vec![u32::MAX; n]; // discovery time
    let mut low = vec![u32::MAX; n]; // lowlink
    let mut timer = 0u32;
    let mut out = Vec::new();

    // Iterative DFS frame: (vertex, parent, next neighbor index).
    let mut stack: Vec<(u32, u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, u32::MAX, 0));

        while let Some(&mut (v, parent, ref mut next)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *next < nbrs.len() {
                let w = nbrs[*next];
                *next += 1;
                if disc[w as usize] == u32::MAX {
                    // Tree edge: descend.
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, v, 0));
                } else if w != parent {
                    // Back edge (or multi-visit): update lowlink.
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
                // Note: simple graphs have no parallel edges, so skipping
                // exactly one `w == parent` occurrence is exact here.
            } else {
                // Retreat: propagate lowlink to the parent.
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        out.push(Edge::new(p, v));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// True if `g` is connected (non-trivially: `n ≥ 2`) and has no bridges —
/// i.e. is 2-edge-connected.
pub fn is_two_edge_connected(g: &AdjacencyList) -> bool {
    let n = g.num_vertices();
    if n < 2 {
        return false;
    }
    let labels = crate::connectivity::connected_components_dsu(g);
    if labels.iter().any(|&l| l != 0) {
        return false; // not connected
    }
    bridges(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> AdjacencyList {
        AdjacencyList::from_edges(n, edges.iter().copied())
    }

    #[test]
    fn path_edges_are_all_bridges() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bridges(&g).len(), 4);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(bridges(&g).is_empty());
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn barbell_bridge_identified() {
        // Two triangles joined by one edge: exactly that edge is a bridge.
        let g = graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(bridges(&g), vec![Edge::new(2, 3)]);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn disconnected_graph_not_two_edge_connected() {
        let g = graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(bridges(&g).is_empty(), "each triangle is bridge-free");
        assert!(!is_two_edge_connected(&g), "but the graph is disconnected");
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = AdjacencyList::from_edges(n, edges);
        assert_eq!(bridges(&g).len(), n - 1);
    }

    /// Oracle: e is a bridge iff removing it splits its component.
    fn bridges_naive(g: &AdjacencyList) -> Vec<Edge> {
        let base = crate::connectivity::count_components(
            &crate::connectivity::connected_components_dsu(g),
        );
        let mut out = Vec::new();
        for e in g.edges().collect::<Vec<_>>() {
            let mut h = g.clone();
            h.remove(e);
            let c = crate::connectivity::count_components(
                &crate::connectivity::connected_components_dsu(&h),
            );
            if c > base {
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 24;
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.12 {
                        edges.push((a, b));
                    }
                }
            }
            let g = AdjacencyList::from_edges(n, edges);
            assert_eq!(bridges(&g), bridges_naive(&g), "seed {seed}");
        }
    }
}
