//! Vertex and edge types, and the triangular edge↔index codec.
//!
//! The characteristic vector of node `i` (paper §2.2) is indexed by the set
//! of possible undirected edges on `V` vertices. We fix the standard
//! row-major upper-triangle enumeration: edge `(u,v)` with `u < v` gets index
//!
//! ```text
//! idx(u,v) = u·V − u(u+1)/2 + (v − u − 1)   ∈ [0, C(V,2))
//! ```
//!
//! This codec is the contract between the stream layer (which emits vertex
//! pairs) and the sketch layer (which toggles vector coordinates); its
//! bijectivity is property-tested below.

/// Vertex identifier. The paper's systems address up to 2^18 nodes; `u32`
/// leaves ample headroom while keeping update records compact.
pub type VertexId = u32;

/// An undirected edge, stored in canonical `(min, max)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Create a canonical edge from two distinct endpoints (any order).
    ///
    /// # Panics
    /// Panics on self-loops: graph streams in the paper's model contain only
    /// `u ≠ v` updates.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert!(a != b, "self-loop ({a},{b}) is not a valid stream edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// The endpoint that is not `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }

    /// Both endpoints as a tuple `(min, max)`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.u, self.v)
    }
}

/// Number of possible undirected edges on `num_vertices` vertices: `C(V,2)`.
#[inline]
pub fn edge_index_count(num_vertices: u64) -> u64 {
    num_vertices * num_vertices.saturating_sub(1) / 2
}

/// Map an edge to its characteristic-vector index (row-major upper triangle).
///
/// ```
/// use gz_graph::{edge_index, index_to_edge, Edge};
/// let v = 1000;
/// let e = Edge::new(3, 77);
/// let idx = edge_index(e, v);
/// assert_eq!(index_to_edge(idx, v), e);
/// ```
#[inline]
pub fn edge_index(edge: Edge, num_vertices: u64) -> u64 {
    let (u, v) = (edge.u as u64, edge.v as u64);
    debug_assert!(v < num_vertices, "edge {edge} out of range for V={num_vertices}");
    u * num_vertices - u * (u + 1) / 2 + (v - u - 1)
}

/// Inverse of [`edge_index`]: recover the edge from a vector index.
///
/// Solves for the row `u` as the largest `u` with
/// `u·V − u(u+1)/2 ≤ idx` via the quadratic formula, then verifies and
/// adjusts — exact for all valid inputs (no float-rounding escape).
pub fn index_to_edge(idx: u64, num_vertices: u64) -> Edge {
    debug_assert!(idx < edge_index_count(num_vertices), "index {idx} out of range");
    let n = num_vertices as f64;
    // Row start offsets: S(u) = u·V − u(u+1)/2. Solve S(u) ≤ idx < S(u+1).
    // Float solution then integer-fix (float error is < 1 row for V < 2^32).
    let approx =
        (2.0 * n - 1.0 - ((2.0 * n - 1.0) * (2.0 * n - 1.0) - 8.0 * idx as f64).sqrt()) / 2.0;
    let mut u = approx.floor().max(0.0) as u64;
    let row_start = |u: u64| u * num_vertices - u * (u + 1) / 2;
    // Integer adjustment by at most a couple of steps.
    while u + 1 < num_vertices && row_start(u + 1) <= idx {
        u += 1;
    }
    while u > 0 && row_start(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - row_start(u));
    Edge::new(u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_order() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(2, 5).endpoints(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(1, 9);
        assert_eq!(e.other(1), 9);
        assert_eq!(e.other(9), 1);
    }

    #[test]
    fn small_enumeration_is_dense_and_ordered() {
        // For V=5 the indices must be exactly 0..10 in row-major order.
        let v = 5u64;
        let mut expected = 0u64;
        for a in 0..5u32 {
            for b in (a + 1)..5u32 {
                assert_eq!(edge_index(Edge::new(a, b), v), expected);
                expected += 1;
            }
        }
        assert_eq!(expected, edge_index_count(v));
    }

    #[test]
    fn round_trip_exhaustive_small() {
        for v in 2u64..=40 {
            for idx in 0..edge_index_count(v) {
                let e = index_to_edge(idx, v);
                assert_eq!(edge_index(e, v), idx, "V={v} idx={idx}");
            }
        }
    }

    #[test]
    fn round_trip_large_vertices() {
        let v = 1u64 << 20;
        for &(a, b) in
            &[(0u32, 1u32), (0, (v - 1) as u32), ((v - 2) as u32, (v - 1) as u32), (77, 1 << 19)]
        {
            let e = Edge::new(a, b);
            assert_eq!(index_to_edge(edge_index(e, v), v), e);
        }
    }

    #[test]
    fn edge_count_formula() {
        assert_eq!(edge_index_count(0), 0);
        assert_eq!(edge_index_count(1), 0);
        assert_eq!(edge_index_count(2), 1);
        assert_eq!(edge_index_count(1000), 499_500);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn codec_bijective(v in 2u64..100_000, a in any::<u32>(), b in any::<u32>()) {
            let a = (a as u64 % v) as u32;
            let b = (b as u64 % v) as u32;
            prop_assume!(a != b);
            let e = Edge::new(a, b);
            let idx = edge_index(e, v);
            prop_assert!(idx < edge_index_count(v));
            prop_assert_eq!(index_to_edge(idx, v), e);
        }

        #[test]
        fn distinct_edges_distinct_indices(
            v in 2u64..1000,
            raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 2..20)
        ) {
            let mut seen = std::collections::HashMap::new();
            for (a, b) in raw {
                let a = (a as u64 % v) as u32;
                let b = (b as u64 % v) as u32;
                if a == b { continue; }
                let e = Edge::new(a, b);
                let idx = edge_index(e, v);
                if let Some(prev) = seen.insert(idx, e) {
                    prop_assert_eq!(prev, e, "index collision");
                }
            }
        }
    }
}
