//! Vertex-id interning for streams with non-integer node identifiers.
//!
//! Paper §2.2: "even if nodes are identified in the input stream as
//! arbitrary strings instead of integer IDs in the range [V], we can use a
//! hash function with range [O(U²)] to ensure that every node gets a unique
//! integer ID with high probability." This module provides both flavors:
//!
//! - [`VertexInterner`] — exact assignment (hash map to dense ids), the
//!   right tool when the id set fits in memory;
//! - [`hashed_vertex_id`] — the paper's stateless hashing variant, for
//!   pipelines that cannot keep a dictionary (collision probability
//!   `≈ k²/2·2^-61` for `k` distinct names).

use crate::edge::VertexId;
use std::collections::HashMap;

/// Dense, exact string→vertex-id assignment.
#[derive(Debug, Default, Clone)]
pub struct VertexInterner {
    ids: HashMap<String, VertexId>,
    names: Vec<String>,
}

impl VertexInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `name`, assigning the next dense id on first sight.
    pub fn intern(&mut self, name: &str) -> VertexId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as VertexId;
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Id for `name` if already assigned.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.ids.get(name).copied()
    }

    /// Name for an id.
    pub fn name(&self, id: VertexId) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of distinct vertices seen.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Stateless hashed vertex id in `[0, universe)` (the paper's w.h.p.
/// scheme). `universe` should be `Ω(k²)` for `k` expected distinct names.
pub fn hashed_vertex_id(name: &str, universe: u64, seed: u64) -> u64 {
    let h = gz_hash::xxh64(name.as_bytes(), seed);
    gz_hash::hash_to_range(h, universe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_stable_ids() {
        let mut it = VertexInterner::new();
        let a = it.intern("alice");
        let b = it.intern("bob");
        assert_eq!((a, b), (0, 1));
        assert_eq!(it.intern("alice"), 0, "repeat lookups stable");
        assert_eq!(it.len(), 2);
        assert_eq!(it.name(1), Some("bob"));
        assert_eq!(it.get("carol"), None);
    }

    #[test]
    fn hashed_ids_in_range_and_deterministic() {
        let universe = 1 << 30;
        let a = hashed_vertex_id("node-42", universe, 7);
        assert!(a < universe);
        assert_eq!(a, hashed_vertex_id("node-42", universe, 7));
        assert_ne!(a, hashed_vertex_id("node-43", universe, 7));
    }

    #[test]
    fn hashed_ids_rarely_collide_at_quadratic_universe() {
        // k = 1000 names in a k² universe: expected collisions ≈ 0.5.
        let k = 1000u64;
        let universe = k * k;
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..k {
            if !seen.insert(hashed_vertex_id(&format!("v{i}"), universe, 1)) {
                collisions += 1;
            }
        }
        assert!(collisions <= 3, "{collisions} collisions");
    }
}
