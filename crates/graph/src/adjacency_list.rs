//! Plain adjacency-list representation.
//!
//! This is the "lossless representation of the graph" that the paper's space
//! bounds are measured against (and the structure behind Figure 1's 16 GB
//! feasibility line). It doubles as the reference container for building test
//! graphs and computing ground truth on sparse inputs, where the bit-matrix
//! would be wasteful.

use crate::edge::{Edge, VertexId};

/// An undirected graph as per-vertex sorted neighbor vectors.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyList {
    adj: Vec<Vec<VertexId>>,
    num_edges: u64,
}

impl AdjacencyList {
    /// Create an empty graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        AdjacencyList { adj: vec![Vec::new(); num_vertices], num_edges: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// True if edge `e` is present.
    pub fn contains(&self, e: Edge) -> bool {
        self.adj[e.u() as usize].binary_search(&e.v()).is_ok()
    }

    /// Insert an edge; returns `true` if newly added.
    pub fn insert(&mut self, e: Edge) -> bool {
        match self.adj[e.u() as usize].binary_search(&e.v()) {
            Ok(_) => false,
            Err(pos) => {
                self.adj[e.u() as usize].insert(pos, e.v());
                let pos2 = self.adj[e.v() as usize]
                    .binary_search(&e.u())
                    .expect_err("half-edge asymmetry");
                self.adj[e.v() as usize].insert(pos2, e.u());
                self.num_edges += 1;
                true
            }
        }
    }

    /// Remove an edge; returns `true` if it was present.
    pub fn remove(&mut self, e: Edge) -> bool {
        match self.adj[e.u() as usize].binary_search(&e.v()) {
            Err(_) => false,
            Ok(pos) => {
                self.adj[e.u() as usize].remove(pos);
                let pos2 =
                    self.adj[e.v() as usize].binary_search(&e.u()).expect("half-edge asymmetry");
                self.adj[e.v() as usize].remove(pos2);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Toggle an edge; returns `true` if present after the toggle.
    pub fn toggle(&mut self, e: Edge) -> bool {
        if self.contains(e) {
            self.remove(e);
            false
        } else {
            self.insert(e);
            true
        }
    }

    /// Sorted neighbors of a vertex.
    pub fn neighbors(&self, x: VertexId) -> &[VertexId] {
        &self.adj[x as usize]
    }

    /// Degree of a vertex.
    pub fn degree(&self, x: VertexId) -> usize {
        self.adj[x as usize].len()
    }

    /// Iterate all edges in canonical order (each edge once).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter().filter(move |&&v| (u as u32) < v).map(move |&v| Edge::new(u as u32, v))
        })
    }

    /// Heap size in bytes of the neighbor arrays (the Figure 1 cost model:
    /// an adjacency list stores each edge twice).
    pub fn size_bytes(&self) -> usize {
        self.adj.iter().map(|v| v.len() * std::mem::size_of::<VertexId>()).sum::<usize>()
            + self.adj.len() * std::mem::size_of::<Vec<VertexId>>()
    }

    /// Build from an edge iterator, ignoring duplicates and self-loops.
    pub fn from_edges(num_vertices: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = AdjacencyList::new(num_vertices);
        for (a, b) in edges {
            if a != b {
                g.insert(Edge::new(a, b));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_symmetric_and_sorted() {
        let mut g = AdjacencyList::new(5);
        assert!(g.insert(Edge::new(3, 1)));
        assert!(g.insert(Edge::new(1, 4)));
        assert!(g.insert(Edge::new(1, 0)));
        assert_eq!(g.neighbors(1), &[0, 3, 4]);
        assert_eq!(g.neighbors(3), &[1]);
        assert!(!g.insert(Edge::new(1, 3)), "duplicate insert");
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn remove_and_toggle() {
        let mut g = AdjacencyList::new(4);
        g.insert(Edge::new(0, 1));
        assert!(g.remove(Edge::new(1, 0)));
        assert!(!g.remove(Edge::new(1, 0)));
        assert!(g.toggle(Edge::new(2, 3)));
        assert!(!g.toggle(Edge::new(2, 3)));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edges_enumerated_once() {
        let g = AdjacencyList::from_edges(6, [(0, 1), (1, 0), (2, 5), (5, 2), (3, 3)]);
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(2, 5)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn degrees() {
        let g = AdjacencyList::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn size_counts_both_directions() {
        let g = AdjacencyList::from_edges(3, [(0, 1)]);
        // 2 half-edges * 4 bytes + 3 Vec headers.
        assert_eq!(g.size_bytes(), 8 + 3 * std::mem::size_of::<Vec<u32>>());
    }
}
