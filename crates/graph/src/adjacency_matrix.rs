//! Bit-packed adjacency matrix.
//!
//! The paper's §6.3 reliability experiment compares GraphZeppelin's answers
//! "with an in-memory adjacency matrix stored as a bit vector". This is that
//! structure: one bit per possible undirected edge, stored over the same
//! triangular index space as the characteristic vectors, so a stream of edge
//! toggles can be mirrored exactly.

use crate::edge::{edge_index, edge_index_count, Edge, VertexId};

/// A dense undirected graph as one bit per possible edge (upper triangle).
#[derive(Debug, Clone)]
pub struct AdjacencyMatrix {
    num_vertices: u64,
    bits: Vec<u64>,
    num_edges: u64,
}

impl AdjacencyMatrix {
    /// Create an empty graph on `num_vertices` vertices.
    ///
    /// Space is `C(V,2)` bits; at the paper's kron17 scale (2^17 nodes) this
    /// is ~1 GiB, exactly the baseline cost the sketches avoid.
    pub fn new(num_vertices: u64) -> Self {
        let nbits = edge_index_count(num_vertices);
        let words = nbits.div_ceil(64) as usize;
        AdjacencyMatrix { num_vertices, bits: vec![0; words], num_edges: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Heap size in bytes (the "explicit representation" cost).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    #[inline]
    fn locate(&self, e: Edge) -> (usize, u64) {
        let idx = edge_index(e, self.num_vertices);
        ((idx / 64) as usize, 1u64 << (idx % 64))
    }

    /// True if the edge is present.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        let (w, m) = self.locate(e);
        self.bits[w] & m != 0
    }

    /// Toggle an edge (the natural mirror of a Z_2 stream update). Returns
    /// `true` if the edge is present *after* the toggle.
    #[inline]
    pub fn toggle(&mut self, e: Edge) -> bool {
        let (w, m) = self.locate(e);
        self.bits[w] ^= m;
        let present = self.bits[w] & m != 0;
        if present {
            self.num_edges += 1;
        } else {
            self.num_edges -= 1;
        }
        present
    }

    /// Insert an edge; returns `true` if it was newly added.
    pub fn insert(&mut self, e: Edge) -> bool {
        if self.contains(e) {
            false
        } else {
            self.toggle(e);
            true
        }
    }

    /// Remove an edge; returns `true` if it was present.
    pub fn remove(&mut self, e: Edge) -> bool {
        if self.contains(e) {
            self.toggle(e);
            true
        } else {
            false
        }
    }

    /// Iterate the neighbors of `x` in increasing order.
    pub fn neighbors(&self, x: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let n = self.num_vertices as u32;
        (0..n).filter(move |&y| y != x && self.contains(Edge::new(x, y)))
    }

    /// Iterate all present edges in index order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let v = self.num_vertices;
        self.bits.iter().enumerate().flat_map(move |(w, &word)| {
            let mut word = word;
            let mut out = Vec::new();
            while word != 0 {
                let bit = word.trailing_zeros() as u64;
                word &= word - 1;
                let idx = w as u64 * 64 + bit;
                if idx < edge_index_count(v) {
                    out.push(crate::edge::index_to_edge(idx, v));
                }
            }
            out
        })
    }

    /// Connected components by DSU over present edges; labels normalized to
    /// the minimum vertex id per component.
    pub fn connected_components(&self) -> Vec<u32> {
        let mut dsu = gz_dsu::Dsu::new(self.num_vertices as usize);
        for e in self.edges() {
            dsu.union(e.u(), e.v());
        }
        dsu.normalized_labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trip() {
        let mut m = AdjacencyMatrix::new(10);
        let e = Edge::new(2, 7);
        assert!(!m.contains(e));
        assert!(m.toggle(e));
        assert!(m.contains(e));
        assert_eq!(m.num_edges(), 1);
        assert!(!m.toggle(e));
        assert!(!m.contains(e));
        assert_eq!(m.num_edges(), 0);
    }

    #[test]
    fn insert_remove_idempotence() {
        let mut m = AdjacencyMatrix::new(6);
        let e = Edge::new(0, 5);
        assert!(m.insert(e));
        assert!(!m.insert(e));
        assert!(m.remove(e));
        assert!(!m.remove(e));
    }

    #[test]
    fn neighbors_and_edges() {
        let mut m = AdjacencyMatrix::new(5);
        m.insert(Edge::new(0, 1));
        m.insert(Edge::new(0, 3));
        m.insert(Edge::new(2, 3));
        assert_eq!(m.neighbors(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(m.neighbors(4).count(), 0);
        let edges: Vec<Edge> = m.edges().collect();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(0, 3), Edge::new(2, 3)]);
    }

    #[test]
    fn components_of_two_triangles() {
        let mut m = AdjacencyMatrix::new(7);
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            m.insert(Edge::new(a, b));
        }
        let labels = m.connected_components();
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 6]);
    }

    #[test]
    fn size_is_quadratic() {
        // V=1024: C(V,2) bits ≈ 64 KiB.
        let m = AdjacencyMatrix::new(1024);
        assert_eq!(m.size_bytes(), (edge_index_count(1024).div_ceil(64) * 8) as usize);
    }

    #[test]
    fn full_graph_edge_count() {
        let v = 20u64;
        let mut m = AdjacencyMatrix::new(v);
        for a in 0..v as u32 {
            for b in (a + 1)..v as u32 {
                m.insert(Edge::new(a, b));
            }
        }
        assert_eq!(m.num_edges(), edge_index_count(v));
        assert_eq!(m.edges().count() as u64, edge_index_count(v));
        // One component.
        let labels = m.connected_components();
        assert!(labels.iter().all(|&l| l == 0));
    }
}
