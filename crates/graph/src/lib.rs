//! Graph substrate for the GraphZeppelin reproduction.
//!
//! This crate holds everything the streaming system and its evaluation need
//! to talk about *graphs themselves*:
//!
//! - [`edge`] — vertex/edge types and the triangular codec that maps an
//!   undirected edge to its index in a node's characteristic vector
//!   (paper §2.2: vectors of length `C(V,2)`).
//! - [`adjacency_matrix`] — the bit-packed adjacency matrix the paper uses as
//!   its ground-truth mirror in the §6.3 reliability experiment.
//! - [`adjacency_list`] — a plain adjacency list, the "explicit
//!   representation" whose size streaming sketches undercut.
//! - [`connectivity`] — deterministic connected-components algorithms (DSU
//!   scan and BFS) used as oracles by tests and experiments.
//! - [`stats`] — degree/density summaries used by the dataset catalog and
//!   Figure 1.
//! - [`interner`] — string→vertex-id mapping for streams with non-integer
//!   node names (paper §2.2).

pub mod adjacency_list;
pub mod adjacency_matrix;
pub mod bridges;
pub mod connectivity;
pub mod edge;
pub mod interner;
pub mod stats;

pub use adjacency_list::AdjacencyList;
pub use adjacency_matrix::AdjacencyMatrix;
pub use connectivity::{connected_components_bfs, connected_components_dsu, spanning_forest};
pub use edge::{edge_index, edge_index_count, index_to_edge, Edge, VertexId};
pub use interner::VertexInterner;
