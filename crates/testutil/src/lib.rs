//! Shared test support for the workspace.
//!
//! Every on-disk test used to key scratch space off the process id alone
//! (`gz_*_{pid}`), which collides when the test harness runs tests in
//! parallel threads and leaks the directory whenever an assertion fires
//! before the manual `remove_dir_all`. [`TempDir`] and [`TempPath`] give
//! every call site a unique path and clean it up in `Drop`, which runs even
//! on panic (the libtest harness catches the unwind).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A path component unique across processes, threads, and reruns:
/// pid + a process-wide counter + nanoseconds since the epoch.
fn unique_name(prefix: &str) -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{prefix}-{}-{}-{nanos}", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed))
}

/// A uniquely named directory under the system temp dir, created on
/// construction and recursively removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `"$TMPDIR/<prefix>-<pid>-<seq>-<nanos>"`.
    pub fn new(prefix: &str) -> Self {
        let path = std::env::temp_dir().join(unique_name(prefix));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory (not created).
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

/// A uniquely named *file path* under the system temp dir. The file is not
/// created — the code under test does that — but whatever ends up at the
/// path (file or directory) is removed on drop.
#[derive(Debug)]
pub struct TempPath {
    path: PathBuf,
}

impl TempPath {
    /// Reserve `"$TMPDIR/<prefix>-<pid>-<seq>-<nanos><suffix>"`.
    pub fn new(prefix: &str, suffix: &str) -> Self {
        let path = std::env::temp_dir().join(format!("{}{suffix}", unique_name(prefix)));
        TempPath { path }
    }

    /// The reserved path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The reserved path as an owned `PathBuf`.
    pub fn to_path_buf(&self) -> PathBuf {
        self.path.clone()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        if self.path.is_dir() {
            let _ = std::fs::remove_dir_all(&self.path);
        } else {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl AsRef<Path> for TempPath {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dirs_are_unique_and_cleaned() {
        let (p1, p2);
        {
            let d1 = TempDir::new("gz-testutil");
            let d2 = TempDir::new("gz-testutil");
            p1 = d1.path().to_path_buf();
            p2 = d2.path().to_path_buf();
            assert_ne!(p1, p2, "two dirs from one process must differ");
            assert!(p1.is_dir() && p2.is_dir());
            std::fs::write(d1.join("x"), b"payload").unwrap();
        }
        assert!(!p1.exists(), "dir (and contents) removed on drop");
        assert!(!p2.exists());
    }

    #[test]
    fn temp_path_removes_what_appears() {
        let p;
        {
            let t = TempPath::new("gz-testutil", ".bin");
            p = t.to_path_buf();
            assert!(!p.exists(), "TempPath must not pre-create the file");
            std::fs::write(&p, b"data").unwrap();
        }
        assert!(!p.exists(), "file removed on drop");
    }

    #[test]
    fn temp_path_removes_directories_too() {
        let p;
        {
            let t = TempPath::new("gz-testutil-dir", "");
            p = t.to_path_buf();
            std::fs::create_dir_all(p.join("nested")).unwrap();
        }
        assert!(!p.exists(), "dir removed on drop");
    }

    #[test]
    fn parallel_construction_never_collides() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..16).map(|_| TempDir::new("gz-par").path().to_path_buf()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<PathBuf> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "unique across threads");
    }
}
