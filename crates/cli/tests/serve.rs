//! Hostile-client suite for the `gz serve` daemon (DESIGN.md §15).
//!
//! Everything here drives an in-process daemon ([`serve_start`]) over real
//! sockets: well-behaved round trips first, then the abuse matrix — a
//! client that disconnects mid-batch, a stalled reader that forces the
//! write deadline, garbage and protocol-violating frames, invalid updates,
//! and a connection flood past `--max-clients`. After every attack the
//! daemon must still answer queries correctly, retire the hostile
//! connection's thread (`active_clients` returns to its pre-attack value),
//! and account for the event in its typed counters. The durability test
//! closes the loop in-process: shut down, refuse a blind restart, resume,
//! and answer bit-identically.
//!
//! The process-level crash companion (SIGKILL + `--resume`) lives in
//! `serve_chaos.rs`.

#![cfg(unix)]

use graph_zeppelin::{BoruvkaOutcome, ShardConfig, ShardedGraphZeppelin, TransportTimeouts};
use gz_cli::client::{ClientError, ServeClient};
use gz_cli::serve::{serve_start, ServeHandle, ServeListen, ServeOptions};
use gz_stream::wire::{QueryKind, WireMessage, WireUpdate};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tcp_options(nodes: u64) -> ServeOptions {
    let mut options = ServeOptions::new(ServeListen::Tcp("127.0.0.1:0".into()), nodes);
    options.timeout_ms = Some(5_000);
    options
}

fn client_timeouts() -> TransportTimeouts {
    let d = Some(Duration::from_secs(5));
    TransportTimeouts { connect: d, read: d, write: d }
}

fn connect(handle: &ServeHandle) -> ServeClient {
    ServeClient::connect_tcp(handle.addr(), &client_timeouts()).expect("connect to daemon")
}

/// Deterministic pseudo-random insert stream over `n` nodes.
fn edge_stream(n: u32, count: usize, salt: u64) -> Vec<(u32, u32, bool)> {
    let mut x = salt | 1;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % n as u64) as u32;
        let v = ((x >> 13) % n as u64) as u32;
        if u != v {
            out.push((u, v, false));
        }
    }
    out
}

/// The answer a fresh in-process system with the daemon's default
/// configuration gives for `updates` — the bit-identical reference.
fn baseline(nodes: u64, updates: &[(u32, u32, bool)]) -> BoruvkaOutcome {
    let mut config = ShardConfig::in_ram(nodes, 1);
    config.seed = 0x5EED_1E55;
    config.workers_per_shard = 2;
    let mut system = ShardedGraphZeppelin::in_process(config).expect("baseline system");
    for &(u, v, d) in updates {
        system.update(u, v, d).expect("baseline update");
    }
    let outcome = system.spanning_forest().expect("baseline query");
    system.shutdown().expect("baseline shutdown");
    outcome
}

fn forest_pairs(outcome: &BoruvkaOutcome) -> Vec<(u32, u32)> {
    outcome.forest.iter().map(|e| (e.u(), e.v())).collect()
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn frame_bytes(msg: &WireMessage) -> Vec<u8> {
    let mut buf = Vec::new();
    msg.write_to(&mut buf).expect("encode frame");
    buf
}

/// A raw socket speaking whatever bytes the test wants — the hostile
/// client.
fn raw_connect(handle: &ServeHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
}

fn raw_handshake(handle: &ServeHandle) -> TcpStream {
    let mut stream = raw_connect(handle);
    stream.write_all(&frame_bytes(&WireMessage::ClientHello)).unwrap();
    match WireMessage::read_from(&mut stream).expect("hello ack") {
        WireMessage::ClientHelloAck { .. } => stream,
        other => panic!("expected ClientHelloAck, got {}", other.name()),
    }
}

#[test]
fn serve_round_trips_updates_and_queries() {
    const NODES: u64 = 64;
    let updates = edge_stream(NODES as u32, 300, 11);
    let expected = baseline(NODES, &updates);

    for unix in [false, true] {
        let sock_dir;
        let mut options = if unix {
            sock_dir = Some(gz_testutil::TempDir::new("gz-serve-sock"));
            let path = sock_dir.as_ref().unwrap().join("serve.sock");
            let mut o = ServeOptions::new(ServeListen::Unix(path), NODES);
            o.timeout_ms = Some(5_000);
            o
        } else {
            sock_dir = None;
            tcp_options(NODES)
        };
        options.staleness = 0;
        let handle = serve_start(&options).expect("start daemon");

        let mut client = if unix {
            ServeClient::connect_unix(std::path::Path::new(handle.addr()), &client_timeouts())
                .expect("connect over unix socket")
        } else {
            connect(&handle)
        };
        assert_eq!(client.num_nodes(), NODES);
        assert_eq!(client.acked(), 0);

        // Ship in uneven batches; acks are cumulative across them.
        let mut sent = 0;
        for chunk in updates.chunks(37) {
            let acked = client.send_updates(chunk).expect("batch acked");
            sent += chunk.len() as u64;
            assert_eq!(acked, sent);
        }
        assert_eq!(handle.acked(), updates.len() as u64);

        assert_eq!(
            client.query_num_components().expect("num components"),
            expected.num_components() as u64
        );
        assert_eq!(client.query_components().expect("components"), expected.labels);
        assert_eq!(client.query_forest().expect("forest"), forest_pairs(&expected));

        client.shutdown().expect("clean goodbye");
        wait_until("connection to retire", || handle.active_clients() == 0);
        let stats = handle.stats();
        assert_eq!(stats.accepted(), 1);
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.killed_malformed(), 0);
        let summary = handle.shutdown().expect("daemon shutdown");
        assert!(summary.contains("updates acked"), "{summary}");
        drop(sock_dir);
    }
}

#[test]
fn hostile_clients_die_alone_and_the_daemon_keeps_serving() {
    const NODES: u64 = 64;
    let updates = edge_stream(NODES as u32, 200, 23);
    let expected = baseline(NODES, &updates);

    let options = tcp_options(NODES);
    let handle = serve_start(&options).expect("start daemon");

    // A well-behaved client loads the real state first.
    let mut good = connect(&handle);
    good.send_updates(&updates).expect("good batch");

    // 1. Mid-batch disconnect: half an UpdateBatch frame, then gone.
    {
        let mut stream = raw_handshake(&handle);
        let frame = frame_bytes(&WireMessage::UpdateBatch {
            updates: vec![WireUpdate { u: 1, v: 2, is_delete: false }; 8],
        });
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(stream);
    }

    // 2. Garbage frame: wrong magic, sized exactly like the 8-byte frame
    // header so the daemon's typed ErrorReply is not lost to a reset.
    {
        let mut stream = raw_connect(&handle);
        stream.write_all(b"HTTP/1.1").unwrap();
        match WireMessage::read_from(&mut stream).expect("typed error reply") {
            WireMessage::ErrorReply { message } => {
                assert!(!message.is_empty(), "empty error message");
            }
            other => panic!("expected ErrorReply, got {}", other.name()),
        }
        // The daemon killed the connection right after the reply.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);
    }

    // 3. Protocol violation: a second ClientHello after the handshake.
    {
        let mut stream = raw_handshake(&handle);
        stream.write_all(&frame_bytes(&WireMessage::ClientHello)).unwrap();
        match WireMessage::read_from(&mut stream).expect("typed error reply") {
            WireMessage::ErrorReply { message } => {
                assert!(message.contains("ClientHello"), "{message}");
            }
            other => panic!("expected ErrorReply, got {}", other.name()),
        }
    }

    // 4. Invalid updates: out-of-range endpoint, then a self-loop. Each
    // is refused before anything is logged or applied, with the reason.
    for (bad, needle) in [((5_000u32, 1u32), "out of range"), ((7, 7), "self-loop")] {
        let mut client = connect(&handle);
        match client.send_updates(&[(bad.0, bad.1, false)]) {
            Err(ClientError::Rejected(msg)) => assert!(msg.contains(needle), "{msg}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    // Only the one well-behaved connection survives, and the state it
    // loaded is untouched by any of the rejected traffic.
    wait_until("hostile connections to retire", || handle.active_clients() == 1);
    assert_eq!(good.query_components().expect("components"), expected.labels);
    assert_eq!(good.query_forest().expect("forest"), forest_pairs(&expected));
    assert_eq!(handle.acked(), updates.len() as u64);

    let stats = handle.stats();
    // Garbage frame, second hello, out-of-range, self-loop.
    assert_eq!(stats.killed_malformed(), 4);
    assert_eq!(stats.shed(), 0);
    assert_eq!(stats.accepted(), 6);

    good.shutdown().expect("clean goodbye");
    wait_until("all connections to retire", || handle.active_clients() == 0);
    handle.shutdown().expect("daemon shutdown");
}

#[test]
fn stalled_reader_hits_the_write_deadline() {
    const NODES: u64 = 1024;
    let mut options = tcp_options(NODES);
    options.timeout_ms = Some(300);
    let handle = serve_start(&options).expect("start daemon");

    // Connect some state so queries are non-trivial.
    let mut feeder = connect(&handle);
    feeder.send_updates(&edge_stream(NODES as u32, 100, 3)).expect("feed");

    // The stall: pipeline a pile of Components queries (4 KiB replies)
    // and never read a byte. The daemon's reply writes fill the socket
    // buffers, block, and must die on the write deadline — not forever.
    let mut stalled = raw_handshake(&handle);
    let query = frame_bytes(&WireMessage::Query { kind: QueryKind::Components });
    let mut burst = Vec::new();
    for _ in 0..2_000 {
        burst.extend_from_slice(&query);
    }
    stalled.write_all(&burst).expect("queries buffered");

    wait_until("the write deadline to fire", || handle.stats().timed_out() >= 1);

    // The daemon is still fully alive for everyone else.
    let mut probe = connect(&handle);
    let labels = probe.query_components().expect("labels");
    assert_eq!(labels.len(), NODES as usize);
    probe.shutdown().expect("probe goodbye");
    feeder.shutdown().expect("feeder goodbye");
    drop(stalled);
    wait_until("connections to retire", || handle.active_clients() == 0);
    handle.shutdown().expect("daemon shutdown");
}

#[test]
fn flood_past_max_clients_is_shed_with_busy() {
    const NODES: u64 = 16;
    let mut options = tcp_options(NODES);
    options.max_clients = 2;
    let handle = serve_start(&options).expect("start daemon");

    let first = connect(&handle);
    let second = connect(&handle);
    wait_until("both clients admitted", || handle.active_clients() == 2);

    // Every connection past the limit gets the typed refusal, with the
    // daemon's occupancy in it, and is never admitted.
    for i in 0..5 {
        match ServeClient::connect_tcp(handle.addr(), &client_timeouts()) {
            Err(ClientError::Busy { active, max_clients }) => {
                assert_eq!((active, max_clients), (2, 2), "flood attempt {i}");
            }
            other => panic!("flood attempt {i}: expected Busy, got {other:?}"),
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.shed(), 5);
    assert_eq!(stats.accepted(), 2);

    // Freeing a slot re-opens admission.
    second.shutdown().expect("second goodbye");
    wait_until("slot to free", || handle.active_clients() == 1);
    let mut third = connect(&handle);
    assert_eq!(third.query_num_components().expect("query"), NODES);
    assert_eq!(handle.stats().accepted(), 3);

    first.shutdown().expect("first goodbye");
    third.shutdown().expect("third goodbye");
    wait_until("connections to retire", || handle.active_clients() == 0);
    handle.shutdown().expect("daemon shutdown");
}

#[test]
fn durable_serve_resumes_bit_identically_in_process() {
    const NODES: u64 = 64;
    let updates = edge_stream(NODES as u32, 400, 41);
    let expected = baseline(NODES, &updates);
    let state = gz_testutil::TempDir::new("gz-serve-state");

    let mut options = tcp_options(NODES);
    options.dir = Some(state.path().to_path_buf());
    options.checkpoint_ms = 25;

    {
        let handle = serve_start(&options).expect("start daemon");
        let mut client = connect(&handle);
        for chunk in updates.chunks(64) {
            client.send_updates(chunk).expect("batch acked");
        }
        client.shutdown().expect("goodbye");
        wait_until("connection to retire", || handle.active_clients() == 0);
        handle.shutdown().expect("daemon shutdown");
    }

    // A blind restart over existing state is refused...
    let err = serve_start(&options).err().expect("must refuse existing state");
    assert!(err.to_string().contains("--resume"), "{err}");
    // ...and so is resuming with a mismatched universe.
    let mut wrong = options.clone();
    wrong.resume = true;
    wrong.nodes = NODES * 2;
    let err = serve_start(&wrong).err().expect("must refuse mismatched nodes");
    assert!(err.to_string().contains("was written for"), "{err}");

    // The real resume answers exactly like the uninterrupted baseline.
    options.resume = true;
    let handle = serve_start(&options).expect("resume daemon");
    let mut client = connect(&handle);
    assert_eq!(client.acked(), updates.len() as u64, "handshake reports the acked prefix");
    assert_eq!(client.query_num_components().expect("num"), expected.num_components() as u64);
    assert_eq!(client.query_components().expect("components"), expected.labels);
    assert_eq!(client.query_forest().expect("forest"), forest_pairs(&expected));

    // And it keeps ingesting: more updates land on the recovered state.
    let more = edge_stream(NODES as u32, 100, 97);
    client.send_updates(&more).expect("post-resume batch");
    let mut full = updates.clone();
    full.extend_from_slice(&more);
    let expected_full = baseline(NODES, &full);
    assert_eq!(client.query_components().expect("components"), expected_full.labels);

    client.shutdown().expect("goodbye");
    wait_until("connection to retire", || handle.active_clients() == 0);
    handle.shutdown().expect("daemon shutdown");
}

#[test]
fn queries_overlap_ingestion_without_blocking_it() {
    const NODES: u64 = 128;
    // Default staleness 0: every query reseals a fresh epoch, so the
    // reader exercises seal-while-ingesting continuously and the final
    // query is guaranteed to cover everything acked.
    let options = tcp_options(NODES);
    let handle = serve_start(&options).expect("start daemon");

    let addr = handle.addr().to_string();
    let writer = std::thread::spawn(move || {
        let mut client =
            ServeClient::connect_tcp(&addr, &client_timeouts()).expect("writer connect");
        for chunk in edge_stream(NODES as u32, 600, 5).chunks(16) {
            client.send_updates(chunk).expect("writer batch");
        }
        client.shutdown().expect("writer goodbye");
    });

    let mut reader = connect(&handle);
    let mut answers = 0u64;
    while !writer.is_finished() {
        let labels = reader.query_components().expect("overlapped query");
        assert_eq!(labels.len(), NODES as usize);
        answers += 1;
    }
    writer.join().expect("writer thread");
    assert!(answers > 0, "no query overlapped ingestion");

    // A final fresh-epoch query sees everything the writer acked.
    let expected = baseline(NODES, &edge_stream(NODES as u32, 600, 5));
    let mut fresh = connect(&handle);
    assert_eq!(fresh.query_components().expect("final query"), expected.labels);

    reader.shutdown().expect("reader goodbye");
    fresh.shutdown().expect("fresh goodbye");
    wait_until("connections to retire", || handle.active_clients() == 0);
    handle.shutdown().expect("daemon shutdown");
}
