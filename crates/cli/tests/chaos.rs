//! Chaos lane: multi-process fault-tolerance test for sharded ingestion
//! (DESIGN.md §14).
//!
//! For each configuration in the matrix (shards × worker store), the test
//! runs the same stream twice through real `gz` processes:
//!
//! 1. **Baseline** — K `gz shard-worker` processes plus a coordinator
//!    (`gz components --shards K --connect ... --respawn
//!    --checkpoint-every N --stats --forest`), uninterrupted.
//! 2. **Chaos** — the same setup, but one worker is SIGKILLed mid-ingest
//!    (at a per-configuration point after its first durable checkpoint
//!    lands) and restarted with `--resume <ckpt>` on the same port. The
//!    coordinator must detect the death, reconnect, resync from the
//!    restored checkpoint seq, and replay exactly the batches the worker
//!    never absorbed.
//!
//! Because CubeSketch updates are XOR-linear, replaying the un-absorbed
//! tail reproduces the lost state *bit for bit*: the chaos run must emit
//! the identical component count, update/batch totals, and spanning
//! forest as the baseline — not merely an equivalent answer. The recovery
//! counters printed by `--stats` are asserted exactly where the protocol
//! makes them deterministic (checkpoint rounds, replays) and bounded
//! where it does not (batches replayed, reconnect attempts).
//!
//! The test spawns real processes; on environments where that is not
//! possible it logs a skip instead of failing.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_gz");
const NODES: u64 = 256;
const CHECKPOINT_EVERY: u64 = 16;
const BATCH_UPDATES: u64 = 64;

/// A running `gz shard-worker` process whose bound port has been parsed
/// off its stdout. The drain thread keeps the pipe open so the worker's
/// final summary line never hits a closed fd.
struct Worker {
    child: Child,
    port: u16,
    drain: thread::JoinHandle<String>,
}

impl Worker {
    fn summary(mut self) -> (std::process::ExitStatus, String) {
        let status = self.child.wait().expect("wait worker");
        (status, self.drain.join().expect("join drain"))
    }

    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL worker");
        self.child.wait().expect("reap worker");
        // The drain thread ends when the pipe closes.
        self.drain.join().ok();
    }
}

fn worker_args(
    listen: &str,
    shards: u32,
    index: u32,
    store: &str,
    dir: &Path,
    ckpt: &Path,
    resume: bool,
) -> Vec<String> {
    let mut args = vec![
        "shard-worker".into(),
        "--listen".into(),
        listen.into(),
        "--nodes".into(),
        NODES.to_string(),
        "--shards".into(),
        shards.to_string(),
        "--index".into(),
        index.to_string(),
        "--store".into(),
        store.into(),
        if resume { "--resume".into() } else { "--checkpoint".into() },
        ckpt.display().to_string(),
    ];
    if store == "disk" {
        // A resumed worker rebuilds its store from the checkpoint, so it
        // gets a fresh store directory rather than the dead process's.
        let suffix = if resume { "-resumed" } else { "" };
        args.push("--dir".into());
        args.push(dir.join(format!("store{index}{suffix}")).display().to_string());
    }
    args
}

/// Spawn a worker and block until it announces its bound address. Returns
/// `Err` only for spawn failures (the environment cannot start processes);
/// a worker that exits before announcing (e.g. a bind race on restart)
/// comes back as `Ok(None)` so the caller can retry.
fn spawn_worker(args: &[String]) -> std::io::Result<Option<Worker>> {
    let mut child =
        Command::new(BIN).args(args).stdout(Stdio::piped()).stderr(Stdio::inherit()).spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read worker stdout");
        if n == 0 {
            child.wait().ok();
            return Ok(None);
        }
        if let Some(idx) = line.find("listening on ") {
            let addr = line[idx + "listening on ".len()..].trim_end();
            let port: u16 = addr.rsplit(':').next().expect("port").parse().expect("numeric port");
            let drain = thread::spawn(move || {
                let mut rest = String::new();
                reader.read_to_string(&mut rest).ok();
                rest
            });
            return Ok(Some(Worker { child, port, drain }));
        }
    }
}

/// Restart a killed worker on its old (now free) port, retrying through
/// transient bind races.
fn respawn_worker(args: &[String]) -> Worker {
    for _ in 0..100 {
        if let Some(w) = spawn_worker(args).expect("spawn succeeded once; must keep working") {
            return w;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("worker failed to rebind its port after 100 attempts");
}

struct CoordinatorOutput {
    summary: String,
    recovery: RecoveryCounters,
    forest: Vec<String>,
    batches_shipped: u64,
}

#[derive(Debug, PartialEq)]
struct RecoveryCounters {
    checkpoints: u64,
    replays: u64,
    batches_replayed: u64,
    reconnect_attempts: u64,
}

/// Parse the coordinator's stdout: summary line, `recovery: ...` counters
/// line, then one `u v` line per forest edge.
fn parse_coordinator(out: &str) -> CoordinatorOutput {
    let mut lines = out.lines();
    let summary = lines.next().expect("summary line").to_string();
    let batches_shipped = summary
        .split(", ")
        .find_map(|part| part.strip_suffix("batches shipped)"))
        .expect("batches shipped in summary")
        .trim()
        .parse()
        .expect("numeric batch count");
    let recovery_line = lines.next().expect("recovery line");
    assert!(recovery_line.starts_with("recovery: "), "unexpected line: {recovery_line}");
    let nums: Vec<u64> = recovery_line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    assert_eq!(nums.len(), 4, "recovery line shape: {recovery_line}");
    CoordinatorOutput {
        summary,
        recovery: RecoveryCounters {
            checkpoints: nums[0],
            replays: nums[1],
            batches_replayed: nums[2],
            reconnect_attempts: nums[3],
        },
        forest: lines.map(|l| l.to_string()).collect(),
        batches_shipped,
    }
}

fn coordinator_args(stream: &Path, shards: u32, addrs: &[String]) -> Vec<String> {
    vec![
        "components".into(),
        stream.display().to_string(),
        "--shards".into(),
        shards.to_string(),
        "--connect".into(),
        addrs.join(","),
        "--respawn".into(),
        "--checkpoint-every".into(),
        CHECKPOINT_EVERY.to_string(),
        "--batch-updates".into(),
        BATCH_UPDATES.to_string(),
        "--stats".into(),
        "--forest".into(),
    ]
}

fn ckpt_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("shard{index}.ckpt"))
}

struct RunResult {
    coordinator: CoordinatorOutput,
    worker_summaries: Vec<String>,
}

/// One full coordinated run. `kill_plan = Some((victim, delay))` SIGKILLs
/// that worker `delay` after its first checkpoint file lands, then
/// restarts it with `--resume` on the same port.
fn run_cluster(
    stream: &Path,
    shards: u32,
    store: &str,
    dir: &Path,
    kill_plan: Option<(u32, Duration)>,
) -> Option<RunResult> {
    let mut workers = Vec::new();
    for i in 0..shards {
        let args = worker_args("127.0.0.1:0", shards, i, store, dir, &ckpt_path(dir, i), false);
        match spawn_worker(&args) {
            Err(e) => {
                eprintln!("skipping chaos test: cannot spawn gz processes: {e}");
                return None;
            }
            Ok(None) => panic!("worker {i} exited before announcing its port"),
            Ok(Some(w)) => workers.push(w),
        }
    }
    let addrs: Vec<String> = workers.iter().map(|w| format!("127.0.0.1:{}", w.port)).collect();

    let coordinator = Command::new(BIN)
        .args(coordinator_args(stream, shards, &addrs))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn coordinator");

    if let Some((victim, delay)) = kill_plan {
        let ckpt = ckpt_path(dir, victim);
        let deadline = Instant::now() + Duration::from_secs(60);
        while !ckpt.exists() {
            assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
            thread::sleep(Duration::from_micros(200));
        }
        thread::sleep(delay);
        let port = workers[victim as usize].port;
        let old = workers.remove(victim as usize);
        old.sigkill();
        let args =
            worker_args(&format!("127.0.0.1:{port}"), shards, victim, store, dir, &ckpt, true);
        workers.insert(victim as usize, respawn_worker(&args));
    }

    let out = coordinator.wait_with_output().expect("coordinator output");
    assert!(out.status.success(), "coordinator failed: {}\n", String::from_utf8_lossy(&out.stdout),);
    let coordinator = parse_coordinator(&String::from_utf8_lossy(&out.stdout));

    let mut worker_summaries = Vec::new();
    for (i, w) in workers.into_iter().enumerate() {
        let (status, summary) = w.summary();
        assert!(status.success(), "worker {i} failed: {summary}");
        worker_summaries.push(summary);
    }
    Some(RunResult { coordinator, worker_summaries })
}

#[test]
fn killed_worker_recovers_bit_identically() {
    let root = gz_testutil::TempDir::new("gz-chaos");
    let stream = root.path().join("chaos.gzs");

    // Large enough that the cadence fires many times mid-stream (~250+
    // routed batches at --batch-updates 64), so the kill always lands
    // while ingestion is still in flight.
    match Command::new(BIN)
        .args(["generate", "--er", "256x8000", "--seed", "7", "--out"])
        .arg(&stream)
        .output()
    {
        Err(e) => {
            eprintln!("skipping chaos test: cannot spawn gz processes: {e}");
            return;
        }
        Ok(out) => assert!(out.status.success(), "generate failed"),
    }

    // Debug builds (tier-1 `cargo test`) run one configuration as a smoke
    // check; the release chaos lane in CI sweeps the full matrix. The
    // per-configuration delay varies the kill point relative to the first
    // checkpoint, and the victim index varies which shard dies.
    let matrix: &[(u32, &str, u32, u64)] = if cfg!(debug_assertions) {
        &[(2, "ram", 1, 0)]
    } else {
        &[(2, "ram", 1, 0), (3, "ram", 2, 3), (2, "disk", 0, 1), (3, "disk", 1, 7)]
    };

    for &(shards, store, victim, delay_ms) in matrix {
        let label = format!("{shards} shards, {store} store, kill {victim} +{delay_ms}ms");
        let base_dir = gz_testutil::TempDir::new("gz-chaos-base");
        let Some(baseline) = run_cluster(&stream, shards, store, base_dir.path(), None) else {
            return; // spawn unavailable; already logged
        };
        let chaos_dir = gz_testutil::TempDir::new("gz-chaos-kill");
        let Some(chaos) = run_cluster(
            &stream,
            shards,
            store,
            chaos_dir.path(),
            Some((victim, Duration::from_millis(delay_ms))),
        ) else {
            return;
        };

        // The recovered run is indistinguishable from the uninterrupted
        // one: same component count, same totals, same spanning forest.
        assert_eq!(baseline.coordinator.summary, chaos.coordinator.summary, "{label}");
        assert_eq!(baseline.coordinator.forest, chaos.coordinator.forest, "{label}");
        assert!(!baseline.coordinator.forest.is_empty(), "{label}: forest printed");

        // Counter exactness. Checkpoint rounds are driven by the routed
        // batch count, which the kill cannot change; a single kill is a
        // single replay. Batches replayed and reconnect attempts depend on
        // when the death is detected, so they are bounded, not exact.
        let b = &baseline.coordinator.recovery;
        let c = &chaos.coordinator.recovery;
        assert_eq!(b.replays, 0, "{label}: baseline {b:?}");
        assert_eq!(b.reconnect_attempts, 0, "{label}: baseline {b:?}");
        assert_eq!(b.batches_replayed, 0, "{label}: baseline {b:?}");
        assert!(b.checkpoints >= shards as u64, "{label}: baseline {b:?}");
        assert_eq!(c.checkpoints, b.checkpoints, "{label}: chaos {c:?}");
        assert_eq!(c.replays, 1, "{label}: chaos {c:?}");
        assert!(c.reconnect_attempts >= 1, "{label}: chaos {c:?}");
        // Zero is legitimate here: a worker killed immediately after a
        // checkpoint ack may die before any new batch is logged for it.
        assert!(c.batches_replayed <= chaos.coordinator.batches_shipped, "{label}: chaos {c:?}");

        // Every worker (including the resumed victim) served cleanly and
        // reported its checkpoint count.
        for (i, s) in chaos.worker_summaries.iter().enumerate() {
            assert!(s.contains("checkpoints"), "{label}: worker {i} summary: {s}");
        }
        for s in &baseline.worker_summaries {
            assert!(s.contains("checkpoints"), "{label}: baseline worker summary: {s}");
        }
    }
}
