//! Crash lane for the `gz serve` daemon (DESIGN.md §15).
//!
//! Two process-level scenarios against real `gz serve` processes:
//!
//! 1. **SIGKILL mid-ingest.** A client streams batches at the daemon and
//!    the test SIGKILLs it partway through, with checkpoint rounds
//!    cutting every few milliseconds underneath. The restarted daemon
//!    (`--resume`) must report an acked count `R` with
//!    `last client-observed ack ≤ R ≤ updates sent` — an ack is a
//!    durability promise, so nothing acked may be lost — and its
//!    components, label vector, and spanning forest must be *bit
//!    identical* to a fresh in-process system fed exactly the first `R`
//!    updates. XOR-linearity makes that equality exact, not approximate:
//!    any divergence means a lost or double-applied update.
//! 2. **SIGTERM graceful.** The daemon checkpoints and exits 0; a resume
//!    then recovers *every* update with no WAL tail dependence.
//!
//! Debug builds run the smoke version; the release CI lane runs the same
//! tests with a larger stream. Environments that cannot spawn processes
//! log a skip instead of failing, like `chaos.rs`.

#![cfg(unix)]

use graph_zeppelin::{BoruvkaOutcome, ShardConfig, ShardedGraphZeppelin, TransportTimeouts};
use gz_cli::client::{ClientError, ServeClient};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_gz");
const NODES: u64 = 256;
const BATCH: usize = 32;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

/// A running `gz serve` process with its announced address parsed off
/// stdout; the drain thread keeps the pipe open for the shutdown summary.
struct Daemon {
    child: Child,
    addr: String,
    drain: thread::JoinHandle<String>,
}

impl Daemon {
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
        self.drain.join().ok();
    }

    fn sigterm_and_wait(mut self) -> (std::process::ExitStatus, String) {
        let rc = unsafe { kill(self.child.id() as i32, SIGTERM) };
        assert_eq!(rc, 0, "kill(SIGTERM) failed");
        let status = self.child.wait().expect("wait daemon");
        (status, self.drain.join().expect("join drain"))
    }
}

fn serve_args(state: &Path, resume: bool) -> Vec<String> {
    let mut args = vec![
        "serve".into(),
        "--listen".into(),
        "127.0.0.1:0".into(),
        "--nodes".into(),
        NODES.to_string(),
        "--dir".into(),
        state.display().to_string(),
        // Aggressive cadence so rounds land mid-ingest and the kill hits
        // a WAL tail on top of a real checkpoint, not round 0.
        "--checkpoint-ms".into(),
        "10".into(),
        "--timeout-ms".into(),
        "10000".into(),
    ];
    if resume {
        args.push("--resume".into());
    }
    args
}

/// Spawn a daemon and block until it announces its bound address.
/// `Err` = the environment cannot spawn processes (caller skips).
fn spawn_daemon(args: &[String]) -> std::io::Result<Daemon> {
    let mut child =
        Command::new(BIN).args(args).stdout(Stdio::piped()).stderr(Stdio::inherit()).spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon exited before announcing its address");
        if let Some(idx) = line.find("listening on ") {
            let addr = line[idx + "listening on ".len()..].trim_end().to_string();
            let drain = thread::spawn(move || {
                let mut rest = String::new();
                reader.read_to_string(&mut rest).ok();
                rest
            });
            return Ok(Daemon { child, addr, drain });
        }
    }
}

fn client_timeouts() -> TransportTimeouts {
    let d = Some(Duration::from_secs(10));
    TransportTimeouts { connect: d, read: d, write: d }
}

/// Connect with retries: a freshly announced daemon is accepting, but the
/// resumed one may still be replaying its WAL when the test dials it.
fn connect(addr: &str) -> ServeClient {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match ServeClient::connect_tcp(addr, &client_timeouts()) {
            Ok(client) => return client,
            Err(e) => {
                assert!(Instant::now() < deadline, "could not connect to {addr}: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Deterministic pseudo-random insert stream (same generator as the
/// in-process suite).
fn edge_stream(n: u32, count: usize, salt: u64) -> Vec<(u32, u32, bool)> {
    let mut x = salt | 1;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % n as u64) as u32;
        let v = ((x >> 13) % n as u64) as u32;
        if u != v {
            out.push((u, v, false));
        }
    }
    out
}

/// What a fresh system with the daemon's configuration answers after
/// exactly `updates` — the bit-identical reference.
fn baseline(updates: &[(u32, u32, bool)]) -> BoruvkaOutcome {
    let mut config = ShardConfig::in_ram(NODES, 1);
    config.seed = 0x5EED_1E55;
    config.workers_per_shard = 2;
    let mut system = ShardedGraphZeppelin::in_process(config).expect("baseline system");
    for &(u, v, d) in updates {
        system.update(u, v, d).expect("baseline update");
    }
    let outcome = system.spanning_forest().expect("baseline query");
    system.shutdown().expect("baseline shutdown");
    outcome
}

fn assert_matches_baseline(client: &mut ServeClient, expected: &BoruvkaOutcome, label: &str) {
    assert_eq!(
        client.query_num_components().expect("num components"),
        expected.num_components() as u64,
        "{label}: component count"
    );
    assert_eq!(client.query_components().expect("components"), expected.labels, "{label}: labels");
    let forest: Vec<(u32, u32)> = expected.forest.iter().map(|e| (e.u(), e.v())).collect();
    assert_eq!(client.query_forest().expect("forest"), forest, "{label}: forest");
}

fn stream_len() -> usize {
    if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    }
}

#[test]
fn sigkilled_daemon_resumes_bit_identically_for_the_acked_prefix() {
    let state = gz_testutil::TempDir::new("gz-serve-chaos");
    let updates = edge_stream(NODES as u32, stream_len(), 77);

    let daemon = match spawn_daemon(&serve_args(state.path(), false)) {
        Err(e) => {
            eprintln!("skipping serve chaos test: cannot spawn gz processes: {e}");
            return;
        }
        Ok(d) => d,
    };

    // Stream batches until the kill point; remember the last ack the
    // daemon actually promised us.
    let kill_at = updates.len() * 3 / 5;
    let mut client = connect(&daemon.addr);
    let mut last_ack = 0u64;
    let mut sent = 0u64;
    for chunk in updates[..kill_at].chunks(BATCH) {
        last_ack = client.send_updates(chunk).expect("pre-kill batch");
        sent += chunk.len() as u64;
        assert_eq!(last_ack, sent);
    }
    daemon.sigkill();
    // The dead daemon's socket surfaces as an error on the next use.
    assert!(client.send_updates(&updates[kill_at..kill_at + 1]).is_err(), "daemon is gone");

    // Restart on a fresh port; the old state directory is the contract.
    let resumed = spawn_daemon(&serve_args(state.path(), true)).expect("respawn daemon");
    let mut client = connect(&resumed.addr);

    // Ack soundness: everything promised survived; nothing unsent
    // appeared.
    let recovered = client.acked();
    assert!(
        recovered >= last_ack,
        "acked updates lost in the crash: promised {last_ack}, recovered {recovered}"
    );
    assert!(recovered <= sent, "recovered {recovered} updates but only {sent} were ever sent");

    // Bit-identical recovery: the resumed daemon answers exactly like a
    // fresh system fed the first `recovered` updates.
    let expected = baseline(&updates[..recovered as usize]);
    assert_matches_baseline(&mut client, &expected, "post-SIGKILL resume");

    // The recovered daemon is a fully live daemon: finish the stream and
    // check the final answer too.
    for chunk in updates[recovered as usize..].chunks(BATCH) {
        client.send_updates(chunk).expect("post-resume batch");
    }
    let expected_full = baseline(&updates);
    assert_matches_baseline(&mut client, &expected_full, "post-resume completion");
    match client.shutdown() {
        Ok(()) | Err(ClientError::Io(_)) => {}
        Err(e) => panic!("goodbye failed: {e}"),
    }

    let (status, summary) = resumed.sigterm_and_wait();
    assert!(status.success(), "resumed daemon exited {status}: {summary}");
    assert!(summary.contains("updates acked"), "missing shutdown summary: {summary}");
}

#[test]
fn sigterm_checkpoints_everything_and_exits_cleanly() {
    let state = gz_testutil::TempDir::new("gz-serve-term");
    let updates = edge_stream(NODES as u32, stream_len() / 2, 13);

    let daemon = match spawn_daemon(&serve_args(state.path(), false)) {
        Err(e) => {
            eprintln!("skipping serve chaos test: cannot spawn gz processes: {e}");
            return;
        }
        Ok(d) => d,
    };
    let mut client = connect(&daemon.addr);
    for chunk in updates.chunks(BATCH) {
        client.send_updates(chunk).expect("batch");
    }
    client.shutdown().expect("goodbye");

    let (status, summary) = daemon.sigterm_and_wait();
    assert!(status.success(), "daemon exited {status}: {summary}");
    assert!(
        summary.contains(&format!("{} updates acked", updates.len())),
        "summary does not account for every update: {summary}"
    );

    // Graceful shutdown loses nothing: the resume acks every update and
    // answers bit-identically.
    let resumed = spawn_daemon(&serve_args(state.path(), true)).expect("respawn daemon");
    let mut client = connect(&resumed.addr);
    assert_eq!(client.acked(), updates.len() as u64, "graceful shutdown must lose nothing");
    let expected = baseline(&updates);
    assert_matches_baseline(&mut client, &expected, "post-SIGTERM resume");
    client.shutdown().expect("goodbye");

    let (status, summary) = resumed.sigterm_and_wait();
    assert!(status.success(), "resumed daemon exited {status}: {summary}");
}
