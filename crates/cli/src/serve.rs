//! `gz serve` — a crash-safe long-running front door (DESIGN.md §15).
//!
//! One resident [`ShardedGraphZeppelin`] serves many concurrent TCP or
//! Unix-socket clients speaking the wire protocol's front-door dialect
//! (`ClientHello`/`UpdateBatch`/`Query`, wire v7). The daemon's robustness
//! contract:
//!
//! - **Backpressure, not collapse.** Ingest flows through the shard
//!   pipelines' bounded gutter work queues; when they are full the
//!   *ingesting* connection blocks inside its own `UpdateBatch` round trip.
//!   No socket I/O ever happens under the ingest lock, so a slow or hung
//!   client cannot stall anyone else's replies.
//! - **Admission control.** Past `--max-clients`, new connections get a
//!   typed `Busy` frame and are dropped instead of being accepted and
//!   starved.
//! - **Deadlines.** Per-connection read/write timeouts
//!   ([`TransportTimeouts`]) turn half-open peers and stalled readers into
//!   clean connection kills instead of pinned serve threads.
//! - **Malformed frames kill the offender only.** A garbage frame or
//!   protocol violation gets a best-effort `ErrorReply` and the connection
//!   dies; the daemon keeps serving everyone else.
//! - **Durability.** With `--dir`, every acked batch is first fsynced to an
//!   [`UpdateWal`]; a background thread periodically cuts versioned GZS2
//!   checkpoint rounds ([`ShardedGraphZeppelin::checkpoint_shards_to`]) and
//!   flips a [`ServeManifest`] atomically, then rotates the WAL. Restart
//!   with `--resume` restores the manifest's round and replays the WAL
//!   tail: every acked update is recovered, bit-identically, because the
//!   sketches are linear and the WAL is replayed in append order on top of
//!   a checkpoint that covers exactly the updates before it.
//! - **Graceful shutdown.** SIGINT/SIGTERM (or
//!   [`ServeHandle::shutdown`]) stops admissions, force-closes clients,
//!   cuts one final checkpoint round, and exits 0.
//!
//! Queries run on sealed epochs ([`ShardedGraphZeppelin::begin_epoch`]) so
//! they overlap ingestion from other connections; an epoch is reused while
//! it lags fewer than `--staleness` acked updates.

use graph_zeppelin::{
    GzError, ServeManifest, ShardConfig, ShardedEpoch, ShardedGraphZeppelin, TransportTimeouts,
    UpdateWal,
};
use gz_gutters::ServeStats;
use gz_stream::wire::{QueryAnswer, QueryKind, WireMessage, WireUpdate};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeListen {
    /// TCP `host:port` (port 0 picks a free port).
    Tcp(String),
    /// Unix domain socket path.
    Unix(PathBuf),
}

/// Everything `gz serve` needs, parsed or constructed.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Listen address.
    pub listen: ServeListen,
    /// Vertex universe size.
    pub nodes: u64,
    /// Shard count of the resident system.
    pub shards: u32,
    /// Master seed.
    pub seed: u64,
    /// Graph Workers per shard.
    pub workers: usize,
    /// Admission limit: connections past this are shed with `Busy`.
    pub max_clients: u32,
    /// Durability directory (`None` = in-memory only, nothing survives).
    pub dir: Option<PathBuf>,
    /// Resume from existing state under `dir`.
    pub resume: bool,
    /// Background checkpoint period in milliseconds.
    pub checkpoint_ms: u64,
    /// Per-connection read/write deadline in milliseconds (`None` = block
    /// forever).
    pub timeout_ms: Option<u64>,
    /// Reuse a sealed query epoch while it lags at most this many acked
    /// updates (0 = reseal whenever anything new was acked).
    pub staleness: u64,
    /// Print per-connection counters in the shutdown summary.
    pub stats: bool,
}

impl ServeOptions {
    /// Defaults for everything but the listen address and universe size.
    pub fn new(listen: ServeListen, nodes: u64) -> ServeOptions {
        ServeOptions {
            listen,
            nodes,
            shards: 1,
            seed: 0x5EED_1E55,
            workers: 2,
            max_clients: 64,
            dir: None,
            resume: false,
            checkpoint_ms: 1000,
            timeout_ms: Some(30_000),
            staleness: 0,
            stats: false,
        }
    }

    fn timeouts(&self) -> TransportTimeouts {
        match self.timeout_ms {
            // 0 = explicit "no deadline".
            None | Some(0) => TransportTimeouts::default(),
            Some(ms) => {
                let d = Duration::from_millis(ms);
                TransportTimeouts { connect: Some(d), read: Some(d), write: Some(d) }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client streams and listeners (TCP or Unix, one code path)
// ---------------------------------------------------------------------------

/// An accepted client connection.
#[derive(Debug)]
pub enum ClientStream {
    /// TCP client.
    Tcp(TcpStream),
    /// Unix-socket client.
    Unix(UnixStream),
}

impl ClientStream {
    fn apply_timeouts(&self, t: &TransportTimeouts) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => {
                s.set_read_timeout(t.read)?;
                s.set_write_timeout(t.write)
            }
            ClientStream::Unix(s) => {
                s.set_read_timeout(t.read)?;
                s.set_write_timeout(t.write)
            }
        }
    }

    fn try_clone(&self) -> std::io::Result<ClientStream> {
        Ok(match self {
            ClientStream::Tcp(s) => ClientStream::Tcp(s.try_clone()?),
            ClientStream::Unix(s) => ClientStream::Unix(s.try_clone()?),
        })
    }

    fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            ClientStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(listen: &ServeListen) -> Result<Listener, GzError> {
        match listen {
            ServeListen::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            ServeListen::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    // A SIGKILLed daemon leaves its socket file behind;
                    // nothing can be listening on it (we just failed to
                    // bind *because the inode exists*, not because a
                    // process owns it), so replace it.
                    Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(GzError::Io(e)),
                };
                Ok(Listener::Unix(listener, path.clone()))
            }
        }
    }

    fn accept(&self) -> std::io::Result<ClientStream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(ClientStream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(ClientStream::Unix(s))
            }
        }
    }

    /// The address clients should dial, as announced on stdout.
    fn addr(&self) -> String {
        match self {
            Listener::Tcp(l) => {
                l.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".to_string())
            }
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// Poke the accept loop awake (used once, at shutdown).
    fn wake(&self) {
        match self {
            Listener::Tcp(l) => {
                if let Ok(addr) = l.local_addr() {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
                }
            }
            Listener::Unix(_, path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Durability state
// ---------------------------------------------------------------------------

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("serve.manifest")
}

fn wal_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("serve-wal-{round}.gzw"))
}

fn shard_paths(dir: &Path, round: u64, shards: u32) -> Vec<PathBuf> {
    (0..shards).map(|i| dir.join(format!("serve-round-{round}-shard-{i}.gzs2"))).collect()
}

/// Best-effort removal of shard/WAL files from rounds other than `keep`:
/// leftovers of a crash between writing a round's files and flipping the
/// manifest (or between the flip and the old round's cleanup).
fn prune_stale_rounds(dir: &Path, keep: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let keep_wal = wal_path(dir, keep);
    let keep_prefix = format!("serve-round-{keep}-");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_round = name.starts_with("serve-round-") && !name.starts_with(&keep_prefix);
        let stale_wal =
            name.starts_with("serve-wal-") && entry.path() != keep_wal && name.ends_with(".gzw");
        if stale_round || stale_wal {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// The daemon's durability state, always mutated under the ingest lock.
struct Durability {
    dir: PathBuf,
    wal: UpdateWal,
    /// Current checkpoint round (0 = only the WAL exists).
    round: u64,
    /// Acked updates the round's shard files cover.
    covered: u64,
}

/// Core mutable state: the resident system plus its WAL. One lock guards
/// both so WAL append order always equals sketch apply order. `None`
/// system means the daemon is shutting down.
struct IngestState {
    system: Option<ShardedGraphZeppelin>,
    durability: Option<Durability>,
    /// Checkpoint rounds cut so far (for the shutdown summary).
    rounds_cut: u64,
}

// ---------------------------------------------------------------------------
// Shared daemon state
// ---------------------------------------------------------------------------

struct ServeShared {
    ingest: Mutex<IngestState>,
    /// Updates acked so far. Written only under the ingest lock; read
    /// lock-free by queries and hello replies.
    acked: AtomicU64,
    /// Cached sealed epoch: `(epoch, acked at seal time)`.
    epoch_cache: Mutex<Option<(Arc<ShardedEpoch>, u64)>>,
    stats: Arc<ServeStats>,
    active: AtomicU32,
    shutting_down: AtomicBool,
    /// Clones of live client streams, for force-closing at shutdown.
    conns: Mutex<HashMap<u64, ClientStream>>,
    next_conn: AtomicU64,
    num_nodes: u64,
    num_shards: u32,
    seed: u64,
    max_clients: u32,
    staleness: u64,
    timeouts: TransportTimeouts,
}

impl ServeShared {
    /// Durably log (when configured) and apply one validated batch.
    /// Returns the new acked count. Blocks on gutter backpressure — which
    /// blocks only this client's round trip, by design.
    fn apply_batch(&self, updates: &[WireUpdate]) -> Result<u64, GzError> {
        let mut ingest = self.ingest.lock().unwrap();
        let state = &mut *ingest;
        let Some(system) = state.system.as_mut() else {
            return Err(GzError::Protocol("daemon is shutting down".into()));
        };
        if let Some(d) = state.durability.as_mut() {
            let tuples: Vec<(u32, u32, bool)> =
                updates.iter().map(|u| (u.u, u.v, u.is_delete)).collect();
            d.wal.append(&tuples)?;
        }
        for u in updates {
            system.update(u.u, u.v, u.is_delete)?;
        }
        let acked = self.acked.load(Ordering::Relaxed) + updates.len() as u64;
        self.acked.store(acked, Ordering::Release);
        Ok(acked)
    }

    /// The epoch queries should run on: the cached one while it is fresh
    /// enough, else a newly sealed one. Sealing holds the ingest lock;
    /// the query itself never does.
    fn query_epoch(&self) -> Result<Arc<ShardedEpoch>, GzError> {
        let acked = self.acked.load(Ordering::Acquire);
        if let Some((epoch, at)) = self.epoch_cache.lock().unwrap().as_ref() {
            if acked.saturating_sub(*at) <= self.staleness {
                return Ok(Arc::clone(epoch));
            }
        }
        let mut ingest = self.ingest.lock().unwrap();
        let Some(system) = ingest.system.as_mut() else {
            return Err(GzError::Protocol("daemon is shutting down".into()));
        };
        let sealed = Arc::new(system.begin_epoch()?);
        // `acked` cannot move while we hold the ingest lock.
        let at = self.acked.load(Ordering::Relaxed);
        drop(ingest);
        *self.epoch_cache.lock().unwrap() = Some((Arc::clone(&sealed), at));
        Ok(sealed)
    }

    fn answer(&self, kind: QueryKind) -> Result<QueryAnswer, GzError> {
        let epoch = self.query_epoch()?;
        let outcome = epoch.spanning_forest()?;
        Ok(match kind {
            QueryKind::NumComponents => QueryAnswer::NumComponents(outcome.num_components() as u64),
            QueryKind::Components => QueryAnswer::Components(outcome.labels),
            QueryKind::SpanningForest => {
                QueryAnswer::SpanningForest(outcome.forest.iter().map(|e| (e.u(), e.v())).collect())
            }
        })
    }

    /// Cut one versioned checkpoint round if anything was acked since the
    /// last one. Ordering is the crash-safety argument: shard files land
    /// at *new* paths first, the manifest flip makes them current
    /// atomically, and only then is the WAL rotated and the old round
    /// removed. A crash anywhere leaves a consistent (round, WAL) pair
    /// covering at least every acked update.
    fn cut_round(&self) -> Result<bool, GzError> {
        let mut ingest = self.ingest.lock().unwrap();
        let state = &mut *ingest;
        let (Some(system), Some(d)) = (state.system.as_mut(), state.durability.as_mut()) else {
            return Ok(false);
        };
        let acked = self.acked.load(Ordering::Relaxed);
        if acked == d.covered {
            return Ok(false);
        }
        let next = d.round + 1;
        system.checkpoint_shards_to(&shard_paths(&d.dir, next, self.num_shards))?;
        ServeManifest {
            round: next,
            covered: acked,
            num_nodes: self.num_nodes,
            seed: self.seed,
            num_shards: self.num_shards,
        }
        .save(&manifest_path(&d.dir))?;
        d.wal = UpdateWal::create(&wal_path(&d.dir, next))?;
        for old in shard_paths(&d.dir, d.round, self.num_shards) {
            let _ = std::fs::remove_file(old);
        }
        let _ = std::fs::remove_file(wal_path(&d.dir, d.round));
        d.round = next;
        d.covered = acked;
        state.rounds_cut += 1;
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

enum ReadOutcome {
    Msg(WireMessage),
    Disconnect,
    Malformed(String),
    TimedOut,
}

fn read_frame(stream: &mut ClientStream, stats: &ServeStats) -> ReadOutcome {
    match WireMessage::read_from(stream) {
        Ok(msg) => {
            stats.record_frames_in(1);
            ReadOutcome::Msg(msg)
        }
        Err(e) => match e.kind() {
            std::io::ErrorKind::InvalidData => ReadOutcome::Malformed(e.to_string()),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ReadOutcome::TimedOut,
            _ => ReadOutcome::Disconnect,
        },
    }
}

enum WriteEnd {
    Disconnect,
    TimedOut,
}

fn write_frame(
    stream: &mut ClientStream,
    msg: &WireMessage,
    stats: &ServeStats,
) -> Result<(), WriteEnd> {
    match msg.write_to(stream) {
        Ok(()) => {
            stats.record_frames_out(1);
            Ok(())
        }
        Err(e) => match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                Err(WriteEnd::TimedOut)
            }
            _ => Err(WriteEnd::Disconnect),
        },
    }
}

/// Kill a connection over a malformed or protocol-violating frame: typed
/// reply (best-effort — the peer may already be gone) and count it.
fn kill_malformed(stream: &mut ClientStream, stats: &ServeStats, message: String) {
    stats.record_killed_malformed();
    if write_frame(stream, &WireMessage::ErrorReply { message }, stats).is_ok() {
        let _ = stream.flush();
    }
}

/// Reject a batch before anything is logged or applied: the resident
/// system's invariants (`u != v`, both endpoints in range) must hold for
/// every update or the whole batch is refused.
fn validate_batch(updates: &[WireUpdate], num_nodes: u64) -> Result<(), String> {
    for u in updates {
        if u.u == u.v {
            return Err(format!("self-loop {}-{} rejected", u.u, u.v));
        }
        if u.u as u64 >= num_nodes || u.v as u64 >= num_nodes {
            return Err(format!(
                "vertex {} out of range (universe is {num_nodes} nodes)",
                u.u.max(u.v)
            ));
        }
    }
    Ok(())
}

/// Drive one admitted client connection to completion.
fn serve_client(shared: &ServeShared, stream: &mut ClientStream, stats: &ServeStats) {
    // The first frame must be ClientHello.
    match read_frame(stream, stats) {
        ReadOutcome::Msg(WireMessage::ClientHello) => {}
        ReadOutcome::Msg(other) => {
            return kill_malformed(
                stream,
                stats,
                format!("expected ClientHello, got {}", other.name()),
            );
        }
        ReadOutcome::Malformed(m) => return kill_malformed(stream, stats, m),
        ReadOutcome::TimedOut => return stats.record_timed_out(),
        ReadOutcome::Disconnect => return,
    }
    let hello = WireMessage::ClientHelloAck {
        num_nodes: shared.num_nodes,
        acked: shared.acked.load(Ordering::Acquire),
    };
    match write_frame(stream, &hello, stats) {
        Ok(()) => {}
        Err(WriteEnd::TimedOut) => return stats.record_timed_out(),
        Err(WriteEnd::Disconnect) => return,
    }

    loop {
        match read_frame(stream, stats) {
            ReadOutcome::Msg(WireMessage::UpdateBatch { updates }) => {
                if let Err(msg) = validate_batch(&updates, shared.num_nodes) {
                    return kill_malformed(stream, stats, msg);
                }
                let acked = match shared.apply_batch(&updates) {
                    Ok(acked) => acked,
                    Err(e) => {
                        return kill_malformed(stream, stats, format!("ingest failed: {e}"));
                    }
                };
                match write_frame(stream, &WireMessage::UpdateAck { acked }, stats) {
                    Ok(()) => {}
                    Err(WriteEnd::TimedOut) => return stats.record_timed_out(),
                    Err(WriteEnd::Disconnect) => return,
                }
            }
            ReadOutcome::Msg(WireMessage::Query { kind }) => {
                let answer = match shared.answer(kind) {
                    Ok(answer) => answer,
                    Err(e) => {
                        return kill_malformed(stream, stats, format!("query failed: {e}"));
                    }
                };
                match write_frame(stream, &WireMessage::QueryResult { answer }, stats) {
                    Ok(()) => {}
                    Err(WriteEnd::TimedOut) => return stats.record_timed_out(),
                    Err(WriteEnd::Disconnect) => return,
                }
            }
            // A client's clean goodbye.
            ReadOutcome::Msg(WireMessage::Shutdown) => return,
            ReadOutcome::Msg(other) => {
                return kill_malformed(
                    stream,
                    stats,
                    format!("unexpected {} on a serve connection", other.name()),
                );
            }
            ReadOutcome::Malformed(m) => return kill_malformed(stream, stats, m),
            ReadOutcome::TimedOut => return stats.record_timed_out(),
            ReadOutcome::Disconnect => return,
        }
    }
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// A running in-process daemon, as handed out by [`serve_start`]. Tests
/// and the load-generator bench drive it directly; the CLI wraps it with a
/// signal watcher.
pub struct ServeHandle {
    shared: Arc<ServeShared>,
    addr: String,
    unix_path: Option<PathBuf>,
    listener_wake: Arc<Listener>,
    accept_thread: std::thread::JoinHandle<()>,
    checkpoint_thread: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats_in_summary: bool,
}

impl ServeHandle {
    /// The address clients should dial (host:port, or a socket path).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Daemon-wide connection counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Client updates acked so far.
    pub fn acked(&self) -> u64 {
        self.shared.acked.load(Ordering::Acquire)
    }

    /// Connections currently admitted and not yet finished.
    pub fn active_clients(&self) -> u32 {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop admissions, force-close clients, cut one
    /// final checkpoint round, tear the resident system down. Returns the
    /// shutdown summary the CLI prints.
    pub fn shutdown(self) -> Result<String, GzError> {
        let ServeHandle {
            shared,
            addr: _,
            unix_path,
            listener_wake,
            accept_thread,
            checkpoint_thread,
            handlers,
            stats_in_summary,
        } = self;
        shared.shutting_down.store(true, Ordering::Release);
        listener_wake.wake();
        accept_thread.join().expect("accept thread panicked");
        if let Some(t) = checkpoint_thread {
            t.join().expect("checkpoint thread panicked");
        }
        // Wake every handler blocked in a socket read/write; they exit as
        // disconnects.
        for (_, conn) in shared.conns.lock().unwrap().iter() {
            let _ = conn.shutdown_both();
        }
        for handle in std::mem::take(&mut *handlers.lock().unwrap()) {
            handle.join().expect("connection handler panicked");
        }
        // Epochs release before the system shuts its transport down.
        *shared.epoch_cache.lock().unwrap() = None;
        // One final round so the durable state covers every acked update
        // without any WAL tail to replay.
        shared.cut_round()?;
        let (system, rounds) = {
            let mut ingest = shared.ingest.lock().unwrap();
            (ingest.system.take(), ingest.rounds_cut)
        };
        if let Some(system) = system {
            system.shutdown()?;
        }
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        let mut out = format!(
            "serve shut down: {} updates acked, {rounds} checkpoint rounds",
            shared.acked.load(Ordering::Acquire),
        );
        if stats_in_summary {
            out.push_str(&format!("\nconnections: {}", shared.stats));
        }
        Ok(out)
    }
}

/// Build the resident system, recovering durable state when configured.
/// Returns the system, its durability bookkeeping, and how many updates
/// are already acked (manifest coverage plus the replayed WAL tail).
fn build_system(
    options: &ServeOptions,
) -> Result<(ShardedGraphZeppelin, Option<Durability>, u64), GzError> {
    let mut config = ShardConfig::in_ram(options.nodes, options.shards);
    config.seed = options.seed;
    config.workers_per_shard = options.workers;
    let mut system = ShardedGraphZeppelin::in_process(config)?;

    let Some(dir) = &options.dir else { return Ok((system, None, 0)) };
    std::fs::create_dir_all(dir)?;
    let manifest_file = manifest_path(dir);

    let (round, covered) = if manifest_file.exists() {
        if !options.resume {
            return Err(GzError::InvalidConfig(format!(
                "{} holds existing serve state; pass --resume to continue from it \
                 or point --dir elsewhere",
                dir.display()
            )));
        }
        let m = ServeManifest::load(&manifest_file)?;
        if m.num_nodes != options.nodes || m.seed != options.seed || m.num_shards != options.shards
        {
            return Err(GzError::InvalidConfig(format!(
                "serve state at {} was written for {} nodes / seed {:#x} / {} shards, \
                 not the requested {} / {:#x} / {}",
                dir.display(),
                m.num_nodes,
                m.seed,
                m.num_shards,
                options.nodes,
                options.seed,
                options.shards,
            )));
        }
        prune_stale_rounds(dir, m.round);
        if m.round > 0 {
            system.resume_shards_from(&shard_paths(dir, m.round, options.shards))?;
        }
        (m.round, m.covered)
    } else {
        // Fresh state: publish round 0 immediately so a restart without
        // --resume is refused even before the first checkpoint.
        prune_stale_rounds(dir, 0);
        ServeManifest {
            round: 0,
            covered: 0,
            num_nodes: options.nodes,
            seed: options.seed,
            num_shards: options.shards,
        }
        .save(&manifest_file)?;
        (0, 0)
    };

    // Replay the WAL tail on top of the round's state. The WAL was
    // validated at ingest time, so replay applies it verbatim.
    let mut tail: Vec<(u32, u32, bool)> = Vec::new();
    let (wal, replayed) = UpdateWal::recover(&wal_path(dir, round), &mut |u, v, d| {
        tail.push((u, v, d));
    })?;
    for (u, v, d) in tail {
        system.update(u, v, d)?;
    }
    let durability = Durability { dir: dir.clone(), wal, round, covered };
    Ok((system, Some(durability), covered + replayed))
}

/// Start the daemon in this process and return a handle to it. The CLI
/// calls this and then waits for a signal; tests and benches drive the
/// handle directly.
pub fn serve_start(options: &ServeOptions) -> Result<ServeHandle, GzError> {
    let (system, durability, acked) = build_system(options)?;
    let listener = Arc::new(Listener::bind(&options.listen)?);
    let addr = listener.addr();
    let unix_path = match &options.listen {
        ServeListen::Unix(path) => Some(path.clone()),
        ServeListen::Tcp(_) => None,
    };

    let shared = Arc::new(ServeShared {
        ingest: Mutex::new(IngestState { system: Some(system), durability, rounds_cut: 0 }),
        acked: AtomicU64::new(acked),
        epoch_cache: Mutex::new(None),
        stats: Arc::new(ServeStats::new()),
        active: AtomicU32::new(0),
        shutting_down: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        num_nodes: options.nodes,
        num_shards: options.shards,
        seed: options.seed,
        max_clients: options.max_clients,
        staleness: options.staleness,
        timeouts: options.timeouts(),
    });

    let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let shared = Arc::clone(&shared);
        let listener = Arc::clone(&listener);
        let handlers = Arc::clone(&handlers);
        std::thread::spawn(move || accept_loop(&shared, &listener, &handlers))
    };

    let checkpoint_thread = if options.dir.is_some() {
        let shared = Arc::clone(&shared);
        let period = Duration::from_millis(options.checkpoint_ms.max(1));
        Some(std::thread::spawn(move || checkpoint_loop(&shared, period)))
    } else {
        None
    };

    Ok(ServeHandle {
        shared,
        addr,
        unix_path,
        listener_wake: listener,
        accept_thread,
        checkpoint_thread,
        handlers,
        stats_in_summary: options.stats,
    })
}

fn accept_loop(
    shared: &Arc<ServeShared>,
    listener: &Listener,
    handlers: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    loop {
        let stream = match listener.accept() {
            _ if shared.shutting_down.load(Ordering::Acquire) => return,
            Ok(stream) => stream,
            // Transient accept failures (EMFILE, aborted handshakes) must
            // not kill the daemon.
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        // Admission control: past the limit, answer Busy and drop —
        // never accept-then-starve. The reply happens off-thread so a
        // flood of connections cannot stall admission of legitimate ones,
        // and the client's hello is drained first: closing a socket with
        // unread data RSTs the Busy reply away.
        let active = shared.active.load(Ordering::Acquire);
        if active >= shared.max_clients {
            shared.stats.record_shed();
            let stats = Arc::clone(&shared.stats);
            let timeouts = shared.timeouts;
            let busy = WireMessage::Busy { active, max_clients: shared.max_clients };
            std::thread::spawn(move || {
                let mut stream = stream;
                let _ = stream.apply_timeouts(&timeouts);
                // A ClientHello is one bare 8-byte frame header.
                let mut hello = [0u8; 8];
                let _ = stream.read_exact(&mut hello);
                if busy.write_to(&mut stream).is_ok() {
                    stats.record_frames_out(1);
                    let _ = stream.flush();
                }
            });
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        shared.stats.record_accepted();

        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let shared_for_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let mut stream = stream;
            let local = ServeStats::new();
            if stream.apply_timeouts(&shared_for_conn.timeouts).is_ok() {
                serve_client(&shared_for_conn, &mut stream, &local);
            }
            shared_for_conn.stats.merge_from(&local);
            shared_for_conn.conns.lock().unwrap().remove(&conn_id);
            shared_for_conn.active.fetch_sub(1, Ordering::AcqRel);
        });
        handlers.lock().unwrap().push(handle);
    }
}

fn checkpoint_loop(shared: &ServeShared, period: Duration) {
    let step = Duration::from_millis(25).min(period);
    let mut elapsed = Duration::ZERO;
    loop {
        std::thread::sleep(step);
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        elapsed += step;
        if elapsed < period {
            continue;
        }
        elapsed = Duration::ZERO;
        if let Err(e) = shared.cut_round() {
            // Disk trouble must not take queries and ingest down with it;
            // the next period retries, and shutdown surfaces the error.
            eprintln!("gz serve: checkpoint round failed: {e}");
        }
    }
}

// ---------------------------------------------------------------------------
// Signals (CLI path only)
// ---------------------------------------------------------------------------

/// SIGINT/SIGTERM handling via `signalfd(2)`, declared directly against
/// the libc ABI like the `io_uring` backend does for its syscalls.
mod signals {
    use std::os::raw::{c_int, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SigSet {
        bits: [u64; 16],
    }

    extern "C" {
        fn sigemptyset(set: *mut SigSet) -> c_int;
        fn sigaddset(set: *mut SigSet, signum: c_int) -> c_int;
        fn pthread_sigmask(how: c_int, set: *const SigSet, old: *mut SigSet) -> c_int;
        fn signalfd(fd: c_int, mask: *const SigSet, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const SIG_BLOCK: c_int = 0;
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: c_int = 2;
    /// Termination request.
    pub const SIGTERM: c_int = 15;

    /// A file descriptor that becomes readable when SIGINT or SIGTERM
    /// arrives.
    pub struct SignalFd {
        fd: c_int,
    }

    /// Block SIGINT/SIGTERM process-wide and open a signalfd for them.
    /// Must run on the main thread *before* any other thread spawns, so
    /// every thread inherits the mask and the signal is only ever
    /// delivered through the fd.
    pub fn block_and_open() -> std::io::Result<SignalFd> {
        unsafe {
            let mut set = SigSet { bits: [0; 16] };
            if sigemptyset(&mut set) != 0
                || sigaddset(&mut set, SIGINT) != 0
                || sigaddset(&mut set, SIGTERM) != 0
            {
                return Err(std::io::Error::last_os_error());
            }
            if pthread_sigmask(SIG_BLOCK, &set, std::ptr::null_mut()) != 0 {
                return Err(std::io::Error::last_os_error());
            }
            let fd = signalfd(-1, &set, 0);
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(SignalFd { fd })
        }
    }

    impl SignalFd {
        /// Block until a masked signal arrives; returns its number (the
        /// `ssi_signo` leading a 128-byte `signalfd_siginfo`).
        pub fn wait(&self) -> std::io::Result<c_int> {
            let mut info = [0u8; 128];
            let n = unsafe { read(self.fd, info.as_mut_ptr() as *mut c_void, info.len()) };
            if n < 4 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(i32::from_ne_bytes([info[0], info[1], info[2], info[3]]))
        }
    }

    impl Drop for SignalFd {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }
}

/// The CLI entry point: start the daemon, announce the bound address,
/// block until SIGINT/SIGTERM, then checkpoint and exit cleanly.
pub fn run_serve(options: ServeOptions) -> Result<String, String> {
    // Before any thread exists, so the mask is inherited everywhere.
    let signals = signals::block_and_open().map_err(|e| e.to_string())?;
    let handle = serve_start(&options).map_err(|e| e.to_string())?;
    // The exact "listening on " prefix scripts and the chaos harness parse.
    println!("gz serve listening on {}", handle.addr());
    std::io::stdout().flush().ok();

    let sig = signals.wait().map_err(|e| e.to_string())?;
    let name = match sig {
        signals::SIGINT => "SIGINT",
        signals::SIGTERM => "SIGTERM",
        _ => "signal",
    };
    eprintln!("gz serve: {name} received, checkpointing and shutting down");
    handle.shutdown().map_err(|e| e.to_string())
}
