//! `gz` — command-line front end for the GraphZeppelin reproduction.
//!
//! ```text
//! gz generate --dataset kron10 --seed 42 --out stream.gzs
//! gz generate --er 1000x5000 --out er.gzs
//! gz info stream.gzs
//! gz components stream.gzs [--workers 4] [--disk /tmp/gzwork] [--forest]
//! gz bipartite stream.gzs
//! ```
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is a
//! thin shell.

use graph_zeppelin::{BipartitenessTester, GraphZeppelin, GzConfig};
use gz_stream::format::{StreamReader, StreamWriter};
use gz_stream::{Dataset, GeneratorSpec, StreamifyConfig, UpdateKind};
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset stream into a file.
    Generate {
        /// Dataset spec.
        dataset: DatasetArg,
        /// RNG seed.
        seed: u64,
        /// Output path.
        out: PathBuf,
    },
    /// Print a stream file's header and statistics.
    Info {
        /// Stream file.
        path: PathBuf,
    },
    /// Compute connected components of a stream file.
    Components {
        /// Stream file.
        path: PathBuf,
        /// Graph Workers.
        workers: usize,
        /// Put sketches + gutters on disk under this directory.
        disk: Option<PathBuf>,
        /// Also print the spanning forest.
        forest: bool,
    },
    /// Test bipartiteness of a stream file.
    Bipartite {
        /// Stream file.
        path: PathBuf,
    },
}

/// Dataset selection for `generate`.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetArg {
    /// `kronN` from the paper catalog.
    Kron(u32),
    /// Erdős–Rényi `G(n, m)` written as `NxM`.
    ErdosRenyi(u64, u64),
    /// Preferential attachment written as `NxM`.
    Preferential(u64, u64),
}

impl DatasetArg {
    fn to_dataset(&self) -> Dataset {
        match *self {
            DatasetArg::Kron(scale) => Dataset::kron(scale),
            DatasetArg::ErdosRenyi(nodes, edges) => Dataset {
                name: format!("er-{nodes}x{edges}"),
                num_vertices: nodes,
                nominal_edges: edges,
                spec: GeneratorSpec::ErdosRenyi { nodes, edges },
            },
            DatasetArg::Preferential(nodes, edges) => Dataset {
                name: format!("pa-{nodes}x{edges}"),
                num_vertices: nodes,
                nominal_edges: edges,
                spec: GeneratorSpec::Preferential { nodes, edges },
            },
        }
    }
}

/// Parse `NxM` pairs.
fn parse_pair(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s.split_once('x').ok_or_else(|| format!("expected NxM, got {s}"))?;
    Ok((
        a.parse().map_err(|_| format!("bad node count {a}"))?,
        b.parse().map_err(|_| format!("bad edge count {b}"))?,
    ))
}

/// Parse a full argument vector (without argv[0]).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().ok_or("missing subcommand (generate|info|components|bipartite)")?;
    match sub.as_str() {
        "generate" => {
            let mut dataset = None;
            let mut seed = 42u64;
            let mut out = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--dataset" => {
                        let v = it.next().ok_or("--dataset needs a value")?;
                        let scale = v
                            .strip_prefix("kron")
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| format!("unknown dataset {v} (try kron10)"))?;
                        dataset = Some(DatasetArg::Kron(scale));
                    }
                    "--er" => {
                        let v = it.next().ok_or("--er needs NxM")?;
                        let (n, m) = parse_pair(v)?;
                        dataset = Some(DatasetArg::ErdosRenyi(n, m));
                    }
                    "--pa" => {
                        let v = it.next().ok_or("--pa needs NxM")?;
                        let (n, m) = parse_pair(v)?;
                        dataset = Some(DatasetArg::Preferential(n, m));
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|_| "bad seed")?;
                    }
                    "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Generate {
                dataset: dataset.ok_or("need one of --dataset/--er/--pa")?,
                seed,
                out: out.ok_or("need --out")?,
            })
        }
        "info" => {
            let path = it.next().ok_or("info needs a stream file")?;
            Ok(Command::Info { path: PathBuf::from(path) })
        }
        "components" => {
            let path = PathBuf::from(it.next().ok_or("components needs a stream file")?);
            let mut workers = 2usize;
            let mut disk = None;
            let mut forest = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--workers" => {
                        workers = it
                            .next()
                            .ok_or("--workers needs a value")?
                            .parse()
                            .map_err(|_| "bad worker count")?;
                    }
                    "--disk" => disk = Some(PathBuf::from(it.next().ok_or("--disk needs a dir")?)),
                    "--forest" => forest = true,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Components { path, workers, disk, forest })
        }
        "bipartite" => {
            let path = it.next().ok_or("bipartite needs a stream file")?;
            Ok(Command::Bipartite { path: PathBuf::from(path) })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

/// Execute a command; returns the text to print.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Generate { dataset, seed, out } => {
            let d = dataset.to_dataset();
            let result = d.stream(seed, &StreamifyConfig::default());
            let mut writer =
                StreamWriter::create(&out, d.num_vertices).map_err(|e| e.to_string())?;
            writer.write_all(&result.updates).map_err(|e| e.to_string())?;
            let header = writer.finish().map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {}: {} nodes, {} updates, {} final edges, {} nodes disconnected",
                out.display(),
                header.num_vertices,
                header.num_updates,
                result.final_edge_count,
                result.disconnected.len(),
            ))
        }
        Command::Info { path } => {
            let mut reader = StreamReader::open(&path).map_err(|e| e.to_string())?;
            let header = reader.header();
            let mut inserts = 0u64;
            let mut deletes = 0u64;
            let updates = reader.read_all().map_err(|e| e.to_string())?;
            for u in &updates {
                match u.kind {
                    UpdateKind::Insert => inserts += 1,
                    UpdateKind::Delete => deletes += 1,
                }
            }
            let final_edges =
                gz_stream::update::validate_stream(header.num_vertices, updates.iter().copied())
                    .map_err(|v| format!("invalid stream: {v:?}"))?;
            Ok(format!(
                "{}: {} nodes, {} updates ({} inserts, {} deletes), {} final edges, valid",
                path.display(),
                header.num_vertices,
                header.num_updates,
                inserts,
                deletes,
                final_edges.len(),
            ))
        }
        Command::Components { path, workers, disk, forest } => {
            let mut reader = StreamReader::open(&path).map_err(|e| e.to_string())?;
            let header = reader.header();
            let mut config = match &disk {
                Some(dir) => {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                    GzConfig::on_disk(header.num_vertices, dir.clone())
                }
                None => GzConfig::in_ram(header.num_vertices),
            };
            config.num_workers = workers.max(1);
            let mut gz = GraphZeppelin::new(config).map_err(|e| e.to_string())?;
            let mut batch = Vec::new();
            loop {
                let n = reader.read_batch(&mut batch, 1 << 16).map_err(|e| e.to_string())?;
                if n == 0 {
                    break;
                }
                for u in &batch {
                    gz.update(u.u, u.v, u.kind == UpdateKind::Delete);
                }
            }
            let cc = gz.connected_components().map_err(|e| e.to_string())?;
            let mut out = format!(
                "{} components over {} nodes ({} updates ingested)\n",
                cc.num_components(),
                header.num_vertices,
                gz.updates_ingested(),
            );
            if forest {
                for e in cc.spanning_forest() {
                    out.push_str(&format!("{} {}\n", e.u(), e.v()));
                }
            }
            Ok(out)
        }
        Command::Bipartite { path } => {
            let mut reader = StreamReader::open(&path).map_err(|e| e.to_string())?;
            let header = reader.header();
            let mut tester =
                BipartitenessTester::new(header.num_vertices, 7).map_err(|e| e.to_string())?;
            let updates = reader.read_all().map_err(|e| e.to_string())?;
            for u in &updates {
                tester.update(u.u, u.v, u.kind == UpdateKind::Delete);
            }
            let ans = tester.query().map_err(|e| e.to_string())?;
            Ok(if ans.bipartite {
                "bipartite".to_string()
            } else {
                format!("NOT bipartite ({} odd components)", ans.odd_components.len())
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-cli-{name}"), ".gzs")
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&argv("generate --dataset kron9 --seed 7 --out /tmp/x.gzs")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: DatasetArg::Kron(9),
                seed: 7,
                out: PathBuf::from("/tmp/x.gzs"),
            }
        );
    }

    #[test]
    fn parses_er_and_pa_specs() {
        assert_eq!(
            parse_args(&argv("generate --er 100x500 --out o.gzs")).unwrap(),
            Command::Generate {
                dataset: DatasetArg::ErdosRenyi(100, 500),
                seed: 42,
                out: PathBuf::from("o.gzs"),
            }
        );
        assert!(matches!(
            parse_args(&argv("generate --pa 50x100 --out o.gzs")).unwrap(),
            Command::Generate { dataset: DatasetArg::Preferential(50, 100), .. }
        ));
    }

    #[test]
    fn parses_components_flags() {
        let cmd = parse_args(&argv("components s.gzs --workers 8 --disk /tmp/d --forest")).unwrap();
        assert_eq!(
            cmd,
            Command::Components {
                path: PathBuf::from("s.gzs"),
                workers: 8,
                disk: Some(PathBuf::from("/tmp/d")),
                forest: true,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert!(parse_args(&argv("generate --out x.gzs")).is_err(), "no dataset");
        assert!(parse_args(&argv("generate --dataset kronfoo --out x")).is_err());
        assert!(parse_args(&argv("generate --er 100y500 --out x")).is_err());
    }

    #[test]
    fn end_to_end_generate_info_components() {
        let path = tmp("e2e");
        let msg = execute(Command::Generate {
            dataset: DatasetArg::Kron(6),
            seed: 3,
            out: path.to_path_buf(),
        })
        .unwrap();
        assert!(msg.contains("64 nodes"), "{msg}");

        let info = execute(Command::Info { path: path.to_path_buf() }).unwrap();
        assert!(info.contains("valid"), "{info}");

        let comps = execute(Command::Components {
            path: path.to_path_buf(),
            workers: 2,
            disk: None,
            forest: false,
        })
        .unwrap();
        assert!(comps.contains("components over 64 nodes"), "{comps}");
    }

    #[test]
    fn end_to_end_bipartite() {
        // An even cycle stream: bipartite.
        let path = tmp("bip");
        let updates: Vec<gz_stream::EdgeUpdate> =
            (0..10u32).map(|i| gz_stream::EdgeUpdate::insert(i, (i + 1) % 10)).collect();
        gz_stream::format::write_stream(path.path(), 10, &updates).unwrap();
        let out = execute(Command::Bipartite { path: path.to_path_buf() }).unwrap();
        assert_eq!(out, "bipartite");
    }

    #[test]
    fn components_with_forest_lists_edges() {
        let path = tmp("forest");
        let updates =
            vec![gz_stream::EdgeUpdate::insert(0, 1), gz_stream::EdgeUpdate::insert(1, 2)];
        gz_stream::format::write_stream(path.path(), 4, &updates).unwrap();
        let out = execute(Command::Components {
            path: path.to_path_buf(),
            workers: 1,
            disk: None,
            forest: true,
        })
        .unwrap();
        assert!(out.lines().count() >= 3, "{out}");
    }
}
