//! `gz` — command-line front end for the GraphZeppelin reproduction.
//!
//! ```text
//! gz generate --dataset kron10 --seed 42 --out stream.gzs
//! gz generate --er 1000x5000 --out er.gzs
//! gz info stream.gzs
//! gz components stream.gzs [--workers 4] [--store ram|disk] \
//!     [--buffering leaf|tree] [--dir /tmp/gzwork] [--forest] \
//!     [--query-mode snapshot|streaming] [--query-threads N] \
//!     [--staleness U] [--threshold T] [--io-backend auto|pread|uring] \
//!     [--stats] [--shards K [--connect host:port,host:port,...]] \
//!     [--checkpoint-every N] [--batch-updates N] [--respawn]
//! gz checkpoint save ckpt.gzc --from stream.gzs [--workers 4] [--seed S]
//! gz checkpoint restore ckpt.gzc [--forest] [--query-mode streaming]
//! gz shard-worker --listen 127.0.0.1:7001 --nodes 1024 --shards 2 --index 0 \
//!     [--checkpoint shard.ckpt | --resume shard.ckpt]
//! gz serve (--listen host:port | --unix sock.path) --nodes 1024 \
//!     [--shards K] [--workers N] [--max-clients C] [--dir state/ [--resume]] \
//!     [--checkpoint-ms MS] [--timeout-ms MS] [--staleness U] [--stats]
//! gz bipartite stream.gzs
//! ```
//!
//! Fault tolerance (DESIGN.md §14): `--checkpoint-every N` makes the
//! sharded coordinator ask every shard for a durable checkpoint each `N`
//! routed batches; `--respawn` (with `--connect`) keeps a replay log and,
//! when a worker dies, reconnects with bounded backoff, resyncs from the
//! worker's restored checkpoint, and replays the missing batches. A killed
//! worker is restarted (by its supervisor) as
//! `gz shard-worker --resume <ckpt>`.
//!
//! `gz serve` (DESIGN.md §15) keeps one resident sharded system alive and
//! serves many concurrent clients over the wire protocol's front-door
//! dialect, with WAL-backed acks, periodic checkpoint rounds, overload
//! shedding, and graceful signal-driven shutdown; see [`serve`] and the
//! [`client`] library.
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is a
//! thin shell.

pub mod client;
pub mod serve;

use graph_zeppelin::{
    connect_shard_tcp, serve_shard_connection, BipartitenessTester, BufferStrategy, GraphZeppelin,
    GutterCapacity, GzConfig, IoBackendKind, QueryMode, RecoveringTransport, RetryPolicy,
    ShardConfig, ShardPipeline, ShardedGraphZeppelin, SocketTransport, StoreBackend,
    TransportTimeouts,
};
use gz_stream::format::{StreamReader, StreamWriter};
use gz_stream::{Dataset, GeneratorSpec, StreamifyConfig, UpdateKind};
use std::io::Write as _;
use std::path::PathBuf;

/// Sketch store placement selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreArg {
    /// Sketches in RAM.
    Ram,
    /// Sketches in a file under `--dir`.
    Disk,
}

impl StoreArg {
    fn parse(s: &str) -> Result<StoreArg, String> {
        match s {
            "ram" => Ok(StoreArg::Ram),
            "disk" => Ok(StoreArg::Disk),
            other => Err(format!("unknown store {other} (want ram|disk)")),
        }
    }
}

/// Parse a `--query-mode` value straight into the config type (the CLI
/// needs no intermediate enum: snapshot/streaming map 1:1).
fn parse_query_mode(s: &str) -> Result<QueryMode, String> {
    match s {
        "snapshot" => Ok(QueryMode::Snapshot),
        "streaming" => Ok(QueryMode::Streaming),
        other => Err(format!("unknown query mode {other} (want snapshot|streaming)")),
    }
}

/// Parse an `--io-backend` value straight into the config type, mirroring
/// [`parse_query_mode`]: auto/pread/uring map 1:1 onto [`IoBackendKind`].
fn parse_io_backend(s: &str) -> Result<IoBackendKind, String> {
    IoBackendKind::parse(s).ok_or_else(|| format!("unknown io backend {s} (want auto|pread|uring)"))
}

/// Buffering system selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferingArg {
    /// In-RAM leaf gutters.
    Leaf,
    /// On-disk gutter tree under `--dir`.
    Tree,
}

impl BufferingArg {
    fn parse(s: &str) -> Result<BufferingArg, String> {
        match s {
            "leaf" => Ok(BufferingArg::Leaf),
            "tree" => Ok(BufferingArg::Tree),
            other => Err(format!("unknown buffering {other} (want leaf|tree)")),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset stream into a file.
    Generate {
        /// Dataset spec.
        dataset: DatasetArg,
        /// RNG seed.
        seed: u64,
        /// Output path.
        out: PathBuf,
    },
    /// Print a stream file's header and statistics.
    Info {
        /// Stream file.
        path: PathBuf,
    },
    /// Compute connected components of a stream file.
    Components {
        /// Stream file.
        path: PathBuf,
        /// Graph Workers (per shard, when sharded).
        workers: usize,
        /// Sketch store placement.
        store: StoreArg,
        /// Buffering system.
        buffering: BufferingArg,
        /// Directory for on-disk stores / gutter trees.
        dir: Option<PathBuf>,
        /// Also print the spanning forest.
        forest: bool,
        /// How queries read sketches out of the store.
        query_mode: QueryMode,
        /// Borůvka query-engine threads (`None` = the worker count).
        query_threads: Option<usize>,
        /// Bounded staleness for streaming queries: reuse a sealed epoch
        /// while it lags fewer than this many updates (`None` = always
        /// query fresh state).
        staleness: Option<u64>,
        /// Hybrid-representation promotion threshold τ: nodes stay exact
        /// sparse sets until they exceed this many live neighbors (`None`
        /// or 0 = always-dense sketches).
        threshold: Option<u32>,
        /// Disk-store I/O backend (`None` = auto: probe io_uring, fall
        /// back to pread). Ignored by RAM stores.
        io_backend: Option<IoBackendKind>,
        /// Print a representation census (sparse/promoted node counts and
        /// resident bytes) after the query.
        stats: bool,
        /// Shard the system `k` ways (in-process unless `connect` names
        /// remote workers).
        shards: Option<u32>,
        /// `host:port` shard-worker addresses, one per shard in shard
        /// order; empty = in-process shards.
        connect: Vec<String>,
        /// Ask every shard for a durable checkpoint each `N` routed
        /// batches (`None` = never checkpoint mid-stream).
        checkpoint_every: Option<u64>,
        /// Absolute router batch size in updates (`None` = the paper's
        /// sketch-factor default). Small batches tighten the recovery
        /// replay bound at the cost of more wire round trips.
        batch_updates: Option<usize>,
        /// On worker death, reconnect with bounded backoff and replay the
        /// batches the worker lost (requires `--connect`).
        respawn: bool,
    },
    /// Ingest a stream, then persist the whole sketch state to a file.
    CheckpointSave {
        /// Stream file to ingest.
        stream: PathBuf,
        /// Checkpoint output path.
        out: PathBuf,
        /// Graph Workers for the ingesting system.
        workers: usize,
        /// Master seed (must match any system the checkpoint is later
        /// merged or compared with).
        seed: u64,
    },
    /// Restore a checkpoint and answer a connectivity query from it.
    CheckpointRestore {
        /// Checkpoint file.
        path: PathBuf,
        /// Also print the spanning forest.
        forest: bool,
        /// How the restored system reads sketches at query time.
        query_mode: QueryMode,
        /// Borůvka query-engine threads (`None` = the worker count).
        query_threads: Option<usize>,
        /// Disk-store I/O backend for the restored system (`None` = auto).
        /// Accepted for flag parity with `components`; the restored store
        /// is RAM-resident today, so this only takes effect if restore
        /// grows a disk mode.
        io_backend: Option<IoBackendKind>,
    },
    /// Serve one shard over TCP: bind, accept one coordinator connection,
    /// run the shard-worker event loop until `Shutdown`.
    ShardWorker {
        /// `host:port` to listen on (port 0 picks a free port).
        listen: String,
        /// Vertex universe size (must match the coordinator).
        nodes: u64,
        /// Total shard count.
        shards: u32,
        /// This worker's shard index.
        index: u32,
        /// Master seed (must match the coordinator).
        seed: u64,
        /// Graph Workers in this shard's pipeline.
        workers: usize,
        /// Sketch store placement for this shard.
        store: StoreArg,
        /// Directory for an on-disk store.
        dir: Option<PathBuf>,
        /// Hybrid-representation promotion threshold τ for this shard's
        /// store (`None` or 0 = always-dense sketches).
        threshold: Option<u32>,
        /// Disk-store I/O backend for this shard's store (`None` = auto).
        io_backend: Option<IoBackendKind>,
        /// Write coordinator-requested checkpoints to this file.
        checkpoint: Option<PathBuf>,
        /// Restore state from this checkpoint before serving; later
        /// checkpoints overwrite the same file.
        resume: Option<PathBuf>,
    },
    /// Run the long-lived serve daemon (DESIGN.md §15).
    Serve {
        /// Everything the daemon needs; see [`serve::ServeOptions`].
        options: serve::ServeOptions,
    },
    /// Test bipartiteness of a stream file.
    Bipartite {
        /// Stream file.
        path: PathBuf,
    },
}

/// Dataset selection for `generate`.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetArg {
    /// `kronN` from the paper catalog.
    Kron(u32),
    /// Erdős–Rényi `G(n, m)` written as `NxM`.
    ErdosRenyi(u64, u64),
    /// Preferential attachment written as `NxM`.
    Preferential(u64, u64),
}

impl DatasetArg {
    fn to_dataset(&self) -> Dataset {
        match *self {
            DatasetArg::Kron(scale) => Dataset::kron(scale),
            DatasetArg::ErdosRenyi(nodes, edges) => Dataset {
                name: format!("er-{nodes}x{edges}"),
                num_vertices: nodes,
                nominal_edges: edges,
                spec: GeneratorSpec::ErdosRenyi { nodes, edges },
            },
            DatasetArg::Preferential(nodes, edges) => Dataset {
                name: format!("pa-{nodes}x{edges}"),
                num_vertices: nodes,
                nominal_edges: edges,
                spec: GeneratorSpec::Preferential { nodes, edges },
            },
        }
    }
}

/// Parse `NxM` pairs.
fn parse_pair(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s.split_once('x').ok_or_else(|| format!("expected NxM, got {s}"))?;
    Ok((
        a.parse().map_err(|_| format!("bad node count {a}"))?,
        b.parse().map_err(|_| format!("bad edge count {b}"))?,
    ))
}

fn parse_num<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("bad value for {flag}"))
}

/// Parse a flag whose value must be a positive count: `0` is refused with
/// the same error shape as `--query-threads 0`, instead of being silently
/// clamped downstream.
fn parse_positive<T: std::str::FromStr + Default + PartialEq>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let n: T = parse_num(it, flag)?;
    if n == T::default() {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

/// Parse `--query-threads`: a positive thread count (0 is refused — a query
/// cannot run on no threads; omit the flag to default to the worker count).
fn parse_query_threads(it: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
    let n: usize = parse_num(it, "--query-threads")?;
    if n == 0 {
        return Err("--query-threads must be at least 1 (omit the flag to default to the \
             worker count)"
            .into());
    }
    Ok(n)
}

/// Set-once guard for flag values: a repeated flag is an explicit error,
/// never a silent last-one-wins.
fn set_once<T>(slot: &mut Option<T>, value: T, flag: &str) -> Result<(), String> {
    if slot.replace(value).is_some() {
        return Err(format!("duplicate flag {flag}"));
    }
    Ok(())
}

/// Set-once guard for boolean switches (`--forest` twice is a typo worth
/// flagging, not a no-op).
fn set_switch(slot: &mut bool, flag: &str) -> Result<(), String> {
    if std::mem::replace(slot, true) {
        return Err(format!("duplicate flag {flag}"));
    }
    Ok(())
}

/// Parse a full argument vector (without argv[0]).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().ok_or(
        "missing subcommand (generate|info|components|checkpoint|shard-worker|serve|bipartite)",
    )?;
    match sub.as_str() {
        "generate" => {
            let mut dataset = None;
            let mut seed = None;
            let mut out = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--dataset" => {
                        let v = it.next().ok_or("--dataset needs a value")?;
                        let scale = v
                            .strip_prefix("kron")
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| format!("unknown dataset {v} (try kron10)"))?;
                        set_once(&mut dataset, DatasetArg::Kron(scale), arg)?;
                    }
                    "--er" => {
                        let v = it.next().ok_or("--er needs NxM")?;
                        let (n, m) = parse_pair(v)?;
                        set_once(&mut dataset, DatasetArg::ErdosRenyi(n, m), arg)?;
                    }
                    "--pa" => {
                        let v = it.next().ok_or("--pa needs NxM")?;
                        let (n, m) = parse_pair(v)?;
                        set_once(&mut dataset, DatasetArg::Preferential(n, m), arg)?;
                    }
                    "--seed" => set_once(&mut seed, parse_num(&mut it, arg)?, arg)?,
                    "--out" => {
                        let v = PathBuf::from(it.next().ok_or("--out needs a path")?);
                        set_once(&mut out, v, arg)?;
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Generate {
                dataset: dataset.ok_or("need one of --dataset/--er/--pa")?,
                seed: seed.unwrap_or(42),
                out: out.ok_or("need --out")?,
            })
        }
        "info" => {
            let path = it.next().ok_or("info needs a stream file")?;
            Ok(Command::Info { path: PathBuf::from(path) })
        }
        "components" => {
            let path = PathBuf::from(it.next().ok_or("components needs a stream file")?);
            let mut workers = None;
            let mut store = None;
            let mut buffering = None;
            let mut dir = None;
            let mut forest = false;
            let mut query_mode = None;
            let mut query_threads = None;
            let mut staleness = None;
            let mut threshold = None;
            let mut io_backend = None;
            let mut stats = false;
            let mut shards = None;
            let mut connect = None;
            let mut checkpoint_every = None;
            let mut batch_updates = None;
            let mut respawn = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--workers" => set_once(&mut workers, parse_positive(&mut it, arg)?, arg)?,
                    "--query-threads" => {
                        set_once(&mut query_threads, parse_query_threads(&mut it)?, arg)?;
                    }
                    "--store" => {
                        let v = StoreArg::parse(it.next().ok_or("--store needs ram|disk")?)?;
                        set_once(&mut store, v, arg)?;
                    }
                    "--buffering" => {
                        let v =
                            BufferingArg::parse(it.next().ok_or("--buffering needs leaf|tree")?)?;
                        set_once(&mut buffering, v, arg)?;
                    }
                    "--dir" => {
                        let v = PathBuf::from(it.next().ok_or("--dir needs a dir")?);
                        set_once(&mut dir, v, arg)?;
                    }
                    // Back-compat: `--disk DIR` = the full on-disk deployment.
                    // It claims --dir/--store/--buffering, so mixing it with
                    // any of those is reported as a duplicate.
                    "--disk" => {
                        let v = PathBuf::from(it.next().ok_or("--disk needs a dir")?);
                        set_once(&mut dir, v, arg)?;
                        set_once(&mut store, StoreArg::Disk, arg)?;
                        set_once(&mut buffering, BufferingArg::Tree, arg)?;
                    }
                    "--forest" => set_switch(&mut forest, arg)?,
                    "--query-mode" => {
                        let v = parse_query_mode(
                            it.next().ok_or("--query-mode needs snapshot|streaming")?,
                        )?;
                        set_once(&mut query_mode, v, arg)?;
                    }
                    // `--staleness 0` is meaningful (reseal on every query),
                    // so a plain parse — not parse_positive — is correct.
                    "--staleness" => set_once(&mut staleness, parse_num(&mut it, arg)?, arg)?,
                    // `--threshold 0` is meaningful (force always-dense),
                    // so a plain parse here too.
                    "--threshold" => set_once(&mut threshold, parse_num(&mut it, arg)?, arg)?,
                    "--io-backend" => {
                        let v = parse_io_backend(it.next().ok_or("--io-backend needs a value")?)?;
                        set_once(&mut io_backend, v, arg)?;
                    }
                    "--stats" => set_switch(&mut stats, arg)?,
                    "--shards" => set_once(&mut shards, parse_positive(&mut it, arg)?, arg)?,
                    "--connect" => {
                        let v = it.next().ok_or("--connect needs addr,addr,...")?;
                        let addrs: Vec<String> =
                            v.split(',').map(|s| s.trim().to_string()).collect();
                        set_once(&mut connect, addrs, arg)?;
                    }
                    "--checkpoint-every" => {
                        set_once(&mut checkpoint_every, parse_positive(&mut it, arg)?, arg)?;
                    }
                    "--batch-updates" => {
                        set_once(&mut batch_updates, parse_positive(&mut it, arg)?, arg)?;
                    }
                    "--respawn" => set_switch(&mut respawn, arg)?,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if connect.is_some() && shards.is_none() {
                return Err("--connect requires --shards".into());
            }
            if checkpoint_every.is_some() && shards.is_none() {
                return Err("--checkpoint-every requires --shards".into());
            }
            if batch_updates.is_some() && shards.is_none() {
                return Err("--batch-updates requires --shards (single-node gutters are \
                     sized by the paper's sketch-factor knob)"
                    .into());
            }
            if respawn && connect.is_none() {
                return Err("--respawn requires --connect (in-process shards share the \
                     coordinator's fate; there is nothing to reconnect to)"
                    .into());
            }
            let query_mode = query_mode.unwrap_or(QueryMode::Snapshot);
            if staleness.is_some() && query_mode != QueryMode::Streaming {
                return Err("--staleness requires --query-mode streaming".into());
            }
            Ok(Command::Components {
                path,
                workers: workers.unwrap_or(2),
                store: store.unwrap_or(StoreArg::Ram),
                buffering: buffering.unwrap_or(BufferingArg::Leaf),
                dir,
                forest,
                query_mode,
                query_threads,
                staleness,
                threshold,
                io_backend,
                stats,
                shards,
                connect: connect.unwrap_or_default(),
                checkpoint_every,
                batch_updates,
                respawn,
            })
        }
        "checkpoint" => {
            let action = it.next().ok_or("checkpoint needs save|restore")?;
            match action.as_str() {
                "save" => {
                    let out = PathBuf::from(it.next().ok_or("checkpoint save needs a path")?);
                    let mut stream = None;
                    let mut workers = None;
                    let mut seed = None;
                    while let Some(arg) = it.next() {
                        match arg.as_str() {
                            "--from" => {
                                let v =
                                    PathBuf::from(it.next().ok_or("--from needs a stream file")?);
                                set_once(&mut stream, v, arg)?;
                            }
                            "--workers" => {
                                set_once(&mut workers, parse_positive(&mut it, arg)?, arg)?;
                            }
                            "--seed" => set_once(&mut seed, parse_num(&mut it, arg)?, arg)?,
                            other => return Err(format!("unknown flag {other}")),
                        }
                    }
                    Ok(Command::CheckpointSave {
                        stream: stream.ok_or("need --from <stream.gzs>")?,
                        out,
                        workers: workers.unwrap_or(2),
                        seed: seed.unwrap_or(0x5EED_1E55),
                    })
                }
                "restore" => {
                    let path = PathBuf::from(it.next().ok_or("checkpoint restore needs a path")?);
                    let mut forest = false;
                    let mut query_mode = None;
                    let mut query_threads = None;
                    let mut io_backend = None;
                    while let Some(arg) = it.next() {
                        match arg.as_str() {
                            "--forest" => set_switch(&mut forest, arg)?,
                            "--query-mode" => {
                                let v = parse_query_mode(
                                    it.next().ok_or("--query-mode needs snapshot|streaming")?,
                                )?;
                                set_once(&mut query_mode, v, arg)?;
                            }
                            "--query-threads" => {
                                set_once(&mut query_threads, parse_query_threads(&mut it)?, arg)?;
                            }
                            "--io-backend" => {
                                let v = parse_io_backend(
                                    it.next().ok_or("--io-backend needs a value")?,
                                )?;
                                set_once(&mut io_backend, v, arg)?;
                            }
                            other => return Err(format!("unknown flag {other}")),
                        }
                    }
                    Ok(Command::CheckpointRestore {
                        path,
                        forest,
                        query_mode: query_mode.unwrap_or(QueryMode::Snapshot),
                        query_threads,
                        io_backend,
                    })
                }
                other => Err(format!("unknown checkpoint action {other} (want save|restore)")),
            }
        }
        "shard-worker" => {
            let mut listen = None;
            let mut nodes = None;
            let mut shards = None;
            let mut index = None;
            let mut seed = None;
            let mut workers = None;
            let mut store = None;
            let mut dir = None;
            let mut threshold = None;
            let mut io_backend = None;
            let mut checkpoint = None;
            let mut resume = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--listen" => {
                        let v = it.next().ok_or("--listen needs host:port")?.clone();
                        set_once(&mut listen, v, arg)?;
                    }
                    "--nodes" => set_once(&mut nodes, parse_num(&mut it, arg)?, arg)?,
                    "--shards" => set_once(&mut shards, parse_positive(&mut it, arg)?, arg)?,
                    "--index" => set_once(&mut index, parse_num(&mut it, arg)?, arg)?,
                    "--seed" => set_once(&mut seed, parse_num(&mut it, arg)?, arg)?,
                    "--workers" => set_once(&mut workers, parse_positive(&mut it, arg)?, arg)?,
                    "--store" => {
                        let v = StoreArg::parse(it.next().ok_or("--store needs ram|disk")?)?;
                        set_once(&mut store, v, arg)?;
                    }
                    "--dir" => {
                        let v = PathBuf::from(it.next().ok_or("--dir needs a dir")?);
                        set_once(&mut dir, v, arg)?;
                    }
                    "--threshold" => set_once(&mut threshold, parse_num(&mut it, arg)?, arg)?,
                    "--io-backend" => {
                        let v = parse_io_backend(it.next().ok_or("--io-backend needs a value")?)?;
                        set_once(&mut io_backend, v, arg)?;
                    }
                    "--checkpoint" => {
                        let v = PathBuf::from(it.next().ok_or("--checkpoint needs a path")?);
                        set_once(&mut checkpoint, v, arg)?;
                    }
                    "--resume" => {
                        let v = PathBuf::from(it.next().ok_or("--resume needs a path")?);
                        set_once(&mut resume, v, arg)?;
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if checkpoint.is_some() && resume.is_some() {
                return Err("--resume already names the checkpoint file (later \
                     checkpoints overwrite it); drop --checkpoint"
                    .into());
            }
            Ok(Command::ShardWorker {
                listen: listen.ok_or("need --listen")?,
                nodes: nodes.ok_or("need --nodes")?,
                shards: shards.ok_or("need --shards")?,
                index: index.ok_or("need --index")?,
                seed: seed.unwrap_or(0x5EED_1E55),
                workers: workers.unwrap_or(2),
                store: store.unwrap_or(StoreArg::Ram),
                dir,
                threshold,
                io_backend,
                checkpoint,
                resume,
            })
        }
        "serve" => {
            let mut listen = None;
            let mut unix = None;
            let mut nodes = None;
            let mut shards = None;
            let mut seed = None;
            let mut workers = None;
            let mut max_clients = None;
            let mut dir = None;
            let mut resume = false;
            let mut checkpoint_ms = None;
            let mut timeout_ms = None;
            let mut staleness = None;
            let mut stats = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--listen" => {
                        let v = it.next().ok_or("--listen needs host:port")?.clone();
                        set_once(&mut listen, v, arg)?;
                    }
                    "--unix" => {
                        let v = PathBuf::from(it.next().ok_or("--unix needs a socket path")?);
                        set_once(&mut unix, v, arg)?;
                    }
                    "--nodes" => set_once(&mut nodes, parse_num(&mut it, arg)?, arg)?,
                    "--shards" => set_once(&mut shards, parse_positive(&mut it, arg)?, arg)?,
                    "--seed" => set_once(&mut seed, parse_num(&mut it, arg)?, arg)?,
                    "--workers" => set_once(&mut workers, parse_positive(&mut it, arg)?, arg)?,
                    "--max-clients" => {
                        set_once(&mut max_clients, parse_positive(&mut it, arg)?, arg)?
                    }
                    "--dir" => {
                        let v = PathBuf::from(it.next().ok_or("--dir needs a dir")?);
                        set_once(&mut dir, v, arg)?;
                    }
                    "--resume" => set_switch(&mut resume, arg)?,
                    "--checkpoint-ms" => {
                        set_once(&mut checkpoint_ms, parse_positive(&mut it, arg)?, arg)?
                    }
                    // 0 disables the deadline entirely (block forever).
                    "--timeout-ms" => set_once(&mut timeout_ms, parse_num(&mut it, arg)?, arg)?,
                    "--staleness" => set_once(&mut staleness, parse_num(&mut it, arg)?, arg)?,
                    "--stats" => set_switch(&mut stats, arg)?,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            let listen = match (listen, unix) {
                (Some(addr), None) => serve::ServeListen::Tcp(addr),
                (None, Some(path)) => serve::ServeListen::Unix(path),
                (None, None) => return Err("need --listen host:port or --unix path".into()),
                (Some(_), Some(_)) => {
                    return Err("pick one of --listen and --unix, not both".into());
                }
            };
            if resume && dir.is_none() {
                return Err("--resume needs --dir (there is no state to resume without one)".into());
            }
            let mut options = serve::ServeOptions::new(listen, nodes.ok_or("need --nodes")?);
            options.shards = shards.unwrap_or(1);
            options.seed = seed.unwrap_or(0x5EED_1E55);
            options.workers = workers.unwrap_or(2);
            options.max_clients = max_clients.unwrap_or(64);
            options.dir = dir;
            options.resume = resume;
            options.checkpoint_ms = checkpoint_ms.unwrap_or(1000);
            // Some(0) is the typed spelling of "no deadline".
            options.timeout_ms = Some(timeout_ms.unwrap_or(30_000));
            options.staleness = staleness.unwrap_or(0);
            options.stats = stats;
            Ok(Command::Serve { options })
        }
        "bipartite" => {
            let path = it.next().ok_or("bipartite needs a stream file")?;
            Ok(Command::Bipartite { path: PathBuf::from(path) })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

/// Resolve `--store`/`--dir` into a [`StoreBackend`], creating the
/// directory.
fn store_backend(store: StoreArg, dir: &Option<PathBuf>) -> Result<StoreBackend, String> {
    match store {
        StoreArg::Ram => Ok(StoreBackend::Ram),
        StoreArg::Disk => {
            let dir = dir.clone().ok_or("--store disk needs --dir")?;
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            Ok(StoreBackend::Disk { dir, block_bytes: 16 << 10, cache_groups: 1024 })
        }
    }
}

/// Build the single-node config selected by the components flags.
#[allow(clippy::too_many_arguments)] // mirrors the Components flag set
fn build_config(
    num_nodes: u64,
    workers: usize,
    store: StoreArg,
    buffering: BufferingArg,
    dir: &Option<PathBuf>,
    query_mode: QueryMode,
    query_threads: Option<usize>,
    staleness: Option<u64>,
    threshold: Option<u32>,
    io_backend: Option<IoBackendKind>,
) -> Result<GzConfig, String> {
    let mut config = GzConfig::in_ram(num_nodes);
    config.num_workers = workers;
    config.store = store_backend(store, dir)?;
    config.query_mode = query_mode;
    config.query_threads = query_threads;
    config.query_staleness = staleness;
    config.sketch_threshold = threshold.unwrap_or(0);
    config.io.kind = io_backend.unwrap_or_default();
    config.buffering = match buffering {
        BufferingArg::Leaf => {
            BufferStrategy::LeafOnly { capacity: GutterCapacity::SketchFactor(0.5) }
        }
        BufferingArg::Tree => {
            let dir = dir.clone().ok_or("--buffering tree needs --dir")?;
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            BufferStrategy::GutterTree {
                buffer_bytes: 1 << 20,
                fanout: 64,
                leaf_capacity: GutterCapacity::SketchFactor(2.0),
                dir,
            }
        }
    };
    Ok(config)
}

/// Stream every update of a file into `apply`.
fn feed_stream(
    reader: &mut StreamReader,
    mut apply: impl FnMut(u32, u32, bool) -> Result<(), String>,
) -> Result<u64, String> {
    let mut batch = Vec::new();
    let mut total = 0u64;
    loop {
        let n = reader.read_batch(&mut batch, 1 << 16).map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(total);
        }
        total += n as u64;
        for u in &batch {
            apply(u.u, u.v, u.kind == UpdateKind::Delete)?;
        }
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the Components flag set
fn components_sharded(
    path: &std::path::Path,
    workers: usize,
    store: StoreArg,
    buffering: BufferingArg,
    dir: &Option<PathBuf>,
    forest: bool,
    query_mode: QueryMode,
    query_threads: Option<usize>,
    staleness: Option<u64>,
    threshold: Option<u32>,
    io_backend: Option<IoBackendKind>,
    stats: bool,
    num_shards: u32,
    connect: &[String],
    checkpoint_every: Option<u64>,
    batch_updates: Option<usize>,
    respawn: bool,
) -> Result<String, String> {
    // Refuse flag combinations that would silently not take effect.
    if buffering == BufferingArg::Tree {
        return Err("--buffering tree is not supported with --shards (the sharded router \
             batches through in-RAM gutters)"
            .into());
    }
    if !connect.is_empty() && store == StoreArg::Disk {
        return Err("with --connect, sketch stores live in the shard workers; pass \
             --store/--dir to each `gz shard-worker` instead"
            .into());
    }
    if !connect.is_empty() && io_backend.is_some() {
        return Err("with --connect, sketch stores live in the shard workers; pass \
             --io-backend to each `gz shard-worker` instead"
            .into());
    }
    if checkpoint_every.is_some() && connect.is_empty() && dir.is_none() {
        return Err("--checkpoint-every with in-process shards needs --dir for the \
             checkpoint files (remote workers use their own --checkpoint paths)"
            .into());
    }

    let mut reader = StreamReader::open(path).map_err(|e| e.to_string())?;
    let header = reader.header();
    let mut config = ShardConfig::in_ram(header.num_vertices, num_shards);
    config.workers_per_shard = workers;
    config.store = store_backend(store, dir)?;
    config.query_mode = query_mode;
    config.query_threads = query_threads;
    config.query_staleness = staleness;
    config.sketch_threshold = threshold.unwrap_or(0);
    config.io.kind = io_backend.unwrap_or_default();
    config.checkpoint_every = checkpoint_every;
    if checkpoint_every.is_some() && connect.is_empty() {
        config.checkpoint_dir = dir.clone();
    }
    if let Some(n) = batch_updates {
        config.router_capacity = GutterCapacity::Updates(n);
    }

    let mut gz = if connect.is_empty() {
        ShardedGraphZeppelin::in_process(config).map_err(|e| e.to_string())?
    } else {
        if connect.len() != num_shards as usize {
            return Err(format!(
                "--connect names {} workers but --shards is {num_shards}",
                connect.len()
            ));
        }
        let digest = config.params_digest();
        if respawn {
            // Detect dead peers instead of hanging on them, and give an
            // externally restarted worker a few seconds to come back up.
            let timeouts = TransportTimeouts {
                connect: Some(std::time::Duration::from_secs(5)),
                read: Some(std::time::Duration::from_secs(30)),
                write: Some(std::time::Duration::from_secs(30)),
            };
            let retry = RetryPolicy {
                attempts: 10,
                base: std::time::Duration::from_millis(100),
                ..RetryPolicy::default()
            };
            let inner = SocketTransport::connect_tcp_with(connect, digest, &timeouts, &retry)
                .map_err(|e| e.to_string())?;
            let addrs: Vec<String> = connect.to_vec();
            let (dial_timeouts, dial_retry) = (timeouts, retry);
            let transport = RecoveringTransport::new(
                inner,
                digest,
                timeouts,
                retry,
                Box::new(move |shard| {
                    connect_shard_tcp(&addrs[shard as usize], shard, &dial_timeouts, &dial_retry)
                }),
            )
            .map_err(|e| e.to_string())?;
            ShardedGraphZeppelin::with_transport(config, Box::new(transport))
                .map_err(|e| e.to_string())?
        } else {
            let transport =
                SocketTransport::connect_tcp(connect, digest).map_err(|e| e.to_string())?;
            ShardedGraphZeppelin::with_transport(config, Box::new(transport))
                .map_err(|e| e.to_string())?
        }
    };

    feed_stream(&mut reader, |u, v, d| gz.update(u, v, d).map_err(|e| e.to_string()))?;
    // A checkpointing run always ends with one final checkpoint round, so
    // the end-of-stream state is durable regardless of cadence alignment.
    if checkpoint_every.is_some() {
        gz.checkpoint_shards().map_err(|e| e.to_string())?;
    }
    let outcome = gz.spanning_forest().map_err(|e| e.to_string())?;
    let mut out = format!(
        "{} components over {} nodes ({} updates ingested, {} shards, {} batches shipped)\n",
        outcome.num_components(),
        header.num_vertices,
        gz.updates_ingested(),
        num_shards,
        gz.batches_shipped(),
    );
    if stats {
        match gz.recovery_stats() {
            Some(rs) => out.push_str(&format!(
                "recovery: {} checkpoints, {} replays ({} batches replayed), \
                 {} reconnect attempts\n",
                rs.checkpoints(),
                rs.replays(),
                rs.batches_replayed(),
                rs.reconnect_attempts(),
            )),
            None => out.push_str(
                "recovery: counters require --connect with --respawn (the census \
                 is per-store; query each shard worker for representation stats)\n",
            ),
        }
    }
    if forest {
        for e in &outcome.forest {
            out.push_str(&format!("{} {}\n", e.u(), e.v()));
        }
    }
    gz.shutdown().map_err(|e| e.to_string())?;
    Ok(out)
}

fn run_shard_worker(
    listen: &str,
    config: ShardConfig,
    index: u32,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
) -> Result<String, String> {
    let shards = config.num_shards;
    let pipeline = ShardPipeline::new(&config, index).map_err(|e| e.to_string())?;
    if let Some(path) = resume {
        // A worker killed before its first checkpoint has nothing to
        // restore; starting empty is correct (the coordinator's replay log
        // covers everything since seq 0), so a missing file is not fatal.
        if path.exists() {
            let seq = pipeline.resume_from(&path).map_err(|e| e.to_string())?;
            println!("shard-worker {index}/{shards} resumed {} at batch seq {seq}", path.display());
        } else {
            println!(
                "shard-worker {index}/{shards} found no checkpoint at {}; starting empty",
                path.display()
            );
            pipeline.set_checkpoint_path(path);
        }
    } else if let Some(path) = checkpoint {
        pipeline.set_checkpoint_path(path);
    }

    let listener = std::net::TcpListener::bind(listen).map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // Announce the bound address before blocking so a coordinator script
    // can discover an ephemeral port.
    println!("shard-worker {index}/{shards} listening on {addr}");
    std::io::stdout().flush().ok();

    let (mut stream, peer) = listener.accept().map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let stats = serve_shard_connection(&mut stream, &pipeline, config.params_digest())
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "shard {index}/{shards}: served {peer} — {} batches, {} records, {} flushes, \
         {} gathers, {} checkpoints",
        stats.batches, stats.records, stats.flushes, stats.gathers, stats.checkpoints
    ))
}

/// Execute a command; returns the text to print.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Generate { dataset, seed, out } => {
            let d = dataset.to_dataset();
            let result = d.stream(seed, &StreamifyConfig::default());
            let mut writer =
                StreamWriter::create(&out, d.num_vertices).map_err(|e| e.to_string())?;
            writer.write_all(&result.updates).map_err(|e| e.to_string())?;
            let header = writer.finish().map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {}: {} nodes, {} updates, {} final edges, {} nodes disconnected",
                out.display(),
                header.num_vertices,
                header.num_updates,
                result.final_edge_count,
                result.disconnected.len(),
            ))
        }
        Command::Info { path } => {
            let mut reader = StreamReader::open(&path).map_err(|e| e.to_string())?;
            let header = reader.header();
            let mut inserts = 0u64;
            let mut deletes = 0u64;
            let updates = reader.read_all().map_err(|e| e.to_string())?;
            for u in &updates {
                match u.kind {
                    UpdateKind::Insert => inserts += 1,
                    UpdateKind::Delete => deletes += 1,
                }
            }
            let final_edges =
                gz_stream::update::validate_stream(header.num_vertices, updates.iter().copied())
                    .map_err(|v| format!("invalid stream: {v:?}"))?;
            Ok(format!(
                "{}: {} nodes, {} updates ({} inserts, {} deletes), {} final edges, valid",
                path.display(),
                header.num_vertices,
                header.num_updates,
                inserts,
                deletes,
                final_edges.len(),
            ))
        }
        Command::Components {
            path,
            workers,
            store,
            buffering,
            dir,
            forest,
            query_mode,
            query_threads,
            staleness,
            threshold,
            io_backend,
            stats,
            shards,
            connect,
            checkpoint_every,
            batch_updates,
            respawn,
        } => {
            if let Some(num_shards) = shards {
                return components_sharded(
                    &path,
                    workers,
                    store,
                    buffering,
                    &dir,
                    forest,
                    query_mode,
                    query_threads,
                    staleness,
                    threshold,
                    io_backend,
                    stats,
                    num_shards,
                    &connect,
                    checkpoint_every,
                    batch_updates,
                    respawn,
                );
            }
            let mut reader = StreamReader::open(&path).map_err(|e| e.to_string())?;
            let header = reader.header();
            let config = build_config(
                header.num_vertices,
                workers,
                store,
                buffering,
                &dir,
                query_mode,
                query_threads,
                staleness,
                threshold,
                io_backend,
            )?;
            let mut gz = GraphZeppelin::new(config).map_err(|e| e.to_string())?;
            feed_stream(&mut reader, |u, v, d| {
                gz.update(u, v, d);
                Ok(())
            })?;
            let cc = gz.connected_components().map_err(|e| e.to_string())?;
            let mut out = format!(
                "{} components over {} nodes ({} updates ingested)\n",
                cc.num_components(),
                header.num_vertices,
                gz.updates_ingested(),
            );
            if stats {
                let rep = gz.rep_stats();
                out.push_str(&format!(
                    "representation: {} promoted, {} sparse ({} neighbor entries, {} sparse \
                     bytes); sketch memory {} bytes\n",
                    rep.promoted,
                    rep.sparse,
                    rep.sparse_entries,
                    rep.sparse_bytes(),
                    gz.sketch_bytes(),
                ));
                if let (Some(io), Some(name)) = (gz.store_io(), gz.io_backend_name()) {
                    out.push_str(&format!(
                        "io backend {name}: {} reads ({} bytes), {} writes ({} bytes), \
                         {} submissions, {} completions, batch depth max {} mean {:.2}\n",
                        io.reads(),
                        io.bytes_read(),
                        io.writes(),
                        io.bytes_written(),
                        io.submissions(),
                        io.completions(),
                        io.max_depth(),
                        io.mean_depth(),
                    ));
                }
            }
            if forest {
                for e in cc.spanning_forest() {
                    out.push_str(&format!("{} {}\n", e.u(), e.v()));
                }
            }
            Ok(out)
        }
        Command::CheckpointSave { stream, out, workers, seed } => {
            let mut reader = StreamReader::open(&stream).map_err(|e| e.to_string())?;
            let header = reader.header();
            let mut config = GzConfig::in_ram(header.num_vertices);
            config.num_workers = workers;
            config.seed = seed;
            let mut gz = GraphZeppelin::new(config).map_err(|e| e.to_string())?;
            feed_stream(&mut reader, |u, v, d| {
                gz.update(u, v, d);
                Ok(())
            })?;
            let ckpt = gz.save_checkpoint(&out).map_err(|e| e.to_string())?;
            Ok(format!(
                "checkpoint {}: {} nodes, {} updates, {} rounds, seed {:#x}",
                out.display(),
                ckpt.num_nodes,
                ckpt.updates_ingested,
                ckpt.rounds,
                ckpt.seed,
            ))
        }
        Command::CheckpointRestore { path, forest, query_mode, query_threads, io_backend } => {
            let header = GraphZeppelin::checkpoint_header(&path).map_err(|e| e.to_string())?;
            let mut config = GzConfig::in_ram(header.num_nodes);
            config.seed = header.seed;
            config.num_rounds = Some(header.rounds);
            config.num_columns = header.columns;
            config.query_mode = query_mode;
            config.query_threads = query_threads;
            config.io.kind = io_backend.unwrap_or_default();
            let mut gz =
                GraphZeppelin::restore_with_config(&path, config).map_err(|e| e.to_string())?;
            let cc = gz.connected_components().map_err(|e| e.to_string())?;
            let mut out = format!(
                "{} components over {} nodes ({} updates restored from {})\n",
                cc.num_components(),
                header.num_nodes,
                gz.updates_ingested(),
                path.display(),
            );
            if forest {
                for e in cc.spanning_forest() {
                    out.push_str(&format!("{} {}\n", e.u(), e.v()));
                }
            }
            Ok(out)
        }
        Command::ShardWorker {
            listen,
            nodes,
            shards,
            index,
            seed,
            workers,
            store,
            dir,
            threshold,
            io_backend,
            checkpoint,
            resume,
        } => {
            let mut config = ShardConfig::in_ram(nodes, shards);
            config.seed = seed;
            config.workers_per_shard = workers;
            config.store = store_backend(store, &dir)?;
            config.sketch_threshold = threshold.unwrap_or(0);
            config.io.kind = io_backend.unwrap_or_default();
            run_shard_worker(&listen, config, index, checkpoint, resume)
        }
        Command::Serve { options } => serve::run_serve(options),
        Command::Bipartite { path } => {
            let mut reader = StreamReader::open(&path).map_err(|e| e.to_string())?;
            let header = reader.header();
            let mut tester =
                BipartitenessTester::new(header.num_vertices, 7).map_err(|e| e.to_string())?;
            let updates = reader.read_all().map_err(|e| e.to_string())?;
            for u in &updates {
                tester.update(u.u, u.v, u.kind == UpdateKind::Delete);
            }
            let ans = tester.query().map_err(|e| e.to_string())?;
            Ok(if ans.bipartite {
                "bipartite".to_string()
            } else {
                format!("NOT bipartite ({} odd components)", ans.odd_components.len())
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> gz_testutil::TempPath {
        gz_testutil::TempPath::new(&format!("gz-cli-{name}"), ".gzs")
    }

    fn parse_components(s: &str) -> Command {
        parse_args(&argv(s)).unwrap()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&argv("generate --dataset kron9 --seed 7 --out /tmp/x.gzs")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: DatasetArg::Kron(9),
                seed: 7,
                out: PathBuf::from("/tmp/x.gzs"),
            }
        );
    }

    #[test]
    fn parses_er_and_pa_specs() {
        assert_eq!(
            parse_args(&argv("generate --er 100x500 --out o.gzs")).unwrap(),
            Command::Generate {
                dataset: DatasetArg::ErdosRenyi(100, 500),
                seed: 42,
                out: PathBuf::from("o.gzs"),
            }
        );
        assert!(matches!(
            parse_args(&argv("generate --pa 50x100 --out o.gzs")).unwrap(),
            Command::Generate { dataset: DatasetArg::Preferential(50, 100), .. }
        ));
    }

    #[test]
    fn parses_workers_flag() {
        match parse_components("components s.gzs --workers 8") {
            Command::Components { workers, .. } => assert_eq!(workers, 8),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("components s.gzs --workers nope")).is_err());
    }

    #[test]
    fn parses_store_flag() {
        match parse_components("components s.gzs --store disk --dir /tmp/d") {
            Command::Components { store, dir, .. } => {
                assert_eq!(store, StoreArg::Disk);
                assert_eq!(dir, Some(PathBuf::from("/tmp/d")));
            }
            other => panic!("{other:?}"),
        }
        match parse_components("components s.gzs --store ram") {
            Command::Components { store, .. } => assert_eq!(store, StoreArg::Ram),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("components s.gzs --store floppy")).is_err());
    }

    #[test]
    fn parses_buffering_flag() {
        match parse_components("components s.gzs --buffering tree --dir /tmp/d") {
            Command::Components { buffering, .. } => assert_eq!(buffering, BufferingArg::Tree),
            other => panic!("{other:?}"),
        }
        match parse_components("components s.gzs --buffering leaf") {
            Command::Components { buffering, .. } => assert_eq!(buffering, BufferingArg::Leaf),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("components s.gzs --buffering ring")).is_err());
    }

    #[test]
    fn parses_shards_and_connect_flags() {
        match parse_components("components s.gzs --shards 3") {
            Command::Components { shards, connect, .. } => {
                assert_eq!(shards, Some(3));
                assert!(connect.is_empty());
            }
            other => panic!("{other:?}"),
        }
        match parse_components(
            "components s.gzs --shards 2 --connect 127.0.0.1:7001,127.0.0.1:7002",
        ) {
            Command::Components { shards, connect, .. } => {
                assert_eq!(shards, Some(2));
                assert_eq!(connect, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_args(&argv("components s.gzs --connect 127.0.0.1:7001")).is_err(),
            "--connect without --shards must be rejected"
        );
    }

    #[test]
    fn parses_query_mode_flag() {
        match parse_components("components s.gzs --query-mode streaming") {
            Command::Components { query_mode, .. } => {
                assert_eq!(query_mode, QueryMode::Streaming);
            }
            other => panic!("{other:?}"),
        }
        match parse_components("components s.gzs --query-mode snapshot --shards 2") {
            Command::Components { query_mode, shards, .. } => {
                assert_eq!(query_mode, QueryMode::Snapshot);
                assert_eq!(shards, Some(2));
            }
            other => panic!("{other:?}"),
        }
        // Default is snapshot; bad values are refused.
        match parse_components("components s.gzs") {
            Command::Components { query_mode, .. } => {
                assert_eq!(query_mode, QueryMode::Snapshot);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("components s.gzs --query-mode turbo")).is_err());
    }

    #[test]
    fn parses_query_threads_flag() {
        match parse_components("components s.gzs --query-threads 8") {
            Command::Components { query_threads, .. } => assert_eq!(query_threads, Some(8)),
            other => panic!("{other:?}"),
        }
        // Default: derive from the worker count.
        match parse_components("components s.gzs") {
            Command::Components { query_threads, .. } => assert_eq!(query_threads, None),
            other => panic!("{other:?}"),
        }
        // Composes with the other query flags and with sharding.
        match parse_components(
            "components s.gzs --query-mode streaming --query-threads 4 --shards 2",
        ) {
            Command::Components { query_mode, query_threads, shards, .. } => {
                assert_eq!(query_mode, QueryMode::Streaming);
                assert_eq!(query_threads, Some(4));
                assert_eq!(shards, Some(2));
            }
            other => panic!("{other:?}"),
        }
        // And on checkpoint restore.
        assert!(matches!(
            parse_args(&argv("checkpoint restore c.gzc --query-threads 2")).unwrap(),
            Command::CheckpointRestore { query_threads: Some(2), .. }
        ));
        // Zero is refused with a pointed message; garbage is refused too.
        let err = parse_args(&argv("components s.gzs --query-threads 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_args(&argv("checkpoint restore c.gzc --query-threads 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse_args(&argv("components s.gzs --query-threads lots")).is_err());
        assert!(parse_args(&argv("components s.gzs --query-threads")).is_err());
    }

    #[test]
    fn parses_io_backend_flag() {
        use graph_zeppelin::IoBackendKind;
        for (value, kind) in [
            ("auto", IoBackendKind::Auto),
            ("pread", IoBackendKind::Pread),
            ("uring", IoBackendKind::Uring),
        ] {
            match parse_components(&format!("components s.gzs --io-backend {value}")) {
                Command::Components { io_backend, .. } => assert_eq!(io_backend, Some(kind)),
                other => panic!("{other:?}"),
            }
        }
        // Default: auto-probe downstream.
        match parse_components("components s.gzs") {
            Command::Components { io_backend, .. } => assert_eq!(io_backend, None),
            other => panic!("{other:?}"),
        }
        // Composes with the disk store and sharding flags.
        match parse_components("components s.gzs --store disk --dir /tmp/d --io-backend uring") {
            Command::Components { store, io_backend, .. } => {
                assert_eq!(store, StoreArg::Disk);
                assert_eq!(io_backend, Some(IoBackendKind::Uring));
            }
            other => panic!("{other:?}"),
        }
        // And on checkpoint restore and shard-worker, like --query-threads.
        assert!(matches!(
            parse_args(&argv("checkpoint restore c.gzc --io-backend pread")).unwrap(),
            Command::CheckpointRestore { io_backend: Some(IoBackendKind::Pread), .. }
        ));
        assert!(matches!(
            parse_args(&argv(
                "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 2 --index 0 \
                 --io-backend uring"
            ))
            .unwrap(),
            Command::ShardWorker { io_backend: Some(IoBackendKind::Uring), .. }
        ));
        // Unknown values and a missing value are refused with a pointed
        // message, like --query-threads.
        let err = parse_args(&argv("components s.gzs --io-backend rdma")).unwrap_err();
        assert!(err.contains("unknown io backend rdma"), "{err}");
        assert!(err.contains("auto|pread|uring"), "{err}");
        let err = parse_args(&argv("checkpoint restore c.gzc --io-backend sync")).unwrap_err();
        assert!(err.contains("unknown io backend"), "{err}");
        assert!(parse_args(&argv("components s.gzs --io-backend")).is_err());
    }

    #[test]
    fn zero_counts_rejected_like_query_threads() {
        // --workers 0 and --shards 0 fail the same way --query-threads 0
        // does, instead of being silently clamped to 1 downstream.
        for argv_s in [
            "components s.gzs --workers 0",
            "components s.gzs --shards 0",
            "checkpoint save c.gzc --from s.gzs --workers 0",
            "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 0 --index 0",
            "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 2 --index 0 --workers 0",
            "components s.gzs --shards 2 --checkpoint-every 0",
            "components s.gzs --shards 2 --batch-updates 0",
        ] {
            let err = parse_args(&argv(argv_s)).unwrap_err();
            assert!(err.contains("at least 1"), "{argv_s}: {err}");
        }
    }

    #[test]
    fn duplicate_flags_are_explicit_errors() {
        for argv_s in [
            "generate --dataset kron5 --er 10x20 --out o.gzs",
            "generate --dataset kron5 --seed 1 --seed 2 --out o.gzs",
            "components s.gzs --workers 2 --workers 3",
            "components s.gzs --forest --forest",
            "components s.gzs --store ram --store disk",
            "components s.gzs --disk /tmp/d --dir /tmp/e",
            "components s.gzs --query-mode streaming --staleness 5 --staleness 6",
            "checkpoint save c.gzc --from a.gzs --from b.gzs",
            "checkpoint restore c.gzc --forest --forest",
            "components s.gzs --threshold 4 --threshold 8",
            "components s.gzs --stats --stats",
            "shard-worker --listen a:1 --listen b:2 --nodes 8 --shards 2 --index 0",
            "shard-worker --listen a:1 --nodes 8 --shards 2 --index 0 --threshold 4 --threshold 8",
            "components s.gzs --io-backend pread --io-backend uring",
            "checkpoint restore c.gzc --io-backend auto --io-backend auto",
            "shard-worker --listen a:1 --nodes 8 --shards 2 --index 0 --io-backend uring \
             --io-backend pread",
            "components s.gzs --shards 2 --checkpoint-every 4 --checkpoint-every 8",
            "components s.gzs --shards 2 --batch-updates 64 --batch-updates 128",
            "components s.gzs --shards 2 --connect a:1,b:2 --respawn --respawn",
            "shard-worker --listen a:1 --nodes 8 --shards 2 --index 0 --checkpoint a.ckpt \
             --checkpoint b.ckpt",
            "shard-worker --listen a:1 --nodes 8 --shards 2 --index 0 --resume a.ckpt \
             --resume b.ckpt",
        ] {
            let err = parse_args(&argv(argv_s)).unwrap_err();
            assert!(err.contains("duplicate flag"), "{argv_s}: {err}");
        }
    }

    #[test]
    fn parses_staleness_flag() {
        // --staleness needs the streaming query engine (the snapshot path
        // folds fresh state by construction, so the knob would silently
        // not take effect).
        match parse_components("components s.gzs --query-mode streaming --staleness 100") {
            Command::Components { staleness, query_mode, .. } => {
                assert_eq!(staleness, Some(100));
                assert_eq!(query_mode, QueryMode::Streaming);
            }
            other => panic!("{other:?}"),
        }
        // Zero is meaningful: reseal on every query.
        match parse_components("components s.gzs --query-mode streaming --staleness 0") {
            Command::Components { staleness, .. } => assert_eq!(staleness, Some(0)),
            other => panic!("{other:?}"),
        }
        // Default: no epoch reuse at all.
        match parse_components("components s.gzs") {
            Command::Components { staleness, .. } => assert_eq!(staleness, None),
            other => panic!("{other:?}"),
        }
        let err = parse_args(&argv("components s.gzs --staleness 5")).unwrap_err();
        assert!(err.contains("requires --query-mode streaming"), "{err}");
        let err =
            parse_args(&argv("components s.gzs --query-mode snapshot --staleness 5")).unwrap_err();
        assert!(err.contains("requires --query-mode streaming"), "{err}");
        assert!(parse_args(&argv("components s.gzs --staleness lots")).is_err());
    }

    #[test]
    fn parses_threshold_and_stats_flags() {
        match parse_components("components s.gzs --threshold 16 --stats") {
            Command::Components { threshold, stats, .. } => {
                assert_eq!(threshold, Some(16));
                assert!(stats);
            }
            other => panic!("{other:?}"),
        }
        // Zero is meaningful: force the always-dense representation.
        match parse_components("components s.gzs --threshold 0") {
            Command::Components { threshold, .. } => assert_eq!(threshold, Some(0)),
            other => panic!("{other:?}"),
        }
        // Defaults: no threshold (always-dense), no census.
        match parse_components("components s.gzs") {
            Command::Components { threshold, stats, .. } => {
                assert_eq!(threshold, None);
                assert!(!stats);
            }
            other => panic!("{other:?}"),
        }
        // Threshold composes with sharding, and so does --stats (sharded
        // runs report the recovery counters instead of the store census).
        match parse_components("components s.gzs --threshold 8 --stats --shards 2") {
            Command::Components { threshold, stats, shards, .. } => {
                assert_eq!(threshold, Some(8));
                assert!(stats);
                assert_eq!(shards, Some(2));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("components s.gzs --threshold lots")).is_err());
        assert!(parse_args(&argv("components s.gzs --threshold")).is_err());
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        match parse_components(
            "components s.gzs --shards 2 --connect a:1,b:2 --checkpoint-every 64 \
             --batch-updates 128 --respawn",
        ) {
            Command::Components {
                shards,
                connect,
                checkpoint_every,
                batch_updates,
                respawn,
                ..
            } => {
                assert_eq!(shards, Some(2));
                assert_eq!(connect.len(), 2);
                assert_eq!(checkpoint_every, Some(64));
                assert_eq!(batch_updates, Some(128));
                assert!(respawn);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: no mid-stream checkpoints, no reconnect policy.
        match parse_components("components s.gzs --shards 2") {
            Command::Components { checkpoint_every, batch_updates, respawn, .. } => {
                assert_eq!(checkpoint_every, None);
                assert_eq!(batch_updates, None);
                assert!(!respawn);
            }
            other => panic!("{other:?}"),
        }
        // These knobs only make sense where they can take effect.
        let err = parse_args(&argv("components s.gzs --checkpoint-every 8")).unwrap_err();
        assert!(err.contains("requires --shards"), "{err}");
        let err = parse_args(&argv("components s.gzs --batch-updates 64")).unwrap_err();
        assert!(err.contains("requires --shards"), "{err}");
        let err = parse_args(&argv("components s.gzs --shards 2 --respawn")).unwrap_err();
        assert!(err.contains("requires --connect"), "{err}");

        // Worker side: --checkpoint / --resume are paths, mutually exclusive.
        match parse_args(&argv(
            "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 2 --index 1 \
             --checkpoint /tmp/s1.ckpt",
        ))
        .unwrap()
        {
            Command::ShardWorker { checkpoint, resume, .. } => {
                assert_eq!(checkpoint, Some(PathBuf::from("/tmp/s1.ckpt")));
                assert_eq!(resume, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv(
            "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 2 --index 1 \
             --resume /tmp/s1.ckpt",
        ))
        .unwrap()
        {
            Command::ShardWorker { checkpoint, resume, .. } => {
                assert_eq!(checkpoint, None);
                assert_eq!(resume, Some(PathBuf::from("/tmp/s1.ckpt")));
            }
            other => panic!("{other:?}"),
        }
        let err = parse_args(&argv(
            "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 2 --index 1 \
             --checkpoint a.ckpt --resume a.ckpt",
        ))
        .unwrap_err();
        assert!(err.contains("drop --checkpoint"), "{err}");
        assert!(parse_args(&argv("components s.gzs --shards 2 --checkpoint-every")).is_err());
    }

    #[test]
    fn hybrid_threshold_matches_dense_end_to_end() {
        // Through the whole CLI: a hybrid run answers exactly like a dense
        // run, and the census reports the representation split.
        let path = tmp("hybrid");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 17,
            out: path.to_path_buf(),
        })
        .unwrap();
        let dense = execute(components_cmd(&path, None)).unwrap();
        let count =
            |s: &str| s.lines().next().unwrap().split_whitespace().next().unwrap().to_string();
        for (threshold, shards) in [(4u32, None), (64, None), (4, Some(2))] {
            let mut cmd = components_cmd(&path, shards);
            if let Command::Components { threshold: t, .. } = &mut cmd {
                *t = Some(threshold);
            }
            let got = execute(cmd).unwrap();
            assert_eq!(count(&got), count(&dense), "threshold={threshold} shards={shards:?}");
        }
        // The census line appears on request and adds up to the universe.
        let mut cmd = components_cmd(&path, None);
        if let Command::Components { threshold, stats, .. } = &mut cmd {
            *threshold = Some(4);
            *stats = true;
        }
        let out = execute(cmd).unwrap();
        let census = out.lines().find(|l| l.starts_with("representation:")).unwrap();
        let nums: Vec<u64> = census
            .split_whitespace()
            .filter_map(|w| w.trim_start_matches('(').parse().ok())
            .collect();
        assert_eq!(nums[0] + nums[1], 32, "promoted + sparse covers kron5: {census}");
    }

    #[test]
    fn staleness_reuses_epochs_end_to_end() {
        // Through the whole CLI: a huge staleness budget still answers the
        // full stream correctly, because the epoch is sealed after ingest.
        let path = tmp("staleness");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 21,
            out: path.to_path_buf(),
        })
        .unwrap();
        let reference = execute(components_cmd(&path, None)).unwrap();
        let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
        for shards in [None, Some(2)] {
            let mut cmd = components_cmd(&path, shards);
            if let Command::Components { query_mode, staleness, .. } = &mut cmd {
                *query_mode = QueryMode::Streaming;
                *staleness = Some(u64::MAX);
            }
            let got = execute(cmd).unwrap();
            assert_eq!(count(&got), count(&reference), "shards={shards:?}");
        }
    }

    #[test]
    fn query_threads_change_no_answers() {
        // End to end through the CLI: thread counts are a performance knob,
        // never a correctness one.
        let path = tmp("qthreads");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 12,
            out: path.to_path_buf(),
        })
        .unwrap();
        let reference = execute(components_cmd(&path, None)).unwrap();
        for threads in [1usize, 3] {
            for shards in [None, Some(2)] {
                let mut cmd = components_cmd(&path, shards);
                if let Command::Components { query_threads, query_mode, .. } = &mut cmd {
                    *query_threads = Some(threads);
                    *query_mode = QueryMode::Streaming;
                }
                let got = execute(cmd).unwrap();
                let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
                assert_eq!(count(&got), count(&reference), "threads={threads} {shards:?}");
            }
        }
    }

    #[test]
    fn parses_checkpoint_save_and_restore() {
        assert_eq!(
            parse_args(&argv("checkpoint save c.gzc --from s.gzs --workers 3 --seed 9")).unwrap(),
            Command::CheckpointSave {
                stream: PathBuf::from("s.gzs"),
                out: PathBuf::from("c.gzc"),
                workers: 3,
                seed: 9,
            }
        );
        assert_eq!(
            parse_args(&argv("checkpoint restore c.gzc --forest --query-mode streaming")).unwrap(),
            Command::CheckpointRestore {
                path: PathBuf::from("c.gzc"),
                forest: true,
                query_mode: QueryMode::Streaming,
                query_threads: None,
                io_backend: None,
            }
        );
        // Defaults.
        assert!(matches!(
            parse_args(&argv("checkpoint restore c.gzc")).unwrap(),
            Command::CheckpointRestore { forest: false, query_mode: QueryMode::Snapshot, .. }
        ));
        // Malformed forms are refused.
        assert!(parse_args(&argv("checkpoint")).is_err(), "missing action");
        assert!(parse_args(&argv("checkpoint frobnicate c.gzc")).is_err());
        assert!(parse_args(&argv("checkpoint save c.gzc")).is_err(), "missing --from");
        assert!(parse_args(&argv("checkpoint save c.gzc --from s.gzs --seed nope")).is_err());
        assert!(parse_args(&argv("checkpoint restore")).is_err(), "missing path");
        assert!(parse_args(&argv("checkpoint restore c.gzc --bogus")).is_err());
    }

    #[test]
    fn checkpoint_save_restore_round_trip() {
        let stream = tmp("ckpt-stream");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 8,
            out: stream.to_path_buf(),
        })
        .unwrap();
        let ckpt = gz_testutil::TempPath::new("gz-cli-ckpt", ".gzc");
        let saved = execute(Command::CheckpointSave {
            stream: stream.to_path_buf(),
            out: ckpt.to_path_buf(),
            workers: 2,
            seed: 0x5EED_1E55,
        })
        .unwrap();
        assert!(saved.contains("32 nodes"), "{saved}");

        // The restored answer must match running components directly, in
        // both query modes.
        let direct = execute(components_cmd(&stream, None)).unwrap();
        let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
        for query_mode in [QueryMode::Snapshot, QueryMode::Streaming] {
            let restored = execute(Command::CheckpointRestore {
                path: ckpt.to_path_buf(),
                forest: false,
                query_mode,
                query_threads: None,
                io_backend: None,
            })
            .unwrap();
            assert_eq!(count(&restored), count(&direct), "{query_mode:?}");
        }
    }

    #[test]
    fn streaming_query_mode_components_match_snapshot() {
        let path = tmp("qmode");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 6,
            out: path.to_path_buf(),
        })
        .unwrap();
        let mut streaming = components_cmd(&path, None);
        if let Command::Components { query_mode, .. } = &mut streaming {
            *query_mode = QueryMode::Streaming;
        }
        let a = execute(components_cmd(&path, None)).unwrap();
        let b = execute(streaming).unwrap();
        assert_eq!(a, b);
        // And sharded streaming agrees too.
        let mut sharded = components_cmd(&path, Some(3));
        if let Command::Components { query_mode, .. } = &mut sharded {
            *query_mode = QueryMode::Streaming;
        }
        let c = execute(sharded).unwrap();
        let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
        assert_eq!(count(&a), count(&c));
    }

    #[test]
    fn disk_flag_is_back_compat_shorthand() {
        // `--disk DIR` still means the paper's full on-disk deployment.
        match parse_components("components s.gzs --disk /tmp/d") {
            Command::Components { store, buffering, dir, .. } => {
                assert_eq!(store, StoreArg::Disk);
                assert_eq!(buffering, BufferingArg::Tree);
                assert_eq!(dir, Some(PathBuf::from("/tmp/d")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_shard_worker() {
        let cmd = parse_args(&argv(
            "shard-worker --listen 127.0.0.1:0 --nodes 1024 --shards 4 --index 2 \
             --seed 9 --workers 3 --store ram",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::ShardWorker {
                listen: "127.0.0.1:0".into(),
                nodes: 1024,
                shards: 4,
                index: 2,
                seed: 9,
                workers: 3,
                store: StoreArg::Ram,
                dir: None,
                threshold: None,
                io_backend: None,
                checkpoint: None,
                resume: None,
            }
        );
        assert!(matches!(
            parse_args(&argv(
                "shard-worker --listen 127.0.0.1:0 --nodes 8 --shards 2 --index 0 --threshold 16"
            ))
            .unwrap(),
            Command::ShardWorker { threshold: Some(16), .. }
        ));
        assert!(parse_args(&argv("shard-worker --listen 127.0.0.1:0 --nodes 8")).is_err());
    }

    #[test]
    fn parses_serve() {
        // Full flag set.
        let cmd = parse_args(&argv(
            "serve --listen 127.0.0.1:7070 --nodes 1024 --shards 2 --seed 9 --workers 3 \
             --max-clients 8 --dir /tmp/state --resume --checkpoint-ms 250 --timeout-ms 0 \
             --staleness 64 --stats",
        ))
        .unwrap();
        let mut expected =
            serve::ServeOptions::new(serve::ServeListen::Tcp("127.0.0.1:7070".into()), 1024);
        expected.shards = 2;
        expected.seed = 9;
        expected.workers = 3;
        expected.max_clients = 8;
        expected.dir = Some(PathBuf::from("/tmp/state"));
        expected.resume = true;
        expected.checkpoint_ms = 250;
        expected.timeout_ms = Some(0); // 0 = no deadline, typed as Some(0)
        expected.staleness = 64;
        expected.stats = true;
        assert_eq!(cmd, Command::Serve { options: expected });

        // Defaults and the unix listener.
        match parse_args(&argv("serve --unix /tmp/gz.sock --nodes 64")).unwrap() {
            Command::Serve { options } => {
                assert_eq!(options.listen, serve::ServeListen::Unix(PathBuf::from("/tmp/gz.sock")));
                assert_eq!(options.shards, 1);
                assert_eq!(options.max_clients, 64);
                assert_eq!(options.checkpoint_ms, 1000);
                assert_eq!(options.timeout_ms, Some(30_000));
                assert!(!options.resume && !options.stats);
            }
            other => panic!("{other:?}"),
        }

        // Typed refusals.
        let err = parse_args(&argv("serve --nodes 64")).unwrap_err();
        assert!(err.contains("--listen host:port or --unix"), "{err}");
        let err = parse_args(&argv("serve --listen 127.0.0.1:0 --unix /tmp/gz.sock --nodes 64"))
            .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        let err = parse_args(&argv("serve --listen 127.0.0.1:0 --nodes 64 --resume")).unwrap_err();
        assert!(err.contains("--resume needs --dir"), "{err}");
        assert!(parse_args(&argv("serve --listen 127.0.0.1:0")).is_err(), "missing --nodes");
        let err =
            parse_args(&argv("serve --listen 127.0.0.1:0 --nodes 64 --max-clients 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_args(&argv("serve --listen a --listen b --nodes 64")).unwrap_err();
        assert!(err.contains("duplicate flag"), "{err}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert!(parse_args(&argv("generate --out x.gzs")).is_err(), "no dataset");
        assert!(parse_args(&argv("generate --dataset kronfoo --out x")).is_err());
        assert!(parse_args(&argv("generate --er 100y500 --out x")).is_err());
    }

    #[test]
    fn end_to_end_generate_info_components() {
        let path = tmp("e2e");
        let msg = execute(Command::Generate {
            dataset: DatasetArg::Kron(6),
            seed: 3,
            out: path.to_path_buf(),
        })
        .unwrap();
        assert!(msg.contains("64 nodes"), "{msg}");

        let info = execute(Command::Info { path: path.to_path_buf() }).unwrap();
        assert!(info.contains("valid"), "{info}");

        let comps = execute(components_cmd(&path, None)).unwrap();
        assert!(comps.contains("components over 64 nodes"), "{comps}");
    }

    fn components_cmd(path: &gz_testutil::TempPath, shards: Option<u32>) -> Command {
        Command::Components {
            path: path.to_path_buf(),
            workers: 2,
            store: StoreArg::Ram,
            buffering: BufferingArg::Leaf,
            dir: None,
            forest: false,
            query_mode: QueryMode::Snapshot,
            query_threads: None,
            staleness: None,
            threshold: None,
            io_backend: None,
            stats: false,
            shards,
            connect: Vec::new(),
            checkpoint_every: None,
            batch_updates: None,
            respawn: false,
        }
    }

    #[test]
    fn sharded_components_match_unsharded() {
        let path = tmp("shards");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 4,
            out: path.to_path_buf(),
        })
        .unwrap();
        let single = execute(components_cmd(&path, None)).unwrap();
        let sharded = execute(components_cmd(&path, Some(3))).unwrap();
        let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
        assert_eq!(count(&single), count(&sharded), "single={single} sharded={sharded}");
        assert!(sharded.contains("3 shards"), "{sharded}");
    }

    #[test]
    fn sharded_checkpoint_cadence_end_to_end() {
        let path = tmp("ckpt-cadence");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 11,
            out: path.to_path_buf(),
        })
        .unwrap();
        let reference = execute(components_cmd(&path, Some(2))).unwrap();

        // --checkpoint-every with in-process shards needs a directory.
        let mut cmd = components_cmd(&path, Some(2));
        if let Command::Components { checkpoint_every, .. } = &mut cmd {
            *checkpoint_every = Some(4);
        }
        assert!(execute(cmd).unwrap_err().contains("--dir"), "cadence without --dir");

        let ckpt_dir = gz_testutil::TempDir::new("gz-cli-ckpt-cadence");
        let mut cmd = components_cmd(&path, Some(2));
        if let Command::Components { checkpoint_every, dir, stats, .. } = &mut cmd {
            *checkpoint_every = Some(4);
            *dir = Some(ckpt_dir.path().to_path_buf());
            *stats = true;
        }
        let out = execute(cmd).unwrap();
        let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
        assert_eq!(count(&reference), count(&out), "reference={reference} out={out}");
        // In-process shards have no recovering transport; --stats says so
        // instead of silently printing nothing.
        assert!(out.contains("recovery: counters require --connect"), "{out}");
        // The cadence actually wrote per-shard checkpoint files.
        let files = std::fs::read_dir(ckpt_dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
            .count();
        assert_eq!(files, 2, "one checkpoint file per shard");
    }

    #[test]
    fn sharded_rejects_silently_ignored_flags() {
        let path = tmp("shard-flags");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(4),
            seed: 1,
            out: path.to_path_buf(),
        })
        .unwrap();
        // --buffering tree has no sharded implementation: must be refused,
        // not ignored.
        let mut cmd = components_cmd(&path, Some(2));
        if let Command::Components { buffering, dir, .. } = &mut cmd {
            *buffering = BufferingArg::Tree;
            *dir = Some(std::env::temp_dir());
        }
        assert!(execute(cmd).unwrap_err().contains("--buffering tree"));
        // --store disk with --connect configures nothing on the remote
        // workers: must be refused.
        let mut cmd = components_cmd(&path, Some(1));
        if let Command::Components { store, dir, connect, .. } = &mut cmd {
            *store = StoreArg::Disk;
            *dir = Some(std::env::temp_dir());
            *connect = vec!["127.0.0.1:1".into()];
        }
        assert!(execute(cmd).unwrap_err().contains("shard-worker"));
        // --io-backend with --connect configures nothing on the remote
        // workers either: must be refused the same way.
        let mut cmd = components_cmd(&path, Some(1));
        if let Command::Components { io_backend, connect, .. } = &mut cmd {
            *io_backend = Some(graph_zeppelin::IoBackendKind::Pread);
            *connect = vec!["127.0.0.1:1".into()];
        }
        let err = execute(cmd).unwrap_err();
        assert!(err.contains("--io-backend") && err.contains("shard-worker"), "{err}");
    }

    #[test]
    fn io_backend_is_a_performance_knob_end_to_end() {
        // Through the whole CLI: every backend answers a disk-store query
        // identically, and --stats reports which backend actually ran with
        // its batch-depth counters.
        use graph_zeppelin::IoBackendKind;
        let path = tmp("io-backend");
        execute(Command::Generate {
            dataset: DatasetArg::Kron(5),
            seed: 23,
            out: path.to_path_buf(),
        })
        .unwrap();
        let reference = execute(components_cmd(&path, None)).unwrap();
        let count = |s: &str| s.split_whitespace().next().unwrap().to_string();
        let kinds: &[IoBackendKind] = if graph_zeppelin::uring_available() {
            &[IoBackendKind::Auto, IoBackendKind::Pread, IoBackendKind::Uring]
        } else {
            eprintln!("skipping uring lane: io_uring unavailable on this host");
            &[IoBackendKind::Auto, IoBackendKind::Pread]
        };
        for &kind in kinds {
            let workdir = gz_testutil::TempPath::new("gz-cli-io-backend", ".d");
            let mut cmd = components_cmd(&path, None);
            if let Command::Components { store, dir, io_backend, stats, query_mode, .. } = &mut cmd
            {
                *store = StoreArg::Disk;
                *dir = Some(workdir.to_path_buf());
                *io_backend = Some(kind);
                *stats = true;
                *query_mode = QueryMode::Streaming;
            }
            let out = execute(cmd).unwrap();
            assert_eq!(count(&out), count(&reference), "{kind:?}");
            let io_line = out
                .lines()
                .find(|l| l.starts_with("io backend "))
                .unwrap_or_else(|| panic!("no io line for {kind:?}: {out}"));
            if kind == IoBackendKind::Pread {
                assert!(io_line.contains("io backend pread"), "{io_line}");
            }
            if kind == IoBackendKind::Uring {
                assert!(io_line.contains("io backend uring"), "{io_line}");
            }
            assert!(io_line.contains("submissions"), "{io_line}");
        }
        // The flag parses and runs on checkpoint restore too (the restored
        // store is RAM-resident, so it is accepted for parity and ignored).
        let ckpt = gz_testutil::TempPath::new("gz-cli-io-ckpt", ".gzc");
        execute(Command::CheckpointSave {
            stream: path.to_path_buf(),
            out: ckpt.to_path_buf(),
            workers: 2,
            seed: 0x5EED_1E55,
        })
        .unwrap();
        let restored = execute(Command::CheckpointRestore {
            path: ckpt.to_path_buf(),
            forest: false,
            query_mode: QueryMode::Snapshot,
            query_threads: None,
            io_backend: Some(IoBackendKind::Pread),
        })
        .unwrap();
        assert_eq!(count(&restored), count(&reference));
    }

    #[test]
    fn end_to_end_bipartite() {
        // An even cycle stream: bipartite.
        let path = tmp("bip");
        let updates: Vec<gz_stream::EdgeUpdate> =
            (0..10u32).map(|i| gz_stream::EdgeUpdate::insert(i, (i + 1) % 10)).collect();
        gz_stream::format::write_stream(path.path(), 10, &updates).unwrap();
        let out = execute(Command::Bipartite { path: path.to_path_buf() }).unwrap();
        assert_eq!(out, "bipartite");
    }

    #[test]
    fn components_with_forest_lists_edges() {
        let path = tmp("forest");
        let updates =
            vec![gz_stream::EdgeUpdate::insert(0, 1), gz_stream::EdgeUpdate::insert(1, 2)];
        gz_stream::format::write_stream(path.path(), 4, &updates).unwrap();
        let out = execute(Command::Components {
            path: path.to_path_buf(),
            workers: 1,
            store: StoreArg::Ram,
            buffering: BufferingArg::Leaf,
            dir: None,
            forest: true,
            query_mode: QueryMode::Snapshot,
            query_threads: None,
            staleness: None,
            threshold: None,
            io_backend: None,
            stats: false,
            shards: None,
            connect: Vec::new(),
            checkpoint_every: None,
            batch_updates: None,
            respawn: false,
        })
        .unwrap();
        assert!(out.lines().count() >= 3, "{out}");
    }
}
