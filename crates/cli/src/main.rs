//! Thin shell around [`gz_cli`]: parse, execute, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gz_cli::parse_args(&args).and_then(gz_cli::execute) {
        Ok(output) => println!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!(
                "usage:\n  gz generate (--dataset kronN | --er NxM | --pa NxM) \
                 [--seed S] --out FILE\n  gz info FILE\n  gz components FILE \
                 [--workers N] [--store ram|disk] [--buffering leaf|tree] \
                 [--dir DIR] [--forest]\n                \
                 [--query-mode snapshot|streaming] [--query-threads N] \
                 [--staleness U] [--threshold T] \
                 [--io-backend auto|pread|uring] [--stats]\n                \
                 [--shards K [--connect HOST:PORT,...]]\n                \
                 [--checkpoint-every N] [--batch-updates N] [--respawn]\n  \
                 gz checkpoint save \
                 FILE --from STREAM [--workers N] [--seed S]\n  gz checkpoint \
                 restore FILE [--forest] [--query-mode snapshot|streaming] \
                 [--query-threads N] [--io-backend auto|pread|uring]\n  \
                 gz shard-worker --listen HOST:PORT \
                 --nodes N --shards K --index I [--seed S]\n                  \
                 [--workers N] [--store ram|disk] [--dir DIR] [--threshold T] \
                 [--io-backend auto|pread|uring]\n                  \
                 [--checkpoint shard.ckpt | --resume shard.ckpt]\n  \
                 gz serve (--listen HOST:PORT | --unix SOCK) --nodes N \
                 [--shards K] [--seed S]\n           \
                 [--workers N] [--max-clients C] [--dir DIR [--resume]]\n           \
                 [--checkpoint-ms MS] [--timeout-ms MS] [--staleness U] \
                 [--stats]\n  \
                 gz bipartite FILE"
            );
            std::process::exit(2);
        }
    }
}
