//! A small synchronous client for the `gz serve` front door.
//!
//! Speaks the wire v7 serve dialect: one `ClientHello` handshake, then any
//! interleaving of `UpdateBatch` (acked durably before the reply) and
//! `Query` (answered from a sealed epoch). Used by the hostile-client and
//! crash tests and the `gz_serve_load` bench; it is also the reference for
//! writing clients in other languages.

use crate::serve::ClientStream;
use graph_zeppelin::TransportTimeouts;
use gz_stream::wire::{QueryAnswer, QueryKind, WireMessage, WireUpdate};
use std::io::Write;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a serve interaction failed, typed the way callers branch on it.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon is at `--max-clients`; retry later.
    Busy {
        /// Connections the daemon reported active.
        active: u32,
        /// Its admission limit.
        max_clients: u32,
    },
    /// The daemon refused the request and killed the connection (malformed
    /// traffic, invalid updates, or an ingest/query failure on its side).
    Rejected(String),
    /// The transport itself failed (disconnects, deadlines, bad frames).
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy { active, max_clients } => {
                write!(f, "daemon is busy ({active}/{max_clients} clients)")
            }
            ClientError::Rejected(msg) => write!(f, "daemon rejected the request: {msg}"),
            ClientError::Io(e) => write!(f, "serve connection failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected serve client.
#[derive(Debug)]
pub struct ServeClient {
    stream: ClientStream,
    acked: u64,
    num_nodes: u64,
}

impl ServeClient {
    /// Connect over TCP and complete the `ClientHello` handshake.
    pub fn connect_tcp(
        addr: &str,
        timeouts: &TransportTimeouts,
    ) -> Result<ServeClient, ClientError> {
        let stream = match timeouts.connect {
            Some(d) => {
                let mut last = None;
                let mut found = None;
                for sock in std::net::ToSocketAddrs::to_socket_addrs(addr)? {
                    match TcpStream::connect_timeout(&sock, d) {
                        Ok(s) => {
                            found = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match found {
                    Some(s) => s,
                    None => {
                        return Err(ClientError::Io(last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                format!("{addr} resolved to no addresses"),
                            )
                        })));
                    }
                }
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        ServeClient::handshake(ClientStream::Tcp(stream))
    }

    /// Connect over a Unix socket and complete the handshake.
    pub fn connect_unix(
        path: &Path,
        timeouts: &TransportTimeouts,
    ) -> Result<ServeClient, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        ServeClient::handshake(ClientStream::Unix(stream))
    }

    fn handshake(mut stream: ClientStream) -> Result<ServeClient, ClientError> {
        WireMessage::ClientHello.write_to(&mut stream)?;
        stream.flush()?;
        match WireMessage::read_from(&mut stream)? {
            WireMessage::ClientHelloAck { num_nodes, acked } => {
                Ok(ServeClient { stream, acked, num_nodes })
            }
            WireMessage::Busy { active, max_clients } => {
                Err(ClientError::Busy { active, max_clients })
            }
            WireMessage::ErrorReply { message } => Err(ClientError::Rejected(message)),
            other => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected ClientHelloAck, got {}", other.name()),
            ))),
        }
    }

    /// Updates the daemon has acked as durable on this stream (from the
    /// handshake, advanced by every [`ServeClient::send_updates`]).
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// The daemon's vertex universe size.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Ship one batch of `(u, v, is_delete)` updates and wait for the ack.
    /// Returns the daemon's total acked count after the batch.
    pub fn send_updates(&mut self, updates: &[(u32, u32, bool)]) -> Result<u64, ClientError> {
        let updates =
            updates.iter().map(|&(u, v, is_delete)| WireUpdate { u, v, is_delete }).collect();
        WireMessage::UpdateBatch { updates }.write_to(&mut self.stream)?;
        self.stream.flush()?;
        match WireMessage::read_from(&mut self.stream)? {
            WireMessage::UpdateAck { acked } => {
                self.acked = acked;
                Ok(acked)
            }
            WireMessage::ErrorReply { message } => Err(ClientError::Rejected(message)),
            other => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected UpdateAck, got {}", other.name()),
            ))),
        }
    }

    fn query(&mut self, kind: QueryKind) -> Result<QueryAnswer, ClientError> {
        WireMessage::Query { kind }.write_to(&mut self.stream)?;
        self.stream.flush()?;
        match WireMessage::read_from(&mut self.stream)? {
            WireMessage::QueryResult { answer } => Ok(answer),
            WireMessage::ErrorReply { message } => Err(ClientError::Rejected(message)),
            other => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected QueryResult, got {}", other.name()),
            ))),
        }
    }

    /// Number of connected components.
    pub fn query_num_components(&mut self) -> Result<u64, ClientError> {
        match self.query(QueryKind::NumComponents)? {
            QueryAnswer::NumComponents(n) => Ok(n),
            other => Err(mismatched_answer(&other)),
        }
    }

    /// Per-vertex component labels.
    pub fn query_components(&mut self) -> Result<Vec<u32>, ClientError> {
        match self.query(QueryKind::Components)? {
            QueryAnswer::Components(labels) => Ok(labels),
            other => Err(mismatched_answer(&other)),
        }
    }

    /// Spanning-forest edges.
    pub fn query_forest(&mut self) -> Result<Vec<(u32, u32)>, ClientError> {
        match self.query(QueryKind::SpanningForest)? {
            QueryAnswer::SpanningForest(edges) => Ok(edges),
            other => Err(mismatched_answer(&other)),
        }
    }

    /// Say goodbye cleanly so the daemon retires the connection without
    /// counting a disconnect.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        WireMessage::Shutdown.write_to(&mut self.stream)?;
        self.stream.flush()?;
        Ok(())
    }
}

fn mismatched_answer(got: &QueryAnswer) -> ClientError {
    let name = match got {
        QueryAnswer::NumComponents(_) => "NumComponents",
        QueryAnswer::Components(_) => "Components",
        QueryAnswer::SpanningForest(_) => "SpanningForest",
    };
    ClientError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("daemon answered the wrong query kind ({name})"),
    ))
}
