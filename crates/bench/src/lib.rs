//! Experiment harness for the GraphZeppelin reproduction.
//!
//! [`figures`] contains one module per table/figure of the paper's
//! evaluation (§6); the `repro` binary drives them. [`harness`] holds the
//! shared machinery: timing, table formatting, workload preparation, and
//! the scale knob that maps the paper's workstation-sized experiments onto
//! laptop-sized ones while preserving their shape.

pub mod figures;
pub mod harness;

pub use harness::{Scale, Table};
