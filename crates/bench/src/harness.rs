//! Shared experiment machinery: scales, timing, tables, workloads.

use gz_stream::{Dataset, EdgeUpdate, StreamifyConfig, UpdateKind};
use std::time::{Duration, Instant};

/// Experiment scale. The paper ran kron13–kron18 (up to 1.8·10^10 updates)
/// on a 24-core/64 GB workstation; the reproduction defaults to sizes that
/// finish on a laptop while preserving the comparisons' shape. EXPERIMENTS.md
/// records which scale produced each number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure: kron8–kron12 class inputs.
    Small,
    /// Minutes-per-figure: up to kron13 (the paper's smallest dataset).
    Medium,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }

    /// Kronecker scales (log2 of node count) used for dataset sweeps.
    pub fn kron_scales(self) -> Vec<u32> {
        match self {
            Scale::Small => vec![8, 9, 10, 11],
            Scale::Medium => vec![9, 10, 11, 12, 13],
        }
    }

    /// The single "reference" kron scale for one-dataset experiments
    /// (standing in for the paper's kron17).
    pub fn reference_kron(self) -> u32 {
        match self {
            Scale::Small => 10,
            Scale::Medium => 12,
        }
    }

    /// Reliability-trial count (paper §6.3 runs 1000 per dataset).
    pub fn reliability_trials(self) -> usize {
        match self {
            Scale::Small => 25,
            Scale::Medium => 200,
        }
    }
}

/// A prepared workload: vertex universe plus update stream.
pub struct Workload {
    /// Dataset name.
    pub name: String,
    /// Vertex universe size.
    pub num_nodes: u64,
    /// Edges in the generated graph (before streamification).
    pub graph_edges: u64,
    /// The insert/delete stream.
    pub updates: Vec<EdgeUpdate>,
}

/// True when benches should run at tiny scale (the CI smoke mode,
/// `GZ_BENCH_SMOKE=1`). One definition shared by every bench target.
pub fn smoke() -> bool {
    std::env::var("GZ_BENCH_SMOKE").is_ok()
}

/// Generate the kron dataset at `scale` and streamify it.
pub fn kron_workload(scale: u32, seed: u64) -> Workload {
    let dataset = Dataset::kron(scale);
    dataset_workload(&dataset, seed)
}

/// Generate any catalog dataset and streamify it.
pub fn dataset_workload(dataset: &Dataset, seed: u64) -> Workload {
    let edges = dataset.generate(seed);
    let graph_edges = edges.len() as u64;
    let result = gz_stream::streamify(
        dataset.num_vertices,
        &edges,
        &StreamifyConfig { seed: seed ^ 0x5EED, ..StreamifyConfig::default() },
    );
    Workload {
        name: dataset.name.clone(),
        num_nodes: dataset.num_vertices,
        graph_edges,
        updates: result.updates,
    }
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Updates per second, guarding division by ~zero.
pub fn rate(updates: usize, d: Duration) -> f64 {
    updates as f64 / d.as_secs_f64().max(1e-9)
}

/// Format a rate as "N.NN M/s" style.
pub fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2}M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}K/s", r / 1e3)
    } else {
        format!("{r:.0}/s")
    }
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const GIB: f64 = (1u64 << 30) as f64;
    const MIB: f64 = (1u64 << 20) as f64;
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= GIB {
        format!("{:.2}GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2}MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.2}KiB", b / KIB)
    } else {
        format!("{b:.0}B")
    }
}

/// Minimal aligned-column table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
                if i + 1 == cols {
                    out.push('\n');
                }
            }
        };
        line(&self.headers, &mut out);
        for (i, w) in widths.iter().enumerate() {
            out.push_str(&"-".repeat(*w));
            out.push_str(if i + 1 == cols { "\n" } else { "--" });
        }
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Split a stream into the insert-only / delete-only batch arrays the paper
/// feeds Aspen and Terrace (§6.2: "we group the input stream into batches
/// [of] insertions and deletions … whenever one of these arrays fills, we
/// feed it into the appropriate batch update function").
pub fn batch_for_baselines(
    updates: &[EdgeUpdate],
    batch_size: usize,
) -> Vec<(bool, Vec<(u32, u32)>)> {
    let mut batches = Vec::new();
    let mut inserts: Vec<(u32, u32)> = Vec::new();
    let mut deletes: Vec<(u32, u32)> = Vec::new();
    for upd in updates {
        match upd.kind {
            UpdateKind::Insert => {
                inserts.push((upd.u, upd.v));
                if inserts.len() >= batch_size {
                    batches.push((false, std::mem::take(&mut inserts)));
                }
            }
            UpdateKind::Delete => {
                deletes.push((upd.u, upd.v));
                if deletes.len() >= batch_size {
                    batches.push((true, std::mem::take(&mut deletes)));
                }
            }
        }
    }
    if !inserts.is_empty() {
        batches.push((false, inserts));
    }
    if !deletes.is_empty() {
        batches.push((true, deletes));
    }
    batches
}

/// Drive a baseline system through a stream using the paper's batching.
pub fn run_baseline(
    system: &mut dyn gz_baselines::DynamicGraphSystem,
    updates: &[EdgeUpdate],
    batch_size: usize,
) -> Duration {
    let batches = batch_for_baselines(updates, batch_size);
    let (_, d) = time(|| {
        for (is_delete, edges) in &batches {
            if *is_delete {
                system.batch_delete(edges);
            } else {
                system.batch_insert(edges);
            }
        }
    });
    d
}

/// Drive GraphZeppelin through a stream.
pub fn run_graphzeppelin(
    gz: &mut graph_zeppelin::GraphZeppelin,
    updates: &[EdgeUpdate],
) -> Duration {
    let (_, d) = time(|| {
        for upd in updates {
            gz.update(upd.u, upd.v, upd.kind == UpdateKind::Delete);
        }
        gz.flush();
    });
    d
}

/// A scratch directory for on-disk experiments: a `gz_testutil::TempDir`,
/// unique per call and removed (recursively) when the guard drops — panic or
/// assertion failure included. Keep the guard alive for the experiment.
pub fn scratch_dir(tag: &str) -> gz_testutil::TempDir {
    gz_testutil::TempDir::new(&format!("gz-bench-{tag}"))
}

/// Drain every benchmark measurement recorded so far and write them as
/// `BENCH_<bench>.json` — a machine-readable perf baseline (best/mean ns
/// per case) committed alongside EXPERIMENTS.md so future PRs have a
/// trajectory to compare against, not just prose. The directory comes from
/// `GZ_BENCH_JSON_DIR`; by default full runs write to the workspace root
/// (the committed baselines) while smoke runs write under `target/` — a
/// tiny-scale CI smoke pass must never silently replace a committed
/// full-run baseline in a developer's checkout. Returns the path written.
pub fn write_bench_json(bench: &str) -> std::io::Result<std::path::PathBuf> {
    // CARGO_MANIFEST_DIR is crates/bench at compile time; the workspace
    // root is two levels up. cwd would be wrong: cargo runs benches from
    // the package directory.
    let default_dir = if smoke() {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../..")
    };
    let dir = std::env::var("GZ_BENCH_JSON_DIR").unwrap_or_else(|_| default_dir.into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{bench}.json"));
    let cases = criterion::take_recorded();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str(&format!("  \"smoke\": {},\n", smoke()));
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"best_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
            json_escape(&case.name),
            case.best_ns,
            case.mean_ns,
            if i + 1 == cases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Minimal JSON string escaping for benchmark names (quotes, backslashes,
/// control characters — names are ASCII identifiers in practice).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(2_500_000.0), "2.50M/s");
        assert_eq!(fmt_rate(1_500.0), "1.5K/s");
        assert_eq!(fmt_rate(42.0), "42/s");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }

    #[test]
    fn baseline_batching_separates_types() {
        let updates = vec![
            EdgeUpdate::insert(0, 1),
            EdgeUpdate::insert(1, 2),
            EdgeUpdate::delete(0, 1),
            EdgeUpdate::insert(2, 3),
        ];
        let batches = batch_for_baselines(&updates, 2);
        // First insert batch fills at 2; remaining insert and the delete
        // flush at the end.
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], (false, vec![(0, 1), (1, 2)]));
        // Flush order: inserts then deletes.
        assert!(batches.iter().any(|(d, v)| !d && v == &vec![(2, 3)]));
        assert!(batches.iter().any(|(d, v)| *d && v == &vec![(0, 1)]));
    }

    #[test]
    fn bench_json_round_trips_through_disk() {
        // Record one fake measurement through the shim, emit the JSON, and
        // sanity-check its shape (no serde in-tree: the emitter is
        // hand-rolled, so pin the field names a future parser relies on).
        let dir = gz_testutil::TempDir::new("gz-bench-json");
        let _ = criterion::take_recorded();
        let mut c = criterion::Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("json/smoke-case", |b| b.iter(|| std::hint::black_box(1 + 1)));
        std::env::set_var("GZ_BENCH_JSON_DIR", dir.path());
        let path = write_bench_json("harness_test").unwrap();
        std::env::remove_var("GZ_BENCH_JSON_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_harness_test.json");
        assert!(text.contains("\"bench\": \"harness_test\""), "{text}");
        assert!(text.contains("\"name\": \"json/smoke-case\""), "{text}");
        assert!(text.contains("\"best_ns\":"), "{text}");
        assert!(text.contains("\"mean_ns\":"), "{text}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain/name_1"), "plain/name_1");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn kron_workload_generates() {
        let w = kron_workload(6, 1);
        assert_eq!(w.num_nodes, 64);
        assert!(w.updates.len() as u64 >= w.graph_edges);
    }

    #[test]
    fn scales_have_sensible_parameters() {
        assert!(Scale::Small.kron_scales().len() >= 3);
        assert!(Scale::Medium.reference_kron() > Scale::Small.reference_kron());
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("bogus"), None);
    }
}
