//! Figure 10: dimensions of datasets used in the evaluation.
//!
//! Prints the paper's nominal catalog plus the scaled datasets actually
//! generated at the chosen reproduction scale (with their measured stream
//! lengths, which — as in the paper — slightly exceed the edge counts
//! because of transient churn).

use crate::harness::{dataset_workload, Scale, Table};

/// Print the dataset table.
pub fn run(scale: Scale) {
    println!("== Figure 10: dataset dimensions ==\n");
    println!("paper-scale catalog (nominal):\n");
    let mut t = Table::new(&["name", "# nodes", "# edges", "density"]);
    let mut datasets = gz_stream::catalog::paper_kron_datasets();
    datasets.extend(gz_stream::catalog::real_world_standins());
    for d in &datasets {
        t.row(vec![
            d.name.clone(),
            format!("2^{} = {}", (d.num_vertices as f64).log2() as u32, d.num_vertices),
            format!("{:.2e}", d.nominal_edges as f64),
            format!("{:.3}", d.density()),
        ]);
    }
    t.print();

    println!("\ngenerated at reproduction scale (measured):\n");
    let mut g = Table::new(&["name", "# nodes", "# edges", "# stream updates"]);
    for s in scale.kron_scales() {
        let w = dataset_workload(&gz_stream::Dataset::kron(s), 42);
        g.row(vec![
            w.name,
            format!("{}", w.num_nodes),
            format!("{:.3e}", w.graph_edges as f64),
            format!("{:.3e}", w.updates.len() as f64),
        ]);
    }
    for d in gz_stream::catalog::tiny_standins() {
        let w = dataset_workload(&d, 42);
        g.row(vec![
            w.name,
            format!("{}", w.num_nodes),
            format!("{:.3e}", w.graph_edges as f64),
            format!("{:.3e}", w.updates.len() as f64),
        ]);
    }
    g.print();
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_updates_exceed_edges() {
        // Figure 10's pattern: update count ≥ edge count for every dataset.
        let w = dataset_workload(&gz_stream::Dataset::kron(8), 1);
        assert!(w.updates.len() as u64 >= w.graph_edges);
    }

    #[test]
    fn runs() {
        run(Scale::Small);
    }
}
